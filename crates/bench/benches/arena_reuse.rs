//! Microbenchmark: fresh-allocation vs arena-planned compiled execution.
//!
//! `fresh` is the classic path — every `run` converts inputs, zero-fills
//! outputs, and lets the kernel allocate its temporaries. `arena` drives
//! the same kernel through a reused `RunContext`: temporaries live at
//! static offsets in a preallocated arena, input/output staging buffers
//! persist across calls, and each result is recycled back into the
//! context, so the steady state performs zero tensor heap allocations
//! (`mem.arena.alloc_calls` stays flat — asserted below). The four paper
//! workloads at Criterion scale, on the native compiled engine.

use bench::{prepare, Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use ft_metrics::Metrics;
use ft_runtime::{cc_available, CompiledEngine, ExecutionEngine, RunContext, TensorVal};
use ft_workloads::input_pairs;
use std::collections::HashMap;
use std::time::Duration;

fn bench_arena_reuse(c: &mut Criterion) {
    if !cc_available() {
        eprintln!("skipping arena_reuse: no C compiler on PATH");
        return;
    }
    let engine = CompiledEngine::new();
    let sizes: HashMap<String, i64> = HashMap::new();
    let mut group = c.benchmark_group("arena_reuse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for w in Workload::ALL {
        let prep = prepare(w, Scale::Small);
        let prog = prep.naive.optimize(&ft_autoschedule::Target::cpu());
        let inputs: HashMap<String, TensorVal> = input_pairs(&prep.inputs)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        // One cold run pays compilation through the artifact cache so both
        // variants below measure pure execution.
        engine
            .run(prog.func(), &inputs, &sizes)
            .unwrap_or_else(|e| panic!("{} cold run failed: {e}", w.name()));
        group.bench_function(format!("{}/fresh", w.schedule_key()), |b| {
            b.iter(|| engine.run(prog.func(), &inputs, &sizes).unwrap())
        });
        // Warm the context outside the timed region, then assert the timed
        // region really is allocation-free before handing it to Criterion.
        let mut engine_m = engine.clone();
        let m = Metrics::new();
        engine_m.set_metrics(Some(m.clone()));
        let mut ctx = RunContext::new();
        let r = engine_m
            .run_with(prog.func(), &inputs, &sizes, &mut ctx)
            .unwrap();
        ctx.recycle(r).unwrap();
        let before = m.snapshot().counter("mem.arena.alloc_calls");
        let r = engine_m
            .run_with(prog.func(), &inputs, &sizes, &mut ctx)
            .unwrap();
        ctx.recycle(r).unwrap();
        let after = m.snapshot().counter("mem.arena.alloc_calls");
        assert_eq!(
            after - before,
            0,
            "{}: warm arena run still allocated",
            w.name()
        );
        group.bench_function(format!("{}/arena", w.schedule_key()), |b| {
            b.iter(|| {
                let r = engine_m
                    .run_with(prog.func(), &inputs, &sizes, &mut ctx)
                    .unwrap();
                ctx.recycle(r).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arena_reuse);
criterion_main!(benches);
