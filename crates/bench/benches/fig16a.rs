//! Criterion wrapper for Fig. 16(a): end-to-end forward time per workload ×
//! device × system, at reduced shapes.
//!
//! Wall-clock caveat: FreeTensor variants run on the instrumented
//! interpreter while the operator baseline runs native kernels; compare
//! within a system across schedules, and use `cargo run -p bench --bin
//! fig16` for the cross-system (counter/modeled-time) comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig16a(c: &mut Criterion) {
    for w in bench::Workload::ALL {
        let prep = bench::prepare(w, bench::Scale::Small);
        let mut group = c.benchmark_group(format!("fig16a/{}", w.name()));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_secs(1));
        for dev in [ft_ir::Device::Cpu, ft_ir::Device::Gpu] {
            for sys in [
                bench::System::OpBase,
                bench::System::FtNaive,
                bench::System::FtOptimized,
            ] {
                group.bench_function(format!("{}/{:?}", dev, sys), |b| {
                    b.iter(|| {
                        let r = bench::run_forward(&prep, sys, dev);
                        assert!(r.failure.is_none());
                        r.cycles
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig16a);
criterion_main!(benches);
