//! Criterion wrapper for Fig. 16(b): forward+backward time (AD), reduced
//! shapes, GAT excluded as in the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use ft_autodiff::TapePolicy;

fn bench_fig16b(c: &mut Criterion) {
    for w in [
        bench::Workload::SubdivNet,
        bench::Workload::Longformer,
        bench::Workload::SoftRas,
    ] {
        let prep = bench::prepare(w, bench::Scale::Small);
        let mut group = c.benchmark_group(format!("fig16b/{}", w.name()));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_secs(1));
        for sys in [bench::System::OpBase, bench::System::FtOptimized] {
            group.bench_function(format!("cpu/{sys:?}"), |b| {
                b.iter(|| {
                    let r = bench::run_grad(&prep, sys, ft_ir::Device::Cpu, TapePolicy::Selective);
                    assert!(r.failure.is_none(), "{:?}", r.failure);
                    r.cycles
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig16b);
criterion_main!(benches);
