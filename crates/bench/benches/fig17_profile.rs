//! Criterion wrapper for Fig. 17: time to produce the SubdivNet GPU profile
//! (the counters themselves are printed by `--bin fig17`; this bench tracks
//! the instrumented-run cost and asserts the headline counter shape).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig17(c: &mut Criterion) {
    let prep = bench::prepare(bench::Workload::SubdivNet, bench::Scale::Small);
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("subdivnet_gpu_profile", |b| {
        b.iter(|| {
            let ft = bench::run_forward(&prep, bench::System::FtOptimized, ft_ir::Device::Gpu);
            let ob = bench::run_forward(&prep, bench::System::OpBase, ft_ir::Device::Gpu);
            assert!(ft.counters.kernel_launches < ob.counters.kernel_launches);
            assert!(ft.counters.dram_bytes < ob.counters.dram_bytes);
            (ft.counters.dram_bytes, ob.counters.dram_bytes)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
