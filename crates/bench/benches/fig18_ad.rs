//! Criterion wrapper for Fig. 18: gradient execution under FT(-)
//! (materialize-all) vs FT(+) (selective), reduced shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use ft_autodiff::TapePolicy;

fn bench_fig18(c: &mut Criterion) {
    for w in [
        bench::Workload::SubdivNet,
        bench::Workload::Longformer,
        bench::Workload::SoftRas,
    ] {
        let prep = bench::prepare(w, bench::Scale::Small);
        let mut group = c.benchmark_group(format!("fig18/{}", w.name()));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_secs(1));
        for (label, policy) in [("FT-minus", TapePolicy::All), ("FT-plus", TapePolicy::Selective)]
        {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let r = bench::run_grad(
                        &prep,
                        bench::System::FtOptimized,
                        ft_ir::Device::Cpu,
                        policy,
                    );
                    assert!(r.failure.is_none());
                    r.cycles
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
