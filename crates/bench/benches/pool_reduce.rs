//! Microbenchmark: serialized vs privatized parallel reductions on the
//! worker pool, plus a grain-size sweep.
//!
//! `serialized` models the old path — every chunk funnels its updates
//! through one mutex-guarded accumulator. `privatized` is the runtime
//! `cache_reduce`: each chunk accumulates into a thread-private value and
//! the pool merges the partials in deterministic ascending chunk order
//! after the join. The sweep shows why the grain heuristic targets a
//! fixed per-chunk cost: too fine pays claim/lock overhead per tiny
//! chunk, too coarse starves the helpers.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_runtime::WorkerPool;
use std::sync::Mutex;
use std::time::Duration;

const N: i64 = 1 << 20;

/// The per-iteration body both variants share.
#[inline]
fn term(i: i64) -> i64 {
    (i ^ (i >> 3)).wrapping_mul(0x9E37_79B9)
}

fn serialized_sum(pool: &WorkerPool, grain: i64) -> i64 {
    let acc = Mutex::new(0i64);
    let task = |lo: i64, hi: i64| {
        for i in lo..hi {
            // One lock per update: the contention the privatized path
            // exists to remove.
            let mut g = acc.lock().unwrap();
            *g = g.wrapping_add(term(i));
        }
    };
    pool.try_run(0, N, grain, usize::MAX, &task).unwrap();
    let v = *acc.lock().unwrap();
    v
}

fn privatized_sum(pool: &WorkerPool, grain: i64) -> i64 {
    let mut total = 0i64;
    pool.try_run_reduce(
        0,
        N,
        grain,
        usize::MAX,
        &|_| 0i64,
        &|lo, hi, acc: &mut i64| {
            for i in lo..hi {
                *acc = acc.wrapping_add(term(i));
            }
        },
        &mut |_idx, part| total = total.wrapping_add(part),
    )
    .unwrap();
    total
}

fn bench_pool_reduce(c: &mut Criterion) {
    let pool = WorkerPool::global();
    let grain = 1 << 14;

    let mut group = c.benchmark_group("pool_reduce");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let expect = privatized_sum(pool, grain);
    group.bench_function("serialized", |b| {
        b.iter(|| {
            let v = serialized_sum(pool, grain);
            assert_eq!(v, expect);
            v
        })
    });
    group.bench_function("privatized", |b| {
        b.iter(|| {
            let v = privatized_sum(pool, grain);
            assert_eq!(v, expect);
            v
        })
    });
    group.finish();

    let mut sweep = c.benchmark_group("pool_reduce/grain_sweep");
    sweep.sample_size(10);
    sweep.warm_up_time(Duration::from_millis(200));
    sweep.measurement_time(Duration::from_secs(1));
    for shift in [8u32, 10, 12, 14, 16, 18] {
        sweep.bench_function(format!("grain_{}", 1i64 << shift), |b| {
            b.iter(|| privatized_sum(pool, 1i64 << shift))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_pool_reduce);
criterion_main!(benches);
