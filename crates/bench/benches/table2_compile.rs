//! Criterion wrapper for Table 2: compiling time of the rule-based pipeline
//! (parse + inline + partial-evaluate + auto-schedule) per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use ft_autoschedule::Target;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/compile");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for w in bench::Workload::ALL {
        let prep = bench::prepare(w, bench::Scale::Small);
        group.bench_function(format!("{}/rule_based", w.name()), |b| {
            b.iter(|| prep.naive.optimize(&Target::cpu()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
