//! Microbenchmark: scalar vs SIMD-vectorized VM inner loops.
//!
//! Each pair runs the *same* function through the fast VM, once with the
//! innermost loop `vectorize`-marked (lowered to a fused 4-lane kernel —
//! `dot`, `axpy`, `copy`) and once unmarked (plain scalar bytecode). The
//! gap is the payoff of the fused kernels alone: same program, same
//! runtime, same bytecode compiler. Expected: vectorized >= 2x scalar on
//! the kernel-dominated sizes used here.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_ir::prelude::*;
use ft_runtime::{TensorVal, VmRuntime};
use std::collections::HashMap;
use std::time::Duration;

const N: usize = 1 << 16;

fn prop(vectorized: bool) -> ForProperty {
    ForProperty {
        vectorize: vectorized,
        ..ForProperty::serial()
    }
}

fn dot_func(vectorized: bool) -> Func {
    Func::new("dot")
        .param("x", [N], DataType::F32, AccessType::Input)
        .param("w", [N], DataType::F32, AccessType::Input)
        .param("d", [1], DataType::F32, AccessType::Output)
        .body(for_with(
            "i",
            0,
            N as i64,
            prop(vectorized),
            reduce(
                "d",
                [0],
                ReduceOp::Add,
                load("x", [var("i")]) * load("w", [var("i")]),
            ),
        ))
}

fn axpy_func(vectorized: bool) -> Func {
    Func::new("axpy")
        .param("x", [N], DataType::F32, AccessType::Input)
        .param("y", [N], DataType::F32, AccessType::Output)
        .body(for_with(
            "i",
            0,
            N as i64,
            prop(vectorized),
            reduce(
                "y",
                [var("i")],
                ReduceOp::Add,
                load("x", [var("i")]) * 2.5f32,
            ),
        ))
}

fn copy_func(vectorized: bool) -> Func {
    Func::new("copy")
        .param("x", [N], DataType::F32, AccessType::Input)
        .param("y", [N], DataType::F32, AccessType::Output)
        .body(for_with(
            "i",
            0,
            N as i64,
            prop(vectorized),
            store("y", [var("i")], load("x", [var("i")])),
        ))
}

fn bench_vm_simd(c: &mut Criterion) {
    let x = TensorVal::from_f32(&[N], (0..N).map(|v| (v as f32).sin()).collect());
    let w = TensorVal::from_f32(&[N], (0..N).map(|v| 1.0 / (v as f32 + 1.5)).collect());
    let sizes = HashMap::new();
    type Case = (&'static str, fn(bool) -> Func, &'static [&'static str]);
    let cases: [Case; 3] = [
        ("dot", dot_func, &["x", "w"]),
        ("axpy", axpy_func, &["x"]),
        ("copy", copy_func, &["x"]),
    ];
    for (name, build, params) in cases {
        let mut group = c.benchmark_group(format!("vm_simd/{name}"));
        group.sample_size(20);
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_secs(1));
        let inputs: HashMap<String, TensorVal> = params
            .iter()
            .map(|p| {
                let v = if *p == "w" { w.clone() } else { x.clone() };
                (p.to_string(), v)
            })
            .collect();
        for vectorized in [false, true] {
            let f = build(vectorized);
            let label = if vectorized { "vectorized" } else { "scalar" };
            group.bench_function(label, |b| {
                b.iter(|| {
                    VmRuntime::new()
                        .run(&f, &inputs, &sizes)
                        .expect("vm run ok")
                        .outputs
                        .len()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_vm_simd);
criterion_main!(benches);
