//! `ft-autoschedule` — search-based auto-scheduling over the paper's four
//! workloads (the Ansor-style counterpart to the rule-based §4.3 passes).
//!
//! ```text
//! ft-autoschedule --search [--workload W|all] [--scale small|full]
//!                 [--budget N] [--seed N] [--workers N] [--out DIR]
//!                 [--warm-start] [--require-win] [--metrics [PATH]]
//! ft-autoschedule --replay [--workload W|all] [--scale small|full]
//!                 [--out DIR]
//! ```
//!
//! `--search` runs the evolutionary trace search (`ft_autoschedule::search`)
//! for each selected workload on CPU: candidates are scored by running the
//! instrumented interpreter on the workload's real inputs (deterministic
//! `modeled_cycles`, `dram_bytes` tiebreak), and the best trace is persisted
//! as `DIR/<workload>-cpu-<scale>.json` plus a `.history.json` with the
//! per-generation progress. `--warm-start` seeds the mutation payoff table
//! from an existing saved schedule. `--require-win` exits non-zero unless
//! every searched schedule strictly beats the rule-based warm-start score —
//! the CI smoke gate.
//!
//! `--replay` re-applies every committed schedule and verifies the replayed
//! deterministic score equals the recorded one (exit non-zero on any
//! mismatch or missing file): the committed JSONs stay honest.

use bench::{
    bench_metrics, fmt_cycles, prepare, replay_program, search_schedule, Scale, Workload,
};
use ft_ir::Device;
use ft_runtime::{Runtime, ScheduleScore};
use ft_trace::JsonVal;
use ft_workloads::input_pairs;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn opt_val<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let replay = args.iter().any(|a| a == "--replay");
    let budget: usize = opt_val(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let seed: u64 = opt_val(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2022);
    let workers: usize = opt_val(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
        });
    let scale = match opt_val(&args, "--scale").map(String::as_str) {
        Some("small") => Scale::Small,
        _ => Scale::Full,
    };
    let out_dir: PathBuf = opt_val(&args, "--out")
        .map_or_else(bench::schedules_dir, PathBuf::from);
    let warm_start = args.iter().any(|a| a == "--warm-start");
    let require_win = args.iter().any(|a| a == "--require-win");
    let metrics_path: Option<PathBuf> = args.iter().position(|a| a == "--metrics").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .map_or_else(|| "results/METRICS-search.json".into(), |p| p.into())
    });
    let workloads: Vec<Workload> = match opt_val(&args, "--workload").map(String::as_str) {
        None | Some("all") => Workload::ALL.to_vec(),
        Some(key) => match Workload::from_key(key) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "unknown workload `{key}` (expected one of \
                     subdivnet/longformer/softras/gat/all)"
                );
                return ExitCode::from(2);
            }
        },
    };

    let code = if replay {
        replay_all(&workloads, scale, &out_dir)
    } else {
        search_all(
            &workloads,
            scale,
            budget,
            seed,
            workers,
            &out_dir,
            warm_start,
            require_win,
        )
    };
    if let Some(path) = metrics_path {
        let snap = bench_metrics().snapshot();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, snap.to_json()).expect("write metrics");
        eprintln!(
            "wrote {} (evaluations {}, memo hits {}, illegal rejected {})",
            path.display(),
            snap.counter("search.evaluations"),
            snap.counter("search.memo.hit"),
            snap.counter("search.illegal_rejected"),
        );
    }
    code
}

#[allow(clippy::too_many_arguments)]
fn search_all(
    workloads: &[Workload],
    scale: Scale,
    budget: usize,
    seed: u64,
    workers: usize,
    out_dir: &std::path::Path,
    warm_start: bool,
    require_win: bool,
) -> ExitCode {
    println!(
        "# search-based auto-scheduling: budget {budget} evaluations, seed {seed}, \
         {workers} worker(s), scale {}",
        scale.key()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>8} {:>6} {:>10}",
        "workload", "rule cycles", "searched", "gain", "evals", "memo", "search ms"
    );
    let mut losses = 0usize;
    for &w in workloads {
        let prep = prepare(w, scale);
        let warm_payoff = if warm_start {
            bench::load_saved_schedule(w, scale).map(|s| s.payoff)
        } else {
            None
        };
        let config = ft_autoschedule::search::SearchConfig {
            budget,
            seed,
            workers,
            warm_payoff,
            ..ft_autoschedule::search::SearchConfig::default()
        };
        let (saved, outcome) = search_schedule(&prep, &config, None, Some(bench_metrics()));
        let win = outcome.best_score < outcome.rule_score;
        if !win {
            losses += 1;
        }
        let gain = if saved.searched_cycles > 0.0 {
            format!("{:.2}x", saved.rule_cycles / saved.searched_cycles)
        } else {
            "-".to_string()
        };
        println!(
            "{:<12} {:>14} {:>14} {:>8} {:>8} {:>6} {:>10.0}{}",
            w.name(),
            fmt_cycles(saved.rule_cycles),
            fmt_cycles(saved.searched_cycles),
            gain,
            outcome.evaluations,
            outcome.memo_hits,
            saved.search_wall_ms,
            if win { "" } else { "   NO WIN" }
        );
        if let Err(e) = std::fs::create_dir_all(out_dir) {
            eprintln!("cannot create {}: {e}", out_dir.display());
            return ExitCode::from(2);
        }
        let path = out_dir.join(ft_autoschedule::search::SavedSchedule::file_name(
            &saved.workload,
            &saved.device,
            &saved.scale,
        ));
        std::fs::write(&path, format!("{}\n", saved.to_json())).expect("write schedule");
        let hist_path = path.with_extension("history.json");
        std::fs::write(&hist_path, format!("{}\n", history_json(&outcome)))
            .expect("write history");
        eprintln!("wrote {} and {}", path.display(), hist_path.display());
    }
    if require_win && losses > 0 {
        eprintln!("FAIL: {losses} workload(s) did not beat the rule-based schedule");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn history_json(outcome: &ft_autoschedule::search::SearchOutcome) -> JsonVal {
    JsonVal::Obj(vec![
        (
            "generations".to_string(),
            JsonVal::Arr(
                outcome
                    .history
                    .iter()
                    .map(|g| {
                        JsonVal::Obj(vec![
                            ("generation".to_string(), JsonVal::Num(g.generation as f64)),
                            ("evaluations".to_string(), JsonVal::Num(g.evaluations as f64)),
                            ("memo_hits".to_string(), JsonVal::Num(g.memo_hits as f64)),
                            ("best_cycles".to_string(), JsonVal::Num(g.best_cycles)),
                            ("best_dram".to_string(), JsonVal::Num(g.best_dram as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "illegal_rejected".to_string(),
            JsonVal::Num(outcome.illegal_rejected as f64),
        ),
        ("payoff".to_string(), outcome.payoff.to_json()),
    ])
}

fn replay_all(workloads: &[Workload], scale: Scale, out_dir: &std::path::Path) -> ExitCode {
    println!(
        "# replaying committed schedules from {} (scale {})",
        out_dir.display(),
        scale.key()
    );
    let mut failures = 0usize;
    for &w in workloads {
        let path = out_dir.join(ft_autoschedule::search::SavedSchedule::file_name(
            w.schedule_key(),
            "cpu",
            scale.key(),
        ));
        let saved = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| ft_autoschedule::search::SavedSchedule::from_json(&t))
        {
            Ok(s) => s,
            Err(e) => {
                println!("MISSING    {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let prep = prepare(w, scale);
        let prog = replay_program(&prep.naive, Device::Cpu, &saved.trace);
        let inputs: HashMap<String, ft_runtime::TensorVal> = input_pairs(&prep.inputs)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let r = match Runtime::new().run(prog.func(), &inputs, &HashMap::new()) {
            Ok(r) => r,
            Err(e) => {
                println!("FAIL       {}: replay run failed: {e}", w.name());
                failures += 1;
                continue;
            }
        };
        let replayed = r.counters.score();
        let recorded = ScheduleScore::new(saved.searched_cycles, saved.searched_dram);
        if replayed == recorded {
            println!(
                "ok         {}: {} cycles, {} ops replayed deterministically",
                w.name(),
                fmt_cycles(r.counters.modeled_cycles),
                saved.trace.len()
            );
        } else {
            println!(
                "MISMATCH   {}: replayed {} cycles vs recorded {}",
                w.name(),
                fmt_cycles(r.counters.modeled_cycles),
                fmt_cycles(saved.searched_cycles)
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} schedule(s) missing or diverged");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
