//! Benchmark regression and schedule-payoff gate.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--threshold 2.0]
//!             [--det-threshold 1.10] [--strict-wall]
//!             [--metrics METRICS.json [--expect-warm] [--min-hit-rate 0.99]]
//! ```
//!
//! Two independent checks, with different teeth:
//!
//! 1. **Baseline regressions** — rows matched on (workload, system,
//!    device, kind, scale) against a committed baseline. The
//!    *deterministic* metrics (`cycles`, `dram_bytes`, from the modeled
//!    cost counters — identical on every host) are **blocking** when they
//!    grow past `--det-threshold`. Wall-clock is **advisory** (printed,
//!    never fails the run) since absolute time varies across runner
//!    hardware; `--threshold` controls when it is flagged.
//!
//! 2. **Inversions** — within the *current* file, for every
//!    (workload, device, kind, scale) that has both an `ft-naive` and an
//!    `ft-optimized` row, the optimized schedule must actually pay off.
//!    A higher optimized `cycles` count is **blocking**; a higher
//!    optimized wall time is advisory unless `--strict-wall` promotes it
//!    (used on the committed full-scale results, where the VM's SIMD and
//!    privatized-reduction lowering is expected to win outright).
//!
//! 3. **Searched schedules** — within the *current* file, every
//!    `ft-searched` row (a committed `results/schedules/` trace replayed by
//!    `fig16`) must beat its `ft-optimized` counterpart on the
//!    deterministic `cycles` metric, and a *failed* `ft-searched` row is
//!    itself **blocking**: a committed schedule that no longer replays is a
//!    broken artifact, not a skippable case. Rows are only checked when
//!    present — repos without committed schedules pass vacuously.
//!
//! 4. **Memory plans** — every current row carrying both peak-bytes
//!    fields must satisfy `peak_live_bytes_planned <=
//!    peak_live_bytes_naive` (the liveness packing can never *lose* to
//!    stack-discipline allocation; equality means nothing was reusable),
//!    and whenever `naive_alloc_bytes` — the pre-planner regime's per-run
//!    allocation traffic, one fresh zeroed buffer per def incarnation per
//!    loop iteration — exceeds the stack peak, the planned peak must beat
//!    it *strictly* (the arena's reuse claim with teeth).
//!    **Blocking**. The planned peak is also a deterministic metric in
//!    check 1: any growth over the committed baseline blocks (rows whose
//!    baseline predates the field are skipped).
//!
//! An optional check reads a `fig16 --metrics` telemetry snapshot
//! (`--metrics METRICS.json`):
//!
//! 5. **Warm-cache gates** — with `--expect-warm`, the run is asserted to
//!    have executed against a fully populated artifact cache:
//!    `compiled.cc.spawned` must be exactly 0 (every kernel served without
//!    a compiler spawn) and the `compiled.cache` hit rate
//!    (`hit / (hit + miss)`) must reach `--min-hit-rate` (default 0.99).
//!    The arena steady state is gated the same way:
//!    `mem.arena.warm_probe_runs` must be non-zero (the warm `RunContext`
//!    loop actually ran) and `mem.arena.warm_alloc_calls` must be exactly
//!    0 (after the first iteration, repeated runs through a reused context
//!    perform zero tensor heap allocations). All four are **blocking**.
//!    Without `--expect-warm` the counters are printed informationally.
//!
//! Exits 0 when clean, 1 on any blocking finding, 2 on usage/IO errors.

use ft_metrics::MetricsSnapshot;
use ft_trace::JsonVal;
use std::process::ExitCode;

fn field(r: &JsonVal, k: &str) -> Option<String> {
    r.get(k).and_then(JsonVal::as_str).map(str::to_string)
}

fn key(r: &JsonVal) -> Option<String> {
    Some(format!(
        "{}/{}/{}/{}/{}",
        field(r, "workload")?,
        field(r, "system")?,
        field(r, "device")?,
        field(r, "kind")?,
        field(r, "scale")?
    ))
}

/// Grouping key with the system dropped — rows that should be compared
/// against each other in the inversion check.
fn case_key(r: &JsonVal) -> Option<String> {
    Some(format!(
        "{}/{}/{}/{}",
        field(r, "workload")?,
        field(r, "device")?,
        field(r, "kind")?,
        field(r, "scale")?
    ))
}

fn num(r: &JsonVal, k: &str) -> Option<f64> {
    r.get(k).and_then(JsonVal::as_f64)
}

fn failed(r: &JsonVal) -> bool {
    r.get("failure").and_then(JsonVal::as_str).is_some()
}

fn load(path: &str) -> Result<Vec<JsonVal>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = JsonVal::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc
        .get("records")
        .and_then(JsonVal::as_arr)
        .ok_or_else(|| format!("{path}: no `records` array"))?
        .to_vec())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = args[1..]
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args[1..].get(i.wrapping_sub(1)).map(String::as_str),
                    Some("--threshold")
                        | Some("--det-threshold")
                        | Some("--metrics")
                        | Some("--min-hit-rate")
                )
        })
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, current_path] = positional[..] else {
        eprintln!(
            "usage: bench_check <baseline.json> <current.json> \
             [--threshold X] [--det-threshold Y] [--strict-wall] \
             [--metrics METRICS.json [--expect-warm] [--min-hit-rate R]]"
        );
        return ExitCode::from(2);
    };
    let opt = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let wall_threshold = opt("--threshold", 2.0);
    let det_threshold = opt("--det-threshold", 1.10);
    let strict_wall = args.iter().any(|a| a == "--strict-wall");
    let metrics_path: Option<&String> = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1));
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    let min_hit_rate = opt("--min-hit-rate", 0.99);

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let mut blocking = 0usize;
    let mut advisories = 0usize;
    let mut compared = 0usize;

    // --- Check 1: regressions against the committed baseline. ---
    for cur in &current {
        let Some(k) = key(cur) else { continue };
        let Some(base) = baseline.iter().find(|b| key(b).as_deref() == Some(&k)) else {
            continue;
        };
        if failed(cur) || failed(base) {
            continue;
        }
        compared += 1;
        for metric in ["cycles", "dram_bytes"] {
            let (Some(bv), Some(cv)) = (num(base, metric), num(cur, metric)) else {
                continue;
            };
            if bv > 0.0 && cv > det_threshold * bv {
                blocking += 1;
                println!(
                    "BLOCKING   {k}: {metric} {cv:.0} vs baseline {bv:.0} \
                     (>{det_threshold}x, deterministic)"
                );
            }
        }
        // The planned arena peak is deterministic (a pure function of the
        // schedule), so *any* growth over the committed baseline blocks.
        // Baselines written before the field existed skip silently.
        if let (Some(bv), Some(cv)) = (
            num(base, "peak_live_bytes_planned"),
            num(cur, "peak_live_bytes_planned"),
        ) {
            if cv > bv {
                blocking += 1;
                println!(
                    "BLOCKING   {k}: planned peak {cv:.0}B vs baseline {bv:.0}B \
                     (memory plan regressed)"
                );
            }
        }
        if let (Some(bw), Some(cw)) = (num(base, "wall_ms"), num(cur, "wall_ms")) {
            if cw > wall_threshold * bw {
                advisories += 1;
                println!(
                    "ADVISORY   {k}: wall {cw:.2}ms vs baseline {bw:.2}ms (>{wall_threshold}x)"
                );
            } else {
                println!("ok         {k}: wall {cw:.2}ms vs baseline {bw:.2}ms");
            }
        }
    }

    // --- Check 2: ft-optimized must not lose to ft-naive. ---
    let mut inversions_checked = 0usize;
    for cur in &current {
        if field(cur, "system").as_deref() != Some("ft-optimized") || failed(cur) {
            continue;
        }
        let Some(ck) = case_key(cur) else { continue };
        let Some(naive) = current.iter().find(|r| {
            field(r, "system").as_deref() == Some("ft-naive")
                && case_key(r).as_deref() == Some(&ck)
                && !failed(r)
        }) else {
            continue;
        };
        inversions_checked += 1;
        if let (Some(nc), Some(oc)) = (num(naive, "cycles"), num(cur, "cycles")) {
            if oc > nc {
                blocking += 1;
                println!(
                    "BLOCKING   {ck}: ft-optimized cycles {oc:.0} > ft-naive {nc:.0} \
                     (schedule does not pay off)"
                );
            }
        }
        if let (Some(nw), Some(ow)) = (num(naive, "wall_ms"), num(cur, "wall_ms")) {
            if ow > nw {
                let label = if strict_wall { "BLOCKING" } else { "ADVISORY" };
                if strict_wall {
                    blocking += 1;
                } else {
                    advisories += 1;
                }
                println!(
                    "{label}   {ck}: ft-optimized wall {ow:.3}ms > ft-naive {nw:.3}ms (inversion)"
                );
            } else {
                println!(
                    "ok         {ck}: ft-optimized wall {ow:.3}ms <= ft-naive {nw:.3}ms"
                );
            }
        }
    }

    // --- Check 3: ft-searched must pay off over ft-optimized. ---
    let mut searched_checked = 0usize;
    for cur in &current {
        if field(cur, "system").as_deref() != Some("ft-searched") {
            continue;
        }
        let Some(ck) = case_key(cur) else { continue };
        if failed(cur) {
            // A committed schedule that fails to replay is a broken
            // artifact: blocking, unlike ordinary failed rows.
            blocking += 1;
            let why = field(cur, "failure").unwrap_or_default();
            println!("BLOCKING   {ck}: ft-searched row failed ({why})");
            continue;
        }
        let Some(opt) = current.iter().find(|r| {
            field(r, "system").as_deref() == Some("ft-optimized")
                && case_key(r).as_deref() == Some(&ck)
                && !failed(r)
        }) else {
            continue;
        };
        searched_checked += 1;
        if let (Some(oc), Some(sc)) = (num(opt, "cycles"), num(cur, "cycles")) {
            if sc > oc {
                blocking += 1;
                println!(
                    "BLOCKING   {ck}: ft-searched cycles {sc:.0} > ft-optimized {oc:.0} \
                     (search does not pay off)"
                );
            } else {
                println!(
                    "ok         {ck}: ft-searched cycles {sc:.0} <= ft-optimized {oc:.0}"
                );
            }
        }
    }

    // --- Check 4: memory plans must never exceed naive allocation. ---
    let mut plans_checked = 0usize;
    for cur in &current {
        let (Some(n), Some(p)) = (
            num(cur, "peak_live_bytes_naive"),
            num(cur, "peak_live_bytes_planned"),
        ) else {
            continue;
        };
        plans_checked += 1;
        let Some(k) = key(cur) else { continue };
        if p > n {
            blocking += 1;
            println!(
                "BLOCKING   {k}: planned peak {p:.0}B > naive {n:.0}B \
                 (liveness packing must never lose)"
            );
        }
        // Against the pre-planner regime (a fresh zeroed buffer per def
        // incarnation, per loop iteration) the win must be strict whenever
        // loop reallocation actually inflated that regime past the stack
        // peak — equality there means the arena reused nothing.
        if let Some(a) = num(cur, "naive_alloc_bytes") {
            if a > n && p >= a {
                blocking += 1;
                println!(
                    "BLOCKING   {k}: planned peak {p:.0}B >= per-run naive \
                     allocation {a:.0}B (arena reuse claim is vacuous)"
                );
            }
        }
    }

    // --- Check 5: runtime-telemetry warm-cache gates. ---
    if let Some(path) = metrics_path {
        let snap = match std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|t| MetricsSnapshot::from_json(&t).map_err(|e| format!("{path}: {e}")))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let spawned = snap.counter("compiled.cc.spawned");
        let hit = snap.counter("compiled.cache.hit");
        let miss = snap.counter("compiled.cache.miss");
        let lookups = hit + miss;
        let hit_rate = if lookups == 0 {
            f64::NAN
        } else {
            hit as f64 / lookups as f64
        };
        if expect_warm {
            if spawned != 0 {
                blocking += 1;
                println!(
                    "BLOCKING   metrics: warm run spawned the compiler {spawned} time(s) \
                     (compiled.cc.spawned must be 0)"
                );
            } else {
                println!("ok         metrics: compiled.cc.spawned = 0 (no compiler spawns)");
            }
            if lookups == 0 {
                blocking += 1;
                println!(
                    "BLOCKING   metrics: no compiled.cache lookups recorded — the compiled \
                     engine never ran, so the warm-cache gate is vacuous"
                );
            } else if hit_rate < min_hit_rate {
                blocking += 1;
                println!(
                    "BLOCKING   metrics: cache hit rate {hit_rate:.3} ({hit}/{lookups}) \
                     below --min-hit-rate {min_hit_rate}"
                );
            } else {
                println!(
                    "ok         metrics: cache hit rate {hit_rate:.3} ({hit}/{lookups})"
                );
            }
            let warm_allocs = snap.counter("mem.arena.warm_alloc_calls");
            let probes = snap.counter("mem.arena.warm_probe_runs");
            if probes == 0 {
                blocking += 1;
                println!(
                    "BLOCKING   metrics: no warm arena probes recorded — the reused-RunContext \
                     loop never ran, so the zero-allocation gate is vacuous"
                );
            } else if warm_allocs != 0 {
                blocking += 1;
                println!(
                    "BLOCKING   metrics: warm RunContext iterations performed {warm_allocs} \
                     arena/staging allocation(s) (mem.arena.warm_alloc_calls must be 0)"
                );
            } else {
                println!(
                    "ok         metrics: {probes} warm arena probe(s), 0 allocations in steady state"
                );
            }
        } else {
            println!(
                "info       metrics: compiled.cc.spawned {spawned}, cache {hit} hit / {miss} miss, \
                 arena warm allocs {} over {} probe(s)",
                snap.counter("mem.arena.warm_alloc_calls"),
                snap.counter("mem.arena.warm_probe_runs"),
            );
        }
    }

    println!(
        "{compared} baseline rows compared, {inversions_checked} optimized/naive pairs, \
         {searched_checked} searched/optimized pairs and {plans_checked} memory plans checked: \
         {blocking} blocking, {advisories} advisory"
    );
    if blocking > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
