//! Non-blocking wall-clock regression check: compare a freshly generated
//! `BENCH.json` against a committed baseline.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--threshold 2.0]
//! ```
//!
//! Rows are matched on (workload, system, device, kind, scale); a row
//! regresses when `current.wall_ms > threshold * baseline.wall_ms`. Exits 1
//! if any row regresses — CI runs this step with `continue-on-error` since
//! absolute wall-clock varies across runner hardware.

use ft_trace::JsonVal;
use std::process::ExitCode;

fn key(r: &JsonVal) -> Option<String> {
    let f = |k: &str| r.get(k).and_then(JsonVal::as_str).map(str::to_string);
    Some(format!(
        "{}/{}/{}/{}/{}",
        f("workload")?,
        f("system")?,
        f("device")?,
        f("kind")?,
        f("scale")?
    ))
}

fn load(path: &str) -> Result<Vec<JsonVal>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = JsonVal::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc
        .get("records")
        .and_then(JsonVal::as_arr)
        .ok_or_else(|| format!("{path}: no `records` array"))?
        .to_vec())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    let [baseline_path, current_path] = positional[..] else {
        eprintln!("usage: bench_check <baseline.json> <current.json> [--threshold X]");
        return ExitCode::from(2);
    };
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for cur in &current {
        let Some(k) = key(cur) else { continue };
        let Some(base) = baseline.iter().find(|b| key(b).as_deref() == Some(&k)) else {
            continue;
        };
        let (Some(bw), Some(cw)) = (
            base.get("wall_ms").and_then(JsonVal::as_f64),
            cur.get("wall_ms").and_then(JsonVal::as_f64),
        ) else {
            continue;
        };
        compared += 1;
        if cw > threshold * bw {
            regressions += 1;
            println!("REGRESSION {k}: {cw:.2}ms vs baseline {bw:.2}ms (>{threshold}x)");
        } else {
            println!("ok         {k}: {cw:.2}ms vs baseline {bw:.2}ms");
        }
    }
    println!("{compared} rows compared, {regressions} regressions (threshold {threshold}x)");
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
