//! Regenerates paper Fig. 16: end-to-end time per workload × device ×
//! system. Default is Fig. 16(a) (no differentiation); `--grad` produces
//! Fig. 16(b) (forward + backward, GAT excluded, OOM reported as in the
//! paper). `--small` uses the reduced Criterion shapes.
//!
//! Each run also writes the machine-readable `results/BENCH.json`
//! (override with `--json PATH`, suppress with `--no-json`); a plain run
//! followed by a `--grad` run accumulates both record kinds in one file.
//!
//! `--metrics [PATH]` additionally exports the process-wide runtime
//! telemetry registry (engine run/kernel histograms, compile counts,
//! `compiled.cache` hit/miss, pool stats) as a `ft-metrics` JSON snapshot,
//! default `results/METRICS.json`. On a warm artifact cache the snapshot
//! must show `compiled.cc.spawned == 0` — `bench_check --metrics
//! --expect-warm` gates on exactly that.

use bench::{
    bench_metrics, fmt_bytes, fmt_cycles, json_record, load_saved_schedule, prepare,
    run_forward_capped, run_forward_traced, run_grad_capped, write_bench_json, Scale, System,
    Workload,
};
use ft_autodiff::TapePolicy;
use ft_ir::Device;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let grad = args.iter().any(|a| a == "--grad");
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    // Optional GPU capacity cap in MiB (reproduces the OOM columns).
    let capacity: Option<usize> = args
        .iter()
        .position(|a| a == "--capacity")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map(|mib| mib << 20);
    // Optional compilation-provenance trace of the optimized CPU runs
    // (`--trace PATH`): a Chrome-format artifact whose `vm.lower` spans
    // record every SIMD / parallel-region lowering decision.
    let trace_path: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.into());
    // Optional metrics export (`--metrics [PATH]`): the shared telemetry
    // registry, frozen after the sweep.
    let metrics_path: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--metrics").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .map_or_else(|| "results/METRICS.json".into(), |p| p.into())
        });
    let json_path: Option<std::path::PathBuf> = if args.iter().any(|a| a == "--no-json") {
        None
    } else {
        Some(
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map_or_else(|| "results/BENCH.json".into(), |p| p.into()),
        )
    };
    let systems = [System::OpBase, System::FtNaive, System::FtOptimized];
    println!(
        "# Fig. 16({}) — end-to-end {}",
        if grad { "b" } else { "a" },
        if grad {
            "with differentiation (fwd + bwd)"
        } else {
            "without differentiation"
        }
    );
    println!("# Cells: modeled cycles (wall ms). Modeled cycles come from the");
    println!("# instrumented interpreter and are the paper's reproduced quantity;");
    println!("# wall ms is measured on the fast-mode bytecode VM for FreeTensor");
    println!("# systems and on native kernels for the operator baseline.");
    println!("# `VM speedup` = instrumented-interpreter wall / fast-VM wall for");
    println!("# the FreeTensor (optimized) column. On CPU rows, `compiled` is the");
    println!("# native compiled engine's wall time (C -> cc -> shared object");
    println!("# called in-process; compile time amortized by the artifact cache).");
    println!("# `arena peak` = planned/naive peak temporary bytes of the optimized");
    println!("# schedule under the static memory plan (liveness-packed arena vs");
    println!("# stack-discipline allocation).");
    println!(
        "{:<12} {:<5} {:>24} {:>24} {:>24}",
        "workload",
        "dev",
        systems[0].label(),
        systems[1].label(),
        systems[2].label()
    );
    let workloads: Vec<Workload> = if grad {
        vec![Workload::SubdivNet, Workload::Longformer, Workload::SoftRas]
    } else {
        Workload::ALL.to_vec()
    };
    let kind = if grad { "grad" } else { "forward" };
    let mut records = Vec::new();
    for &w in &workloads {
        let prep = prepare(w, scale);
        for dev in [Device::Cpu, Device::Gpu] {
            let mut cells = Vec::new();
            let mut best_baseline = f64::INFINITY;
            let mut ft_cycles = f64::NAN;
            let mut ft_vm_speedup = None;
            let mut ft_compiled = None;
            let mut ft_peaks = None;
            for sys in systems {
                let r = if grad {
                    run_grad_capped(&prep, sys, dev, TapePolicy::Selective, capacity)
                } else {
                    run_forward_capped(&prep, sys, dev, capacity)
                };
                let cell = match &r.failure {
                    Some(f) => match r.failed_stage {
                        Some(stage) => format!("{f} [{stage}]"),
                        None => f.clone(),
                    },
                    None => format!("{} ({:.1}ms)", fmt_cycles(r.cycles), r.wall_ms),
                };
                if r.failure.is_none() {
                    match sys {
                        System::FtOptimized => {
                            ft_cycles = r.cycles;
                            ft_vm_speedup = r.vm_speedup();
                            ft_compiled = r.compiled_wall_ms;
                            ft_peaks = r.peak_planned_bytes.zip(r.peak_naive_bytes);
                        }
                        _ => best_baseline = best_baseline.min(r.cycles),
                    }
                }
                records.push(json_record(w, sys, dev, kind, scale, &r));
                cells.push(cell);
            }
            let speedup = if ft_cycles.is_nan() || best_baseline.is_infinite() {
                "-".to_string()
            } else {
                format!("{:.2}x", best_baseline / ft_cycles)
            };
            let vm_col = ft_vm_speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.1}x"));
            let compiled_col =
                ft_compiled.map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}ms"));
            let arena_col = ft_peaks.map_or_else(
                || "-".to_string(),
                |(p, n)| format!("{}/{}", fmt_bytes(p), fmt_bytes(n)),
            );
            println!(
                "{:<12} {:<5} {:>24} {:>24} {:>24}   speedup vs best other: {:<8} VM speedup: {:<6} compiled: {:<8} arena peak: {}",
                w.name(),
                dev.to_string(),
                cells[0],
                cells[1],
                cells[2],
                speedup,
                vm_col,
                compiled_col,
                arena_col
            );
            // Search-found schedules ride along as a fourth system on CPU
            // forward rows, whenever a committed `results/schedules/` trace
            // exists for this (workload, scale) — replayed, not re-searched.
            if !grad && dev == Device::Cpu && load_saved_schedule(w, scale).is_some() {
                let r = run_forward_capped(&prep, System::FtSearched, dev, capacity);
                let vs_rule = if r.failure.is_none() && ft_cycles.is_finite() && r.cycles > 0.0 {
                    format!("{:.2}x vs rule-based", ft_cycles / r.cycles)
                } else {
                    r.failure.clone().unwrap_or_else(|| "-".to_string())
                };
                println!(
                    "{:<12} {:<5} {:>74}   searched: {} ({:.1}ms) {} [search {:.0}ms]",
                    "",
                    "",
                    "",
                    fmt_cycles(r.cycles),
                    r.wall_ms,
                    vs_rule,
                    r.search_wall_ms.unwrap_or(0.0)
                );
                records.push(json_record(w, System::FtSearched, dev, kind, scale, &r));
            }
        }
    }
    if let Some(path) = json_path {
        match write_bench_json(&path, kind, records) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    if let Some(path) = trace_path {
        let sink = ft_trace::TraceSink::new();
        for &w in &workloads {
            let prep = prepare(w, scale);
            let r = run_forward_traced(&prep, System::FtOptimized, Device::Cpu, &sink);
            if let Some(f) = r.failure {
                eprintln!("trace run failed on {}: {f}", w.name());
            }
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        // Stamp the cumulative bench metrics into the trace as Chrome "C"
        // counter events, so the exported artifact carries the registry
        // state alongside the lowering spans.
        sink.metrics_sample(&bench_metrics().snapshot());
        ft_trace::write_chrome_trace(&sink, &path).expect("write trace");
        let lower: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.cat == "vm.lower")
            .collect();
        let simd_accepted = lower
            .iter()
            .filter(|e| {
                e.name == "vm.simd"
                    && e.args.iter().any(|(k, v)| k == "accepted" && v == "true")
            })
            .count();
        eprintln!(
            "wrote {} ({} vm.lower spans, {} accepted vm.simd)",
            path.display(),
            lower.len(),
            simd_accepted
        );
        assert!(
            simd_accepted > 0,
            "optimized CPU runs produced no accepted vm.simd spans"
        );
    }
    if let Some(path) = metrics_path {
        let snap = bench_metrics().snapshot();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, snap.to_json()).expect("write metrics");
        eprintln!(
            "wrote {} (cc spawned {}, cache {} hit / {} miss, {} compiled runs, \
             arena warm allocs {} over {} probe(s))",
            path.display(),
            snap.counter("compiled.cc.spawned"),
            snap.counter("compiled.cache.hit"),
            snap.counter("compiled.cache.miss"),
            snap.histograms
                .get("engine.compiled.run_us")
                .map_or(0, |h| h.count),
            snap.counter("mem.arena.warm_alloc_calls"),
            snap.counter("mem.arena.warm_probe_runs"),
        );
    }
}
