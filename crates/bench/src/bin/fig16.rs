//! Regenerates paper Fig. 16: end-to-end time per workload × device ×
//! system. Default is Fig. 16(a) (no differentiation); `--grad` produces
//! Fig. 16(b) (forward + backward, GAT excluded, OOM reported as in the
//! paper). `--small` uses the reduced Criterion shapes.

use bench::{fmt_cycles, prepare, run_forward_capped, run_grad_capped, Scale, System, Workload};
use ft_autodiff::TapePolicy;
use ft_ir::Device;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let grad = args.iter().any(|a| a == "--grad");
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    // Optional GPU capacity cap in MiB (reproduces the OOM columns).
    let capacity: Option<usize> = args
        .iter()
        .position(|a| a == "--capacity")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map(|mib| mib << 20);
    let systems = [System::OpBase, System::FtNaive, System::FtOptimized];
    println!(
        "# Fig. 16({}) — end-to-end {}  (modeled cycles; wall ms in parens)",
        if grad { "b" } else { "a" },
        if grad {
            "with differentiation (fwd + bwd)"
        } else {
            "without differentiation"
        }
    );
    println!(
        "{:<12} {:<5} {:>24} {:>24} {:>24}",
        "workload",
        "dev",
        systems[0].label(),
        systems[1].label(),
        systems[2].label()
    );
    let workloads: Vec<Workload> = if grad {
        vec![Workload::SubdivNet, Workload::Longformer, Workload::SoftRas]
    } else {
        Workload::ALL.to_vec()
    };
    for w in workloads {
        let prep = prepare(w, scale);
        for dev in [Device::Cpu, Device::Gpu] {
            let mut cells = Vec::new();
            let mut best_baseline = f64::INFINITY;
            let mut ft_cycles = f64::NAN;
            for sys in systems {
                let r = if grad {
                    run_grad_capped(&prep, sys, dev, TapePolicy::Selective, capacity)
                } else {
                    run_forward_capped(&prep, sys, dev, capacity)
                };
                let cell = match &r.failure {
                    Some(f) => f.clone(),
                    None => format!("{} ({:.1}ms)", fmt_cycles(r.cycles), r.wall_ms),
                };
                if r.failure.is_none() {
                    match sys {
                        System::FtOptimized => ft_cycles = r.cycles,
                        _ => best_baseline = best_baseline.min(r.cycles),
                    }
                }
                cells.push(cell);
            }
            let speedup = if ft_cycles.is_nan() || best_baseline.is_infinite() {
                "-".to_string()
            } else {
                format!("{:.2}x", best_baseline / ft_cycles)
            };
            println!(
                "{:<12} {:<5} {:>24} {:>24} {:>24}   speedup vs best other: {}",
                w.name(),
                dev.to_string(),
                cells[0],
                cells[1],
                cells[2],
                speedup
            );
        }
    }
}
