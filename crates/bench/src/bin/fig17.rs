//! Regenerates paper Fig. 17 — analysis of the SubdivNet GPU speedup:
//! kernel invocations, DRAM bytes, L2 bytes, and FLOP count, FreeTensor
//! relative to the operator baseline.
//!
//! `--trace` additionally records full compilation provenance (pass spans,
//! auto-schedule decisions) and the per-statement runtime profile into a
//! Chrome trace-event JSON under `results/trace/` (load it in Perfetto or
//! `chrome://tracing`), plus a human-readable provenance report.

use bench::{fmt_bytes, prepare, run_forward, run_forward_traced, Scale, System, Workload};
use ft_ir::Device;
use std::path::Path;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let trace = std::env::args().any(|a| a == "--trace");
    let prep = prepare(
        Workload::SubdivNet,
        if small { Scale::Small } else { Scale::Full },
    );
    let sink = trace.then(ft_trace::TraceSink::new);
    let (ft, ob) = match &sink {
        Some(s) => (
            run_forward_traced(&prep, System::FtOptimized, Device::Gpu, s),
            run_forward_traced(&prep, System::OpBase, Device::Gpu, s),
        ),
        None => (
            run_forward(&prep, System::FtOptimized, Device::Gpu),
            run_forward(&prep, System::OpBase, Device::Gpu),
        ),
    };
    println!("# Fig. 17 — analysis of the SubdivNet GPU speedup");
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "metric", "baseline", "FreeTensor", "FT/baseline"
    );
    let rows: [(&str, f64, f64, bool); 4] = [
        (
            "kernel invocations",
            ob.counters.kernel_launches as f64,
            ft.counters.kernel_launches as f64,
            false,
        ),
        (
            "DRAM bytes",
            ob.counters.dram_bytes as f64,
            ft.counters.dram_bytes as f64,
            true,
        ),
        (
            "L2 bytes",
            ob.counters.l2_bytes as f64,
            ft.counters.l2_bytes as f64,
            true,
        ),
        ("FLOPs", ob.counters.flops as f64, ft.counters.flops as f64, false),
    ];
    for (name, base, ours, bytes) in rows {
        let fmt = |v: f64| {
            if bytes {
                fmt_bytes(v as u64)
            } else {
                format!("{v:.0}")
            }
        };
        println!(
            "{:<22} {:>16} {:>16} {:>11.2}%",
            name,
            fmt(base),
            fmt(ours),
            100.0 * ours / base
        );
    }
    println!(
        "\nmodel note: the op-base baseline charges every bulk-kernel byte to \
         both L2 and DRAM (no cache simulation between kernels), so its L2 \
         row equals its DRAM row by construction; FreeTensor's L2 traffic \
         comes from the per-access cache simulator."
    );
    println!(
        "paper reference: 1 kernel vs >=6; DRAM 3.31%; L2 18.38%; FLOPs 79.72%"
    );
    if let Some(sink) = sink {
        let scale = if small { "small" } else { "full" };
        let dir = Path::new("results/trace");
        let json_path = dir.join(format!("fig17-{scale}.trace.json"));
        let report_path = dir.join(format!("fig17-{scale}.report.txt"));
        ft_trace::write_chrome_trace(&sink, &json_path).expect("write trace");
        let stats = ft_trace::validate_chrome_trace(
            &std::fs::read_to_string(&json_path).expect("read back trace"),
        )
        .expect("emitted trace must validate");
        std::fs::write(&report_path, ft_trace::provenance_report(&sink))
            .expect("write report");
        println!(
            "\ntrace: {} ({} events, {} tracks) — load in Perfetto / chrome://tracing",
            json_path.display(),
            stats.events,
            stats.tracks
        );
        println!("report: {}", report_path.display());
    }
}
