//! Regenerates paper Fig. 17 — analysis of the SubdivNet GPU speedup:
//! kernel invocations, DRAM bytes, L2 bytes, and FLOP count, FreeTensor
//! relative to the operator baseline.

use bench::{fmt_bytes, prepare, run_forward, Scale, System, Workload};
use ft_ir::Device;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let prep = prepare(
        Workload::SubdivNet,
        if small { Scale::Small } else { Scale::Full },
    );
    let ft = run_forward(&prep, System::FtOptimized, Device::Gpu);
    let ob = run_forward(&prep, System::OpBase, Device::Gpu);
    println!("# Fig. 17 — analysis of the SubdivNet GPU speedup");
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "metric", "baseline", "FreeTensor", "FT/baseline"
    );
    let rows: [(&str, f64, f64, bool); 4] = [
        (
            "kernel invocations",
            ob.counters.kernel_launches as f64,
            ft.counters.kernel_launches as f64,
            false,
        ),
        (
            "DRAM bytes",
            ob.counters.dram_bytes as f64,
            ft.counters.dram_bytes as f64,
            true,
        ),
        (
            "L2 bytes",
            ob.counters.l2_bytes.max(ob.counters.dram_bytes) as f64,
            ft.counters.l2_bytes as f64,
            true,
        ),
        ("FLOPs", ob.counters.flops as f64, ft.counters.flops as f64, false),
    ];
    for (name, base, ours, bytes) in rows {
        let fmt = |v: f64| {
            if bytes {
                fmt_bytes(v as u64)
            } else {
                format!("{v:.0}")
            }
        };
        println!(
            "{:<22} {:>16} {:>16} {:>11.2}%",
            name,
            fmt(base),
            fmt(ours),
            100.0 * ours / base
        );
    }
    println!(
        "\npaper reference: 1 kernel vs >=6; DRAM 3.31%; L2 18.38%; FLOPs 79.72%"
    );
}
