//! Regenerates paper Fig. 18 — the selective-materialization ablation:
//! gradient time with every intermediate materialized, FT(-)
//! (`TapePolicy::All`), vs the selective strategy, FT(+)
//! (`TapePolicy::Selective`), with forward/backward breakdown and peak
//! memory (OOM reported where FT(-) exceeds device capacity).

use bench::{fmt_bytes, fmt_cycles, prepare, run_forward, run_grad, Scale, System, Workload};
use ft_autodiff::TapePolicy;
use ft_ir::Device;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { Scale::Small } else { Scale::Full };
    println!("# Fig. 18 — selective intermediate tensor materialization");
    println!(
        "{:<12} {:<5} {:>14} {:>14} {:>14} {:>10} {:>12} {:>12}",
        "workload", "dev", "FT(-) total", "FT(+) total", "speedup", "fwd-only", "FT(-) peak", "FT(+) peak"
    );
    for w in [Workload::SubdivNet, Workload::Longformer, Workload::SoftRas] {
        let prep = prepare(w, scale);
        for dev in [Device::Cpu, Device::Gpu] {
            let fwd = run_forward(&prep, System::FtOptimized, dev);
            let minus = run_grad(&prep, System::FtOptimized, dev, TapePolicy::All);
            let plus = run_grad(&prep, System::FtOptimized, dev, TapePolicy::Selective);
            let peak = |r: &bench::CaseResult| {
                r.counters
                    .peak_bytes
                    .get(&dev.to_string())
                    .copied()
                    .map(fmt_bytes)
                    .unwrap_or_else(|| "-".to_string())
            };
            let cell = |r: &bench::CaseResult| match &r.failure {
                Some(f) => f.clone(),
                None => fmt_cycles(r.cycles),
            };
            let speedup = match (&minus.failure, &plus.failure) {
                (None, None) => format!("{:.2}x", minus.cycles / plus.cycles),
                _ => "-".to_string(),
            };
            println!(
                "{:<12} {:<5} {:>14} {:>14} {:>14} {:>10} {:>12} {:>12}",
                w.name(),
                dev.to_string(),
                cell(&minus),
                cell(&plus),
                speedup,
                fmt_cycles(fwd.cycles),
                peak(&minus),
                peak(&plus),
            );
        }
    }
    // OOM rescue (the paper's Longformer-style case): on a memory-capped
    // GPU, the all-materialized tape set exceeds capacity while the
    // selective one fits.
    oom_demo(small);
    println!("\npaper reference: FT(+) is 1.21x–6.83x over FT(-), and rescues one OOM case");
}

fn oom_demo(small: bool) {
    use ft_workloads::{input_pairs, longformer};
    let p = if small {
        longformer::Params {
            seq_len: 256,
            w: 32,
            feat_len: 16,
        }
    } else {
        longformer::Params {
            seq_len: 1024,
            w: 64,
            feat_len: 32,
        }
    };
    let ins = longformer::inputs(&p, 2022);
    let prog = longformer::program(&p);
    // Capacity chosen between the selective and all-materialized footprints.
    let l = 2 * p.w + 1;
    let tape_bytes = p.seq_len * l * 4; // dot.tape (needed by both)
    let input_bytes = 4 * p.seq_len * p.feat_len * 4;
    let config = ft_runtime::DeviceConfig {
        gpu_mem_capacity: input_bytes + 2 * tape_bytes + tape_bytes / 2,
        ..Default::default()
    };
    let rt = ft_runtime::Runtime::with_config(config);
    let seed = ft_runtime::TensorVal::from_f32(
        &[p.seq_len, p.feat_len],
        vec![1.0; p.seq_len * p.feat_len],
    );
    println!("\n## OOM rescue on a memory-capped GPU (Longformer, n={}, w={})", p.seq_len, p.w);
    for (name, policy) in [("FT(-)", TapePolicy::All), ("FT(+)", TapePolicy::Selective)] {
        let grad = prog
            .grad(&ft_autodiff::GradOptions {
                policy,
                ..Default::default()
            })
            .expect("grad transform")
            .optimize(&ft_autoschedule::Target::gpu());
        let mut pairs = input_pairs(&ins);
        pairs.push(("y.grad", seed.clone()));
        match grad.run(&rt, &pairs, &[]) {
            Ok(r) => println!(
                "{name}: OK, peak {} of capacity {}",
                fmt_bytes(r.counters.peak_bytes.get("gpu").copied().unwrap_or(0)),
                fmt_bytes(rt.config.gpu_mem_capacity as u64)
            ),
            Err(e) => println!("{name}: {e}"),
        }
    }
}
