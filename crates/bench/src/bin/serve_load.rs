//! Closed-loop load generator for the `ft-serve` front door.
//!
//! ```text
//! serve_load [--workload subdivnet] [--small|--full] [--stampede 64]
//!            [--warm-iters 256] [--clients 4] [--workers N]
//!            [--json results/SERVE.json] [--gate] [--min-hit-rate 0.99]
//!            [--max-p99-us 2000000] [--max-build-spawns 2]
//! ```
//!
//! Three phases against one [`ft_serve::Server`] on a **fresh** artifact
//! cache directory, all sharing one metrics registry:
//!
//! 1. **Stampede** — `--stampede` identical requests submitted at once
//!    from round-robin clients. The compile must be paid exactly once:
//!    the singleflight + file lock collapses every concurrent miss onto
//!    one `cc` invocation (`compiled.cc.spawned` = the spawns of a single
//!    build; 1 with OpenMP, 2 where the serial fallback re-compiles), and
//!    `compiled.cache.publish == 1`.
//! 2. **Warm closed loop** — `--clients` threads each issue digest-mode
//!    requests back-to-back (a client submits its next request only after
//!    the previous reply arrives — closed loop). Reports requests/sec and
//!    p50/p99 latency from the `serve.latency_us` histogram. Zero `cc`
//!    spawns are expected: the key is warm.
//! 3. **Warm arena probe** — two more serial digest requests; the delta
//!    of `mem.arena.alloc_calls` across them is published as
//!    `mem.arena.warm_alloc_calls` (+ `mem.arena.warm_probe_runs`), the
//!    same steady-state claim `bench_check --expect-warm` gates: a warm
//!    request through a recycled context performs **zero** tensor heap
//!    allocations.
//!
//! Writes a machine-readable summary (including the full metrics
//! snapshot) to `--json` (default `results/SERVE.json`). With `--gate`
//! the process exits non-zero when any serving invariant fails:
//! warm-phase `cc` spawns ≠ 0, cache hit rate < `--min-hit-rate`,
//! warm-probe allocations ≠ 0, stampede spawns > `--max-build-spawns`,
//! any request error, or p99 latency above `--max-p99-us`. CI runs this
//! as the blocking `serve-smoke` job.

use bench::{prepare, Scale, Workload};
use ft_autoschedule::Target;
use ft_metrics::{Metrics, MetricsSnapshot};
use ft_serve::{Request, ServeConfig, Server};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn opt_num(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_f64(args: &[String], name: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1))
        .and_then(|k| Workload::from_key(k))
        .unwrap_or(Workload::SubdivNet);
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Small
    };
    let stampede = opt_num(&args, "--stampede", 64) as usize;
    let warm_iters = opt_num(&args, "--warm-iters", 256) as usize;
    let clients = (opt_num(&args, "--clients", 4) as usize).max(1);
    let workers = opt_num(
        &args,
        "--workers",
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    ) as usize;
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "results/SERVE.json".to_string(), |p| p.clone());
    let gate = args.iter().any(|a| a == "--gate");
    let min_hit_rate = opt_f64(&args, "--min-hit-rate", 0.99);
    let max_p99_us = opt_num(&args, "--max-p99-us", 2_000_000);
    let max_build_spawns = opt_num(&args, "--max-build-spawns", 2);

    if !ft_runtime::cc_available() {
        eprintln!("error: no C compiler on this host — the serving path needs `cc`");
        return ExitCode::from(2);
    }

    // Fresh cache dir: the stampede must pay (and dedup) a real compile.
    let cache_dir = std::env::temp_dir().join(format!(
        "ft-serve-load-{}-{}",
        std::process::id(),
        workload.schedule_key()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let prep = prepare(workload, scale);
    let optimized = prep.naive.optimize(&Target::cpu());
    let func = Arc::new(optimized.func().clone());
    let inputs = prep.inputs.clone();
    let sizes: HashMap<String, i64> = HashMap::new();

    let metrics = Metrics::new();
    let server = Arc::new(Server::new(
        ServeConfig {
            workers: workers.max(1),
            queue_cap: (stampede + clients).max(256),
            mem_budget_bytes: None,
            ctx_pool_per_key: workers.max(1) + 1,
            cache_dir: Some(cache_dir.clone()),
        },
        metrics.clone(),
    ));
    let req = || Request::new(func.clone(), inputs.clone(), sizes.clone()).digest();

    println!(
        "# serve_load: {} ({}), {} workers, {} clients, fresh cache {}",
        workload.name(),
        scale.key(),
        workers.max(1),
        clients,
        cache_dir.display()
    );

    // --- Phase 1: stampede of identical requests on a cold cache. ---
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(stampede);
    for i in 0..stampede {
        let client = format!("client-{}", i % clients);
        match server.submit(&client, req()) {
            Ok(rx) => pending.push(rx),
            Err(e) => {
                eprintln!("error: stampede submit rejected: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut stampede_errors = 0usize;
    let mut digest0 = None;
    for rx in pending {
        match rx.recv() {
            Ok(Ok(resp)) => {
                let d = resp.digest().expect("digest-mode response");
                match digest0 {
                    None => digest0 = Some(d),
                    Some(d0) if d0 != d => {
                        eprintln!("error: stampede responses disagree: {d0:#x} vs {d:#x}");
                        return ExitCode::from(2);
                    }
                    Some(_) => {}
                }
            }
            Ok(Err(e)) => {
                stampede_errors += 1;
                eprintln!("warn: stampede request failed: {e}");
            }
            Err(e) => {
                stampede_errors += 1;
                eprintln!("warn: stampede reply channel dropped: {e}");
            }
        }
    }
    let stampede_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after_stampede = metrics.snapshot();
    let stampede_spawned = after_stampede.counter("compiled.cc.spawned");
    let stampede_publish = after_stampede.counter("compiled.cache.publish");
    let dedup_hits = after_stampede.counter("serve.inflight_dedup_hits");
    println!(
        "stampede: {stampede} identical requests in {stampede_wall_ms:.1}ms — \
         cc spawned {stampede_spawned}, cache publish {stampede_publish}, \
         {dedup_hits} in-flight dedup hits, {stampede_errors} errors"
    );

    // --- Phase 2: warm closed loop across client threads. ---
    let per_client = warm_iters.div_ceil(clients);
    let warm_total = per_client * clients;
    let t1 = Instant::now();
    let warm_errors: usize = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let server = Arc::clone(&server);
            let req = &req;
            handles.push(s.spawn(move || {
                let client = format!("client-{c}");
                let mut errors = 0usize;
                for _ in 0..per_client {
                    if server.call(&client, req()).is_err() {
                        errors += 1;
                    }
                }
                errors
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let warm_wall_s = t1.elapsed().as_secs_f64();
    let after_warm = metrics.snapshot();
    let warm_spawned = after_warm.counter("compiled.cc.spawned") - stampede_spawned;
    let rps = warm_total as f64 / warm_wall_s;
    let warm_lat = after_warm
        .histograms
        .get("serve.latency_us")
        .cloned()
        .map(|h| {
            after_stampede
                .histograms
                .get("serve.latency_us")
                .map_or_else(|| h.clone(), |base| h.diff(base))
        })
        .unwrap_or_else(ft_metrics::HistogramSnapshot::empty);
    let p50_us = warm_lat.quantile(0.50);
    let p99_us = warm_lat.quantile(0.99);
    println!(
        "warm: {warm_total} requests over {clients} closed-loop clients in {:.2}s — \
         {rps:.0} req/s, p50 {p50_us}us, p99 {p99_us}us, cc spawned {warm_spawned}, \
         {warm_errors} errors",
        warm_wall_s
    );

    // --- Phase 3: warm arena probe (steady-state zero-allocation claim). ---
    let before_probe = metrics.snapshot().counter("mem.arena.alloc_calls");
    let mut probe_errors = 0usize;
    for _ in 0..2 {
        if server.call("probe", req()).is_err() {
            probe_errors += 1;
        }
    }
    let warm_allocs = metrics.snapshot().counter("mem.arena.alloc_calls") - before_probe;
    metrics.counter("mem.arena.warm_alloc_calls").add(warm_allocs);
    metrics.counter("mem.arena.warm_probe_runs").inc();
    println!("probe: 2 warm digest requests, {warm_allocs} arena/staging allocation(s)");

    let snap = metrics.snapshot();
    let hit = snap.counter("compiled.cache.hit");
    let miss = snap.counter("compiled.cache.miss");
    let hit_rate = if hit + miss == 0 {
        f64::NAN
    } else {
        hit as f64 / (hit + miss) as f64
    };
    println!(
        "cache: {hit} hit / {miss} miss (rate {hit_rate:.4}); \
         serve.requests {}, serve.warm {}, serve.cold {}",
        snap.counter("serve.requests"),
        snap.counter("serve.warm"),
        snap.counter("serve.cold"),
    );

    // --- Gates (always evaluated; only `--gate` makes them fatal). ---
    let total_errors = stampede_errors + warm_errors + probe_errors;
    let mut failures: Vec<String> = Vec::new();
    if stampede_spawned == 0 || stampede_spawned > max_build_spawns {
        failures.push(format!(
            "stampede spawned the compiler {stampede_spawned} time(s); expected \
             1..={max_build_spawns} (one deduplicated build)"
        ));
    }
    if stampede_publish != 1 {
        failures.push(format!(
            "stampede published {stampede_publish} artifacts; expected exactly 1"
        ));
    }
    if warm_spawned != 0 {
        failures.push(format!(
            "warm phase spawned the compiler {warm_spawned} time(s); expected 0"
        ));
    }
    if hit_rate.is_nan() || hit_rate < min_hit_rate {
        failures.push(format!(
            "cache hit rate {hit_rate:.4} below {min_hit_rate}"
        ));
    }
    if warm_allocs != 0 {
        failures.push(format!(
            "warm probe performed {warm_allocs} arena/staging allocation(s); expected 0"
        ));
    }
    if p99_us > max_p99_us {
        failures.push(format!("warm p99 {p99_us}us above bound {max_p99_us}us"));
    }
    if total_errors != 0 {
        failures.push(format!("{total_errors} request(s) errored"));
    }

    write_json(
        &json_path,
        &SummaryRow {
            workload: workload.schedule_key(),
            scale: scale.key(),
            workers: workers.max(1),
            clients,
            stampede_requests: stampede,
            stampede_wall_ms,
            stampede_cc_spawned: stampede_spawned,
            stampede_cache_publish: stampede_publish,
            inflight_dedup_hits: dedup_hits,
            warm_requests: warm_total,
            warm_wall_s,
            requests_per_sec: rps,
            p50_us,
            p99_us,
            warm_cc_spawned: warm_spawned,
            cache_hit: hit,
            cache_miss: miss,
            cache_hit_rate: hit_rate,
            warm_probe_runs: snap.counter("mem.arena.warm_probe_runs"),
            warm_alloc_calls: snap.counter("mem.arena.warm_alloc_calls"),
            errors: total_errors,
            gate_failures: &failures,
        },
        &snap,
    );
    println!("wrote {json_path}");

    let _ = std::fs::remove_dir_all(&cache_dir);
    for f in &failures {
        println!("{}   serve: {f}", if gate { "BLOCKING" } else { "ADVISORY" });
    }
    if gate && !failures.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct SummaryRow<'a> {
    workload: &'a str,
    scale: &'a str,
    workers: usize,
    clients: usize,
    stampede_requests: usize,
    stampede_wall_ms: f64,
    stampede_cc_spawned: u64,
    stampede_cache_publish: u64,
    inflight_dedup_hits: u64,
    warm_requests: usize,
    warm_wall_s: f64,
    requests_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    warm_cc_spawned: u64,
    cache_hit: u64,
    cache_miss: u64,
    cache_hit_rate: f64,
    warm_probe_runs: u64,
    warm_alloc_calls: u64,
    errors: usize,
    gate_failures: &'a [String],
}

fn write_json(path: &str, r: &SummaryRow<'_>, snap: &MetricsSnapshot) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let failures = r
        .gate_failures
        .iter()
        .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(", ");
    let doc = format!(
        "{{\n  \"schema\": \"serve_load/v1\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n\
         \x20 \"workers\": {},\n  \"clients\": {},\n  \"stampede\": {{\n    \"requests\": {},\n\
         \x20   \"wall_ms\": {:.3},\n    \"cc_spawned\": {},\n    \"cache_publish\": {},\n\
         \x20   \"inflight_dedup_hits\": {}\n  }},\n  \"warm\": {{\n    \"requests\": {},\n\
         \x20   \"wall_s\": {:.4},\n    \"requests_per_sec\": {:.1},\n    \"p50_us\": {},\n\
         \x20   \"p99_us\": {},\n    \"cc_spawned\": {}\n  }},\n  \"cache\": {{\n\
         \x20   \"hit\": {},\n    \"miss\": {},\n    \"hit_rate\": {:.6}\n  }},\n\
         \x20 \"arena\": {{\n    \"warm_probe_runs\": {},\n    \"warm_alloc_calls\": {}\n  }},\n\
         \x20 \"errors\": {},\n  \"gate_failures\": [{}],\n  \"metrics\": {}\n}}\n",
        r.workload,
        r.scale,
        r.workers,
        r.clients,
        r.stampede_requests,
        r.stampede_wall_ms,
        r.stampede_cc_spawned,
        r.stampede_cache_publish,
        r.inflight_dedup_hits,
        r.warm_requests,
        r.warm_wall_s,
        r.requests_per_sec,
        r.p50_us,
        r.p99_us,
        r.warm_cc_spawned,
        r.cache_hit,
        r.cache_miss,
        r.cache_hit_rate,
        r.warm_probe_runs,
        r.warm_alloc_calls,
        r.errors,
        failures,
        snap.to_json(),
    );
    std::fs::write(path, doc).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    });
}
