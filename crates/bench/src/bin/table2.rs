//! Regenerates paper Table 2 — compiling time: FreeTensor's one-shot
//! rule-based auto-transforming pass vs a search-based auto-tuner (the
//! TVM/Ansor stand-in: random schedule search with per-round measurement).

use bench::{prepare, Scale, Workload};
use ft_autoschedule::Target;
use ft_ir::{Device, StmtKind};
use ft_runtime::Runtime;
use ft_workloads::input_pairs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One random schedule candidate: a few random transformations applied to
/// random loops (illegal ones are simply rejected by the legality checks —
/// the search pays for trying them, as a real tuner does).
fn random_candidate(
    base: &freetensor_core::Program,
    rng: &mut StdRng,
    device: Device,
) -> freetensor_core::Program {
    let mut sched = base.schedule();
    let n_moves = rng.gen_range(1..5);
    for _ in 0..n_moves {
        let loops: Vec<ft_ir::StmtId> =
            ft_ir::find::find_stmts(&sched.func().body, &|s| {
                matches!(s.kind, StmtKind::For { .. })
            })
            .iter()
            .map(|s| s.id)
            .collect();
        if loops.is_empty() {
            break;
        }
        let target = loops[rng.gen_range(0..loops.len())];
        match rng.gen_range(0..5) {
            0 => {
                let factor = [2, 4, 8, 16, 32][rng.gen_range(0..5usize)];
                let _ = sched.split(target, factor);
            }
            1 => {
                let scope = match device {
                    Device::Cpu => ft_ir::ParallelScope::OpenMp,
                    Device::Gpu => ft_ir::ParallelScope::CudaBlockX,
                };
                let _ = sched.parallelize(target, scope);
            }
            2 => {
                let _ = sched.vectorize(target);
            }
            3 => {
                let _ = sched.unroll(target);
            }
            _ => {
                if loops.len() >= 2 {
                    let other = loops[rng.gen_range(0..loops.len())];
                    let _ = sched.fuse(target, other);
                }
            }
        }
    }
    freetensor_core::Program::from_schedule(sched)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if small { 8 } else { 32 });
    let scale = if small { Scale::Small } else { Scale::Full };
    println!("# Table 2 — compiling time: rule-based vs search-based tuning");
    println!(
        "{:<12} {:<5} {:>16} {:>28} {:>10}",
        "workload", "dev", "FreeTensor", "tuner (rounds x each)", "ratio"
    );
    let mut rng = StdRng::seed_from_u64(42);
    for w in Workload::ALL {
        for dev in [Device::Cpu, Device::Gpu] {
            let prep = prepare(w, scale);
            // FreeTensor: the whole one-shot pipeline (parse + inline +
            // partial-evaluate + rule-based auto-transform).
            let src_prog = prep.naive.clone();
            let t0 = Instant::now();
            let tuned = src_prog.optimize(&match dev {
                Device::Cpu => Target::cpu(),
                Device::Gpu => Target::gpu(),
            });
            let ft_time = t0.elapsed().as_secs_f64();
            let _ = &tuned;
            // Search-based tuner: `rounds` random candidates, each measured.
            let rt = Runtime::new();
            let pairs = input_pairs(&prep.inputs);
            let t1 = Instant::now();
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let cand = random_candidate(&prep.naive, &mut rng, dev);
                if let Ok(r) = cand.run(&rt, &pairs, &[]) {
                    best = best.min(r.counters.modeled_cycles);
                }
            }
            let tuner_time = t1.elapsed().as_secs_f64();
            println!(
                "{:<12} {:<5} {:>13.1}ms {:>17} ({}x{:.2}s) {:>9.2}%",
                w.name(),
                dev.to_string(),
                ft_time * 1e3,
                format!("{tuner_time:.2}s"),
                rounds,
                tuner_time / rounds as f64,
                100.0 * ft_time / tuner_time
            );
            let _ = best;
        }
    }
    println!("\npaper reference: FreeTensor compiles in 0.13%–22.92% of TVM's tuning time");
}
