//! # bench — harnesses regenerating every figure and table of the paper
//!
//! Binaries (each prints the rows/series of one exhibit; see EXPERIMENTS.md
//! for recorded paper-vs-measured comparisons):
//!
//! | binary | paper exhibit |
//! |---|---|
//! | `fig16` | Fig. 16(a) end-to-end w/o differentiation; `--grad` for 16(b) |
//! | `fig17` | Fig. 17 speedup analysis (kernels / DRAM / L2 / FLOPs) |
//! | `fig18` | Fig. 18 selective-materialization ablation (FT(-) vs FT(+)) |
//! | `table2` | Table 2 compile time: rule-based vs search-based tuning |
//!
//! Criterion benches (`cargo bench`) wrap the same runners at reduced sizes.
//!
//! Measurement note (documented substitution): FreeTensor programs report
//! three time axes. The hardware-independent counters and the modeled cycle
//! time come from the *instrumented interpreter* — the semantic reference,
//! which both systems charge identically — the headline wall-clock
//! (`CaseResult::wall_ms`) is measured on the *fast-mode bytecode VM*
//! (`ft_runtime::VmRuntime`), and on CPU cases a third axis
//! (`CaseResult::compiled_wall_ms`) is measured on the *native compiled
//! engine* (`ft_runtime::CompiledEngine`: C → `cc` → shared object called
//! in-process, compile time amortized away by the artifact cache). The
//! baseline operators execute native Rust kernels, so cross-system
//! wall-clock is still only indicative; the interp-vs-VM wall ratio
//! ([`CaseResult::vm_speedup`]) and the VM-vs-native ratio
//! ([`CaseResult::compiled_speedup`]) are the within-system engine
//! comparisons.

use ft_autodiff::{GradOptions, TapePolicy};
use ft_autoschedule::search::{prepare_candidate, SavedSchedule, SearchConfig, SearchOutcome};
use ft_autoschedule::Target;
use ft_ir::{Device, Func};
use ft_metrics::Metrics;
use ft_opbase::Session;
use ft_runtime::{
    cc_available, CompiledEngine, DeviceConfig, ExecutionEngine, PerfCounters, RunContext,
    Runtime, TensorVal, VmRuntime,
};
use ft_schedule::trace::ScheduleOp;
use ft_trace::JsonVal;
use ft_workloads::{gat, input_pairs, longformer, softras, subdivnet, Inputs};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// Which system executes a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Operator-based baseline (PyTorch/JAX/DGL stand-in).
    OpBase,
    /// FreeTensor program, unscheduled (the fine-grained "Julia-style" run).
    FtNaive,
    /// FreeTensor program after rule-based auto-scheduling.
    FtOptimized,
    /// FreeTensor program replaying a search-found schedule trace
    /// (`ft-autoschedule --search`), loaded from `results/schedules/`.
    FtSearched,
}

impl System {
    /// Display label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            System::OpBase => "operator-based",
            System::FtNaive => "fine-grained (naive)",
            System::FtOptimized => "FreeTensor",
            System::FtSearched => "FreeTensor (searched)",
        }
    }

    /// Stable machine-readable key used in `BENCH.json`.
    pub fn key(self) -> &'static str {
        match self {
            System::OpBase => "opbase",
            System::FtNaive => "ft-naive",
            System::FtOptimized => "ft-optimized",
            System::FtSearched => "ft-searched",
        }
    }
}

/// The four workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// SubdivNet mesh convolution.
    SubdivNet,
    /// Longformer sliding-window attention.
    Longformer,
    /// SoftRas differentiable rasterizer.
    SoftRas,
    /// Graph attention network layer.
    Gat,
}

impl Workload {
    /// All workloads, in the paper's order.
    pub const ALL: [Workload; 4] = [
        Workload::SubdivNet,
        Workload::Longformer,
        Workload::SoftRas,
        Workload::Gat,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::SubdivNet => "SubdivNet",
            Workload::Longformer => "Longformer",
            Workload::SoftRas => "SoftRas",
            Workload::Gat => "GAT",
        }
    }

    /// Lowercase key used in `results/schedules/` file names and the
    /// `ft-autoschedule` CLI.
    pub fn schedule_key(self) -> &'static str {
        match self {
            Workload::SubdivNet => "subdivnet",
            Workload::Longformer => "longformer",
            Workload::SoftRas => "softras",
            Workload::Gat => "gat",
        }
    }

    /// Parse a [`Workload::schedule_key`] back into a workload.
    pub fn from_key(key: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.schedule_key() == key)
    }
}

/// Benchmark problem scale.
#[derive(Debug, Clone, Copy)]
pub enum Scale {
    /// Paper-like shapes (scaled to the simulator).
    Full,
    /// Reduced shapes for Criterion wall-clock sampling.
    Small,
}

impl Scale {
    /// Stable machine-readable key used in `BENCH.json`.
    pub fn key(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Small => "small",
        }
    }
}

/// Outcome of one measured case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Wall-clock milliseconds of the execution engine: the fast-mode
    /// bytecode VM for FreeTensor systems, native kernels for the operator
    /// baseline (see the crate-level measurement note). On failure this is
    /// the elapsed time of the failing stage.
    pub wall_ms: f64,
    /// Wall-clock milliseconds of the instrumented-interpreter run that
    /// produced `counters` (`None` for the operator baseline, which has no
    /// interpreter axis).
    pub interp_wall_ms: Option<f64>,
    /// Wall-clock milliseconds of the native compiled engine
    /// ([`ft_runtime::CompiledEngine`]): C → `cc` → shared object called
    /// in-process. Compilation is excluded (compile-once/run-many — the
    /// warm-up run pays it through the artifact cache). `None` on GPU
    /// cases, the operator baseline, failures, or hosts without a C
    /// compiler.
    pub compiled_wall_ms: Option<f64>,
    /// Wall-clock milliseconds the *search* that produced this schedule
    /// spent, carried over from the replayed [`SavedSchedule`] — the
    /// tuning cost axis. `None` for every non-searched system.
    pub search_wall_ms: Option<f64>,
    /// Modeled execution time in cycle units.
    pub cycles: f64,
    /// Full counter set.
    pub counters: PerfCounters,
    /// `None` = ran; `Some(reason)` = failed (e.g. "OOM").
    pub failure: Option<String>,
    /// Pipeline stage a failure occurred in (`"grad"`, `"run"`, `"vm"`),
    /// `None` when the case ran.
    pub failed_stage: Option<&'static str>,
    /// Peak temporary (`VarDef`) bytes live at once under naive
    /// stack-discipline allocation — what every engine allocated before the
    /// static memory planner (`None` for the operator baseline, which has
    /// no IR to plan).
    pub peak_naive_bytes: Option<u64>,
    /// Peak arena bytes under the liveness-packed memory plan
    /// (`ft_analysis::MemPlan`). Deterministic for a given schedule, and
    /// never legitimately above `peak_naive_bytes` — `bench_check` blocks
    /// on both that and regressions against the committed baseline.
    pub peak_planned_bytes: Option<u64>,
    /// Arena/staging allocation calls observed during two *warm* compiled
    /// runs through a reused `RunContext` (after one cold run). The memory
    /// planner's steady-state claim is that this is 0 — `bench_check
    /// --expect-warm` gates on the aggregated `mem.arena.warm_alloc_calls`
    /// counter. `None` off-CPU, without a C compiler, or on failures.
    pub warm_alloc_calls: Option<u64>,
    /// Total temporary bytes the pre-planner regime heap-allocated per run:
    /// every `VarDef` incarnation counted once per enclosing-loop iteration
    /// (the fresh-zeroed-buffer-per-entry behaviour the arena replaced).
    /// `bench_check` requires the planned peak to beat this strictly
    /// whenever loop reallocation made it exceed the stack peak.
    pub naive_alloc_bytes: Option<u64>,
}

impl CaseResult {
    /// Interpreter-vs-VM wall-clock ratio (>1 means the VM is faster),
    /// when both engines ran to completion.
    pub fn vm_speedup(&self) -> Option<f64> {
        match self.interp_wall_ms {
            Some(iw) if self.failure.is_none() && self.wall_ms > 0.0 => Some(iw / self.wall_ms),
            _ => None,
        }
    }

    /// VM-vs-compiled wall-clock ratio (>1 means native code is faster
    /// than the fast-mode VM), when both engines ran to completion.
    pub fn compiled_speedup(&self) -> Option<f64> {
        match self.compiled_wall_ms {
            Some(cw) if self.failure.is_none() && cw > 0.0 => Some(self.wall_ms / cw),
            _ => None,
        }
    }
}

/// The process-wide metrics registry shared by every engine a bench sweep
/// touches (interpreter, VM, compiled). One registry per process means a
/// `fig16 --metrics` run exports the whole sweep's telemetry — engine run
/// histograms, compile counts, cache hit/miss, pool stats — as one
/// `results/METRICS.json` document.
pub fn bench_metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::new)
}

/// The process-wide compiled engine used for the third time axis: one
/// instance keeps the in-memory kernel memo warm across every case in a
/// sweep, on top of the on-disk artifact cache.
fn bench_compiled_engine() -> &'static CompiledEngine {
    static ENGINE: OnceLock<CompiledEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut e = CompiledEngine::new();
        e.set_metrics(Some(bench_metrics().clone()));
        e
    })
}

/// Workload inputs + compiled programs for one (workload, scale) pair.
pub struct Prepared {
    /// The workload.
    pub workload: Workload,
    /// The scale these inputs were built at (selects the saved-schedule
    /// shape class for [`System::FtSearched`]).
    pub scale: Scale,
    /// Inputs by name.
    pub inputs: Inputs,
    /// Unscheduled FreeTensor program.
    pub naive: freetensor_core::Program,
    /// Name of the output tensor.
    pub output: &'static str,
    sub_p: Option<subdivnet::Params>,
    lf_p: Option<longformer::Params>,
    sr_p: Option<softras::Params>,
    gat_p: Option<gat::Params>,
}

/// Build inputs and the base program for a workload at a scale.
pub fn prepare(workload: Workload, scale: Scale) -> Prepared {
    let seed = 2022;
    match workload {
        Workload::SubdivNet => {
            let p = match scale {
                Scale::Full => subdivnet::Params {
                    n_faces: 1024,
                    in_feats: 32,
                },
                Scale::Small => subdivnet::Params {
                    n_faces: 128,
                    in_feats: 8,
                },
            };
            Prepared {
                workload,
                scale,
                inputs: subdivnet::inputs(&p, seed),
                naive: subdivnet::program(&p),
                output: "y",
                sub_p: Some(p),
                lf_p: None,
                sr_p: None,
                gat_p: None,
            }
        }
        Workload::Longformer => {
            let p = match scale {
                Scale::Full => longformer::Params {
                    seq_len: 512,
                    w: 32,
                    feat_len: 64,
                },
                Scale::Small => longformer::Params {
                    seq_len: 96,
                    w: 8,
                    feat_len: 16,
                },
            };
            Prepared {
                workload,
                scale,
                inputs: longformer::inputs(&p, seed),
                naive: longformer::program(&p),
                output: "y",
                sub_p: None,
                lf_p: Some(p),
                sr_p: None,
                gat_p: None,
            }
        }
        Workload::SoftRas => {
            let p = match scale {
                Scale::Full => softras::Params::default(),
                Scale::Small => softras::Params {
                    h: 12,
                    w: 12,
                    n_faces: 12,
                    channels: 3,
                    ..softras::Params::default()
                },
            };
            Prepared {
                workload,
                scale,
                inputs: softras::inputs(&p, seed),
                naive: softras::program(&p),
                output: "img",
                sub_p: None,
                lf_p: None,
                sr_p: Some(p),
                gat_p: None,
            }
        }
        Workload::Gat => {
            let p = match scale {
                Scale::Full => gat::Params::default(),
                Scale::Small => gat::Params {
                    n_nodes: 64,
                    degree: 4,
                    feat_len: 8,
                },
            };
            Prepared {
                workload,
                scale,
                inputs: gat::inputs(&p, seed),
                naive: gat::program(&p),
                output: "y",
                sub_p: None,
                lf_p: None,
                sr_p: None,
                gat_p: Some(p),
            }
        }
    }
}

fn target_for(device: Device) -> Target {
    match device {
        Device::Cpu => Target::cpu(),
        Device::Gpu => Target::gpu(),
    }
}

/// Run the forward pass of one (workload, system, device) case.
pub fn run_forward(prep: &Prepared, system: System, device: Device) -> CaseResult {
    run_forward_capped(prep, system, device, None)
}

/// Like [`run_forward`], with an optional GPU memory capacity override
/// (reproduces the OOM columns of the paper's Fig. 16(b)).
pub fn run_forward_capped(
    prep: &Prepared,
    system: System,
    device: Device,
    gpu_capacity: Option<usize>,
) -> CaseResult {
    run_forward_inner(prep, system, device, gpu_capacity, None)
}

/// Like [`run_forward`], but with provenance + profiling recorded into
/// `sink`: for FreeTensor systems the sink is installed on the program, so
/// auto-schedule decisions, pass spans, and the per-statement run profile
/// all land in one trace; for the operator baseline a single runtime span
/// wraps the session (op-base has no per-statement attribution).
pub fn run_forward_traced(
    prep: &Prepared,
    system: System,
    device: Device,
    sink: &ft_trace::TraceSink,
) -> CaseResult {
    run_forward_inner(prep, system, device, None, Some(sink))
}

fn run_forward_inner(
    prep: &Prepared,
    system: System,
    device: Device,
    gpu_capacity: Option<usize>,
    sink: Option<&ft_trace::TraceSink>,
) -> CaseResult {
    let mut config = DeviceConfig::default();
    if let Some(cap) = gpu_capacity {
        config.gpu_mem_capacity = cap;
    }
    match system {
        System::OpBase => {
            let span = sink.map(|s| {
                let mut sp = s.span_on(ft_trace::TRACK_RUNTIME, "runtime", "opbase forward");
                sp.arg("workload", prep.workload.name());
                sp.arg("device", device);
                sp
            });
            let r = run_opbase_forward(prep, device, config);
            if let Some(mut sp) = span {
                sp.arg("modeled_cycles", format!("{:.0}", r.cycles));
                sp.arg("flops", r.counters.flops);
            }
            r
        }
        System::FtNaive | System::FtOptimized => {
            let base = match sink {
                Some(s) => prep.naive.clone().with_sink(s.clone()),
                None => prep.naive.clone(),
            };
            let prog = if system == System::FtOptimized {
                base.optimize(&target_for(device))
            } else {
                // A naive program still has to live in GPU memory; keep it
                // as-is (CPU-memory naive run stands in for Julia).
                base
            };
            run_ft_both_engines(&prog, &input_pairs(&prep.inputs), config, device)
        }
        System::FtSearched => run_searched_forward(prep, device, config, sink),
    }
}

/// A structured non-run: the case could not start (no saved schedule, wrong
/// device), reported the same way grad exclusions are.
fn schedule_skip(reason: String) -> CaseResult {
    CaseResult {
        wall_ms: 0.0,
        interp_wall_ms: None,
        compiled_wall_ms: None,
        search_wall_ms: None,
        cycles: f64::NAN,
        counters: PerfCounters::default(),
        failure: Some(reason),
        failed_stage: Some("schedule"),
        peak_naive_bytes: None,
        peak_planned_bytes: None,
        warm_alloc_calls: None,
        naive_alloc_bytes: None,
    }
}

/// Replay the saved best-of-search schedule for `(prep.workload,
/// prep.scale)` on `device`, through the same engines every other
/// FreeTensor system is measured on. Missing schedule files and non-CPU
/// devices report a structured `schedule`-stage failure rather than
/// panicking, so sweeps stay total.
fn run_searched_forward(
    prep: &Prepared,
    device: Device,
    config: DeviceConfig,
    sink: Option<&ft_trace::TraceSink>,
) -> CaseResult {
    if device != Device::Cpu {
        return schedule_skip("skipped: searched schedules are CPU-only".to_string());
    }
    let saved = match load_saved_schedule(prep.workload, prep.scale) {
        Some(s) => s,
        None => {
            return schedule_skip(format!(
                "no saved schedule ({})",
                saved_schedule_path(prep.workload, prep.scale).display()
            ))
        }
    };
    let mut prog = replay_program(&prep.naive, device, &saved.trace);
    if let Some(s) = sink {
        prog.set_sink(Some(s.clone()));
    }
    let mut r = run_ft_both_engines(&prog, &input_pairs(&prep.inputs), config, device);
    r.search_wall_ms = Some(saved.search_wall_ms);
    r
}

/// Directory the searched schedules live in: `results/schedules/` relative
/// to the working directory, overridable with `FT_SCHEDULES_DIR` (the
/// workspace tests point it at a temp dir).
pub fn schedules_dir() -> PathBuf {
    std::env::var_os("FT_SCHEDULES_DIR")
        .map_or_else(|| PathBuf::from("results/schedules"), PathBuf::from)
}

/// Path of the saved schedule for a (workload, scale) pair on CPU.
pub fn saved_schedule_path(workload: Workload, scale: Scale) -> PathBuf {
    schedules_dir().join(SavedSchedule::file_name(
        workload.schedule_key(),
        "cpu",
        scale.key(),
    ))
}

/// Load the committed best-of-search schedule for a (workload, scale)
/// pair, if one exists. Malformed files are reported to stderr and treated
/// as absent (the bench degrades to a structured skip, not a crash).
pub fn load_saved_schedule(workload: Workload, scale: Scale) -> Option<SavedSchedule> {
    let path = saved_schedule_path(workload, scale);
    let text = std::fs::read_to_string(&path).ok()?;
    match SavedSchedule::from_json(&text) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("ignoring malformed schedule {}: {e}", path.display());
            None
        }
    }
}

/// Build the runnable program for a schedule trace, exactly the way the
/// search scored it (`prepare_candidate`: param placement → trace →
/// simplify) — no further transformation, so the replayed counters equal
/// the recorded ones.
pub fn replay_program(
    base: &freetensor_core::Program,
    device: Device,
    trace: &[ScheduleOp],
) -> freetensor_core::Program {
    let (func, _) = prepare_candidate(base.func(), device, trace);
    freetensor_core::Program::from_schedule(ft_schedule::Schedule::new(func))
}

/// Run the evolutionary schedule search for a prepared workload on CPU:
/// the evaluator executes candidates on the instrumented interpreter over
/// the workload's real inputs, and the result is packaged as the
/// [`SavedSchedule`] the bench replay path consumes. Returns the saved
/// schedule and the raw [`SearchOutcome`] (history, payoff, stats).
pub fn search_schedule(
    prep: &Prepared,
    config: &SearchConfig,
    sink: Option<&ft_trace::TraceSink>,
    metrics: Option<&Metrics>,
) -> (SavedSchedule, SearchOutcome) {
    let inputs: HashMap<String, TensorVal> = input_pairs(&prep.inputs)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let sizes: HashMap<String, i64> = HashMap::new();
    let evaluator = move |f: &Func| -> Option<PerfCounters> {
        Runtime::new().run(f, &inputs, &sizes).ok().map(|r| r.counters)
    };
    let start = Instant::now();
    let outcome = ft_autoschedule::search::search(
        prep.naive.func(),
        &Target::cpu(),
        config,
        &evaluator,
        sink,
        metrics,
    );
    let search_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let saved = SavedSchedule {
        workload: prep.workload.schedule_key().to_string(),
        device: "cpu".to_string(),
        scale: prep.scale.key().to_string(),
        seed: config.seed,
        budget: config.budget as u64,
        search_wall_ms,
        searched_cycles: outcome.best_counters.modeled_cycles,
        searched_dram: outcome.best_counters.dram_bytes,
        rule_cycles: outcome.rule_score.cycles(),
        rule_dram: outcome.rule_score.dram_bytes,
        trace: outcome.best_trace.clone(),
        payoff: outcome.payoff.clone(),
    };
    (saved, outcome)
}

/// Run a FreeTensor program on every engine with a time axis: the
/// instrumented interpreter for counters + modeled cycles, the fast-mode
/// bytecode VM for the headline wall-clock, and — on CPU cases with a C
/// compiler on `PATH` — the native compiled engine for the third axis.
fn run_ft_both_engines(
    prog: &freetensor_core::Program,
    pairs: &[(&str, TensorVal)],
    config: DeviceConfig,
    device: Device,
) -> CaseResult {
    // The static memory plan is a pure function of the schedule (bench
    // programs have constant shapes), so the peak-bytes axis is computed
    // once here rather than measured per engine.
    let plan = ft_analysis::MemPlan::plan(prog.func(), &HashMap::new());
    let peak_naive_bytes = Some(plan.naive_peak_bytes);
    let peak_planned_bytes = Some(plan.planned_peak_bytes);
    let naive_alloc_bytes = Some(plan.naive_alloc_bytes);
    let mut rt = Runtime::with_config(config.clone());
    rt.set_metrics(Some(bench_metrics().clone()));
    let start = Instant::now();
    let result = prog.run(&rt, pairs, &[]);
    let interp_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    match result {
        Ok(r) => {
            let mut vm = VmRuntime::with_config(config);
            vm.set_metrics(Some(bench_metrics().clone()));
            // One warm-up run, then best of two timed runs: a single cold
            // run folds one-off noise (page faults, pool spin-up, bytecode
            // compile jitter) into the headline number and can invert
            // close naive/optimized pairs.
            let mut wall_ms = f64::INFINITY;
            let mut vm_result = prog.run_vm(&vm, pairs, &[]);
            for _ in 0..2 {
                let start = Instant::now();
                let again = prog.run_vm(&vm, pairs, &[]);
                wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
                if vm_result.is_ok() {
                    vm_result = again;
                }
            }
            let compiled_wall_ms = time_compiled(prog, pairs, device);
            let warm_alloc_calls = warm_arena_probe(prog, pairs, device);
            match vm_result {
                Ok(_) => CaseResult {
                    wall_ms,
                    interp_wall_ms: Some(interp_wall_ms),
                    compiled_wall_ms,
                    search_wall_ms: None,
                    cycles: r.counters.modeled_cycles,
                    counters: r.counters,
                    failure: None,
                    failed_stage: None,
                    peak_naive_bytes,
                    peak_planned_bytes,
                    warm_alloc_calls,
                    naive_alloc_bytes,
                },
                // The VM mirrors interpreter semantics, so a run that
                // passed on the interpreter failing here is a real engine
                // divergence worth surfacing, not something to paper over.
                Err(e) => CaseResult {
                    wall_ms,
                    interp_wall_ms: Some(interp_wall_ms),
                    compiled_wall_ms,
                    search_wall_ms: None,
                    cycles: r.counters.modeled_cycles,
                    counters: r.counters,
                    failure: Some(short_error(&e.to_string())),
                    failed_stage: Some("vm"),
                    peak_naive_bytes,
                    peak_planned_bytes,
                    warm_alloc_calls,
                    naive_alloc_bytes,
                },
            }
        }
        Err(e) => CaseResult {
            wall_ms: interp_wall_ms,
            interp_wall_ms: Some(interp_wall_ms),
            compiled_wall_ms: None,
            search_wall_ms: None,
            cycles: f64::NAN,
            counters: PerfCounters::default(),
            failure: Some(short_error(&e.to_string())),
            failed_stage: Some("run"),
            peak_naive_bytes,
            peak_planned_bytes,
            warm_alloc_calls: None,
            naive_alloc_bytes,
        },
    }
}

/// Drive the native compiled engine through a reusable [`RunContext`]: one
/// cold `run_with` populates the arena, the staging buffers, and (through
/// the artifact cache) the kernel; then two warm iterations re-run with
/// every output recycled back into the context. Returns the number of
/// arena/staging allocation calls observed during the *warm* iterations —
/// 0 is the memory planner's steady-state claim. The observation is also
/// aggregated into the process registry as `mem.arena.warm_alloc_calls`
/// (+ `mem.arena.warm_probe_runs`), which `bench_check --expect-warm`
/// gates on. `None` off-CPU, without a C compiler, or when any run fails.
fn warm_arena_probe(
    prog: &freetensor_core::Program,
    pairs: &[(&str, TensorVal)],
    device: Device,
) -> Option<u64> {
    if device != Device::Cpu || !cc_available() {
        return None;
    }
    // A clone shares the kernel memo (no recompilation) but carries its own
    // metrics slot, so the probe's counters don't mix with the sweep's.
    let mut engine = bench_compiled_engine().clone();
    let m = Metrics::new();
    engine.set_metrics(Some(m.clone()));
    let inputs: HashMap<String, TensorVal> = pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let sizes = HashMap::new();
    let mut ctx = RunContext::new();
    let cold = engine.run_with(prog.func(), &inputs, &sizes, &mut ctx).ok()?;
    ctx.recycle(cold).expect("recycle cold outputs");
    let before = m.snapshot().counter("mem.arena.alloc_calls");
    for _ in 0..2 {
        let r = engine.run_with(prog.func(), &inputs, &sizes, &mut ctx).ok()?;
        ctx.recycle(r).expect("recycle warm outputs");
    }
    let warm = m.snapshot().counter("mem.arena.alloc_calls") - before;
    bench_metrics().counter("mem.arena.warm_alloc_calls").add(warm);
    bench_metrics().counter("mem.arena.warm_probe_runs").inc();
    Some(warm)
}

/// Time the native compiled engine on a CPU case: one warm-up run (which
/// pays compilation through the artifact cache on a cold start), then best
/// of two timed runs — the same protocol as the VM axis, so the two
/// numbers are comparable. `None` off-CPU, without a C compiler, or when
/// the engine fails (the compiled axis is an extra measurement, not a
/// correctness gate — conformance owns that).
fn time_compiled(
    prog: &freetensor_core::Program,
    pairs: &[(&str, TensorVal)],
    device: Device,
) -> Option<f64> {
    if device != Device::Cpu || !cc_available() {
        return None;
    }
    let engine = bench_compiled_engine();
    prog.run_compiled(engine, pairs, &[]).ok()?;
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        prog.run_compiled(engine, pairs, &[]).ok()?;
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Some(best)
}

fn run_opbase_forward(prep: &Prepared, device: Device, config: DeviceConfig) -> CaseResult {
    let s = Session::new(device, config);
    let start = Instant::now();
    let result: Result<(), String> = (|| {
        match prep.workload {
            Workload::SubdivNet => {
                subdivnet::opbase(&s, &prep.sub_p.expect("params"), &prep.inputs)
                    .map_err(|e| e.to_string())?;
            }
            Workload::Longformer => {
                longformer::opbase(&s, &prep.lf_p.expect("params"), &prep.inputs)
                    .map_err(|e| e.to_string())?;
            }
            Workload::SoftRas => {
                softras::opbase(&s, &prep.sr_p.expect("params"), &prep.inputs)
                    .map_err(|e| e.to_string())?;
            }
            Workload::Gat => {
                gat::opbase(&s, &prep.gat_p.expect("params"), &prep.inputs)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    })();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let counters = s.counters();
    let failure = result.err().map(|e| short_error(&e));
    let failed_stage = failure.is_some().then_some("run");
    CaseResult {
        wall_ms,
        interp_wall_ms: None,
        compiled_wall_ms: None,
        search_wall_ms: None,
        cycles: counters.modeled_cycles,
        counters,
        failure,
        failed_stage,
        peak_naive_bytes: None,
        peak_planned_bytes: None,
        warm_alloc_calls: None,
        naive_alloc_bytes: None,
    }
}

/// Run forward+backward of one case (GAT excluded, as in the paper).
pub fn run_grad(
    prep: &Prepared,
    system: System,
    device: Device,
    policy: TapePolicy,
) -> CaseResult {
    run_grad_capped(prep, system, device, policy, None)
}

/// Like [`run_grad`], with an optional GPU memory capacity override.
pub fn run_grad_capped(
    prep: &Prepared,
    system: System,
    device: Device,
    policy: TapePolicy,
    gpu_capacity: Option<usize>,
) -> CaseResult {
    let mut config = DeviceConfig::default();
    if let Some(cap) = gpu_capacity {
        config.gpu_mem_capacity = cap;
    }
    // GAT gradients are excluded from the paper's study (§6.2): the
    // operator baseline has no backward for the CSR gather. Report a
    // structured skip instead of panicking so sweeps over `Workload::ALL`
    // stay total.
    if prep.workload == Workload::Gat {
        return CaseResult {
            wall_ms: 0.0,
            interp_wall_ms: None,
            compiled_wall_ms: None,
            search_wall_ms: None,
            cycles: f64::NAN,
            counters: PerfCounters::default(),
            failure: Some("skipped: GAT gradients are excluded (paper §6.2)".to_string()),
            failed_stage: Some("grad"),
            peak_naive_bytes: None,
            peak_planned_bytes: None,
            warm_alloc_calls: None,
            naive_alloc_bytes: None,
        };
    }
    let seed_shape: Vec<usize> = {
        let out = match prep.workload {
            Workload::SubdivNet => {
                let p = prep.sub_p.expect("params");
                vec![p.n_faces, p.in_feats]
            }
            Workload::Longformer => {
                let p = prep.lf_p.expect("params");
                vec![p.seq_len, p.feat_len]
            }
            Workload::SoftRas => {
                let p = prep.sr_p.expect("params");
                vec![p.pixels(), p.channels]
            }
            Workload::Gat => unreachable!("handled by the structured skip above"),
        };
        out
    };
    let seed = TensorVal::from_f32(
        &seed_shape,
        vec![1.0; seed_shape.iter().product::<usize>()],
    );
    // Searched schedules are tuned (and legality-checked) against the
    // forward program; replaying a forward trace on the differentiated IR
    // would be positional nonsense. Report a structured skip.
    if system == System::FtSearched {
        return schedule_skip("skipped: searched schedules cover forward only".to_string());
    }
    match system {
        System::OpBase => {
            let s = Session::new(device, config);
            s.set_grad_mode(true);
            let start = Instant::now();
            let result: Result<(), String> = (|| {
                match prep.workload {
                    Workload::SubdivNet => {
                        let y = subdivnet::opbase(&s, &prep.sub_p.expect("params"), &prep.inputs)
                            .map_err(|e| e.to_string())?;
                        s.backward(&y, seed.clone()).map_err(|e| e.to_string())?;
                    }
                    Workload::Longformer => {
                        let h =
                            longformer::opbase(&s, &prep.lf_p.expect("params"), &prep.inputs)
                                .map_err(|e| e.to_string())?;
                        s.backward(&h.y, seed.clone()).map_err(|e| e.to_string())?;
                    }
                    Workload::SoftRas => {
                        let h = softras::opbase(&s, &prep.sr_p.expect("params"), &prep.inputs)
                            .map_err(|e| e.to_string())?;
                        s.backward(&h.img, seed.clone()).map_err(|e| e.to_string())?;
                    }
                    Workload::Gat => unreachable!("handled by the structured skip above"),
                }
                Ok(())
            })();
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let counters = s.counters();
            let failure = result.err().map(|e| short_error(&e));
            let failed_stage = failure.is_some().then_some("run");
            CaseResult {
                wall_ms,
                interp_wall_ms: None,
                compiled_wall_ms: None,
                search_wall_ms: None,
                cycles: counters.modeled_cycles,
                counters,
                failure,
                failed_stage,
                peak_naive_bytes: None,
                peak_planned_bytes: None,
                warm_alloc_calls: None,
                naive_alloc_bytes: None,
            }
        }
        System::FtNaive | System::FtOptimized => {
            let opts = GradOptions {
                policy,
                ..Default::default()
            };
            let grad_start = Instant::now();
            let grad = match prep.naive.grad(&opts) {
                Ok(g) => g,
                Err(e) => {
                    // Differentiation itself failed: report how long the
                    // attempt took and attribute the failure to the compile
                    // stage rather than pretending the case ran in 0 ms.
                    return CaseResult {
                        wall_ms: grad_start.elapsed().as_secs_f64() * 1e3,
                        interp_wall_ms: None,
                        compiled_wall_ms: None,
                        search_wall_ms: None,
                        cycles: f64::NAN,
                        counters: PerfCounters::default(),
                        failure: Some(short_error(&e.to_string())),
                        failed_stage: Some("grad"),
                        peak_naive_bytes: None,
                        peak_planned_bytes: None,
                        warm_alloc_calls: None,
                        naive_alloc_bytes: None,
                    };
                }
            };
            let prog = if system == System::FtOptimized {
                grad.optimize(&target_for(device))
            } else {
                grad
            };
            let grad_seed_name = format!("{}.grad", prep.output);
            let mut pairs = input_pairs(&prep.inputs);
            pairs.push((&grad_seed_name, seed.clone()));
            run_ft_both_engines(&prog, &pairs, config, device)
        }
        System::FtSearched => unreachable!("handled by the structured skip above"),
    }
}

fn short_error(e: &str) -> String {
    if e.contains("out of memory") {
        "OOM".to_string()
    } else {
        e.chars().take(40).collect()
    }
}

/// Format a cycle count compactly.
pub fn fmt_cycles(c: f64) -> String {
    if c.is_nan() {
        return "-".to_string();
    }
    if c >= 1e9 {
        format!("{:.2}G", c / 1e9)
    } else if c >= 1e6 {
        format!("{:.2}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.1}k", c / 1e3)
    } else {
        format!("{c:.0}")
    }
}

/// Format a byte count compactly.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// One machine-readable benchmark record — a row of `results/BENCH.json`.
pub fn json_record(
    workload: Workload,
    system: System,
    device: Device,
    kind: &str,
    scale: Scale,
    r: &CaseResult,
) -> JsonVal {
    let num = |v: f64| {
        if v.is_nan() {
            JsonVal::Null
        } else {
            JsonVal::Num(v)
        }
    };
    JsonVal::Obj(vec![
        ("workload".to_string(), JsonVal::Str(workload.name().to_string())),
        ("system".to_string(), JsonVal::Str(system.key().to_string())),
        ("device".to_string(), JsonVal::Str(device.to_string())),
        ("kind".to_string(), JsonVal::Str(kind.to_string())),
        ("scale".to_string(), JsonVal::Str(scale.key().to_string())),
        ("wall_ms".to_string(), num(r.wall_ms)),
        (
            "interp_wall_ms".to_string(),
            r.interp_wall_ms.map_or(JsonVal::Null, JsonVal::Num),
        ),
        (
            "vm_wall_speedup".to_string(),
            r.vm_speedup().map_or(JsonVal::Null, JsonVal::Num),
        ),
        (
            "compiled_wall_ms".to_string(),
            r.compiled_wall_ms.map_or(JsonVal::Null, JsonVal::Num),
        ),
        (
            "compiled_wall_speedup".to_string(),
            r.compiled_speedup().map_or(JsonVal::Null, JsonVal::Num),
        ),
        (
            "search_wall_ms".to_string(),
            r.search_wall_ms.map_or(JsonVal::Null, JsonVal::Num),
        ),
        ("cycles".to_string(), num(r.cycles)),
        (
            "peak_live_bytes_naive".to_string(),
            r.peak_naive_bytes
                .map_or(JsonVal::Null, |b| JsonVal::Num(b as f64)),
        ),
        (
            "peak_live_bytes_planned".to_string(),
            r.peak_planned_bytes
                .map_or(JsonVal::Null, |b| JsonVal::Num(b as f64)),
        ),
        (
            "warm_alloc_calls".to_string(),
            r.warm_alloc_calls
                .map_or(JsonVal::Null, |c| JsonVal::Num(c as f64)),
        ),
        (
            "naive_alloc_bytes".to_string(),
            r.naive_alloc_bytes
                .map_or(JsonVal::Null, |b| JsonVal::Num(b as f64)),
        ),
        ("flops".to_string(), JsonVal::Num(r.counters.flops as f64)),
        (
            "dram_bytes".to_string(),
            JsonVal::Num(r.counters.dram_bytes as f64),
        ),
        (
            "failure".to_string(),
            r.failure.clone().map_or(JsonVal::Null, JsonVal::Str),
        ),
        (
            "failed_stage".to_string(),
            r.failed_stage
                .map_or(JsonVal::Null, |s| JsonVal::Str(s.to_string())),
        ),
    ])
}

/// Write `records` into the BENCH.json at `path`, merging with an existing
/// file: records whose `kind` differs from `kind` are kept, so a Fig. 16(a)
/// run followed by a `--grad` run accumulates both sets in one file.
///
/// # Errors
///
/// Propagates filesystem errors; a pre-existing file that does not parse is
/// replaced rather than merged.
pub fn write_bench_json(
    path: &std::path::Path,
    kind: &str,
    records: Vec<JsonVal>,
) -> std::io::Result<()> {
    let mut kept: Vec<JsonVal> = Vec::new();
    if let Ok(prev) = std::fs::read_to_string(path) {
        if let Ok(doc) = JsonVal::parse(&prev) {
            if let Some(old) = doc.get("records").and_then(JsonVal::as_arr) {
                kept.extend(
                    old.iter()
                        .filter(|r| r.get("kind").and_then(JsonVal::as_str) != Some(kind))
                        .cloned(),
                );
            }
        }
    }
    kept.extend(records);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let doc = JsonVal::Obj(vec![
        ("version".to_string(), JsonVal::Num(1.0)),
        ("records".to_string(), JsonVal::Arr(kept)),
    ]);
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gat_grad_is_a_structured_skip_not_a_panic() {
        // Paper §6.2 excludes GAT from the gradient study; the bench must
        // report that as a skipped record, not crash the whole sweep.
        let prep = prepare(Workload::Gat, Scale::Small);
        for system in [System::OpBase, System::FtNaive, System::FtOptimized] {
            let r = run_grad(&prep, system, Device::Cpu, TapePolicy::Selective);
            assert_eq!(r.failed_stage, Some("grad"), "{system:?}");
            let why = r.failure.as_deref().unwrap_or_default();
            assert!(why.contains("skipped"), "{system:?}: {why}");
            assert!(r.cycles.is_nan(), "no cycle count for a skipped case");
        }
    }

    #[test]
    fn baseline_ooms_on_capped_gpu_but_freetensor_fits() {
        // Fig. 16(b)'s OOM column: on a memory-capped GPU the baseline's
        // retained, window-materialized intermediates exhaust memory while
        // FreeTensor's selective tapes fit.
        let prep = prepare(Workload::Longformer, Scale::Small);
        let cap = Some(128 << 10); // 128 KiB: between the two systems' peaks
        let ob = run_grad_capped(
            &prep,
            System::OpBase,
            Device::Gpu,
            ft_autodiff::TapePolicy::Selective,
            cap,
        );
        assert_eq!(ob.failure.as_deref(), Some("OOM"), "{:?}", ob.failure);
        let ft = run_grad_capped(
            &prep,
            System::FtOptimized,
            Device::Gpu,
            ft_autodiff::TapePolicy::Selective,
            cap,
        );
        assert!(ft.failure.is_none(), "{:?}", ft.failure);
    }

    #[test]
    fn forward_cases_run_at_small_scale() {
        for w in Workload::ALL {
            let prep = prepare(w, Scale::Small);
            for sys in [System::OpBase, System::FtNaive, System::FtOptimized] {
                for dev in [Device::Cpu, Device::Gpu] {
                    let r = run_forward(&prep, sys, dev);
                    assert!(
                        r.failure.is_none(),
                        "{} / {:?} / {dev} failed: {:?}",
                        w.name(),
                        sys,
                        r.failure
                    );
                    assert!(r.cycles > 0.0);
                }
            }
        }
    }

    #[test]
    fn grad_cases_run_at_small_scale() {
        for w in [Workload::SubdivNet, Workload::Longformer, Workload::SoftRas] {
            let prep = prepare(w, Scale::Small);
            for sys in [System::OpBase, System::FtOptimized] {
                let r = run_grad(&prep, sys, Device::Cpu, TapePolicy::Selective);
                assert!(
                    r.failure.is_none(),
                    "{} / {:?} grad failed: {:?}",
                    w.name(),
                    sys,
                    r.failure
                );
            }
        }
    }

    #[test]
    fn ft_cases_report_both_time_axes() {
        // The VM wall-clock is the headline; the instrumented interpreter's
        // wall-clock rides along so the engine speedup is computable. The
        // operator baseline has no interpreter axis.
        let prep = prepare(Workload::Gat, Scale::Small);
        let ft = run_forward(&prep, System::FtOptimized, Device::Cpu);
        assert!(ft.failure.is_none(), "{:?}", ft.failure);
        assert!(ft.interp_wall_ms.is_some());
        assert!(ft.vm_speedup().is_some());
        let ob = run_forward(&prep, System::OpBase, Device::Cpu);
        assert!(ob.interp_wall_ms.is_none());
        assert!(ob.vm_speedup().is_none());
        assert!(ob.compiled_wall_ms.is_none());
    }

    #[test]
    fn cpu_ft_cases_report_the_compiled_axis() {
        // The third time axis: on CPU cases with a C compiler available,
        // FreeTensor rows also carry the native compiled engine's wall
        // time; GPU cases never do (the compiled engine is CPU-only).
        let prep = prepare(Workload::SubdivNet, Scale::Small);
        let cpu = run_forward(&prep, System::FtOptimized, Device::Cpu);
        assert!(cpu.failure.is_none(), "{:?}", cpu.failure);
        if cc_available() {
            assert!(cpu.compiled_wall_ms.is_some(), "no compiled axis on CPU");
            assert!(cpu.compiled_speedup().is_some());
        }
        let gpu = run_forward(&prep, System::FtOptimized, Device::Gpu);
        assert!(gpu.compiled_wall_ms.is_none(), "compiled axis leaked to GPU");
    }

    #[test]
    fn grad_oom_reports_elapsed_time_and_stage() {
        // Regression: a failing grad case used to report wall_ms = 0.0.
        let prep = prepare(Workload::Longformer, Scale::Small);
        let r = run_grad_capped(
            &prep,
            System::FtOptimized,
            Device::Gpu,
            TapePolicy::All,
            Some(16 << 10),
        );
        assert!(r.failure.is_some());
        assert!(r.wall_ms > 0.0, "failure must still report elapsed time");
        assert!(r.failed_stage.is_some());
    }

    #[test]
    fn bench_json_merges_across_kinds() {
        let path = std::env::temp_dir().join(format!(
            "ft-bench-json-test-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let prep = prepare(Workload::Gat, Scale::Small);
        let r = run_forward(&prep, System::FtOptimized, Device::Cpu);
        let rec = |kind: &str| {
            json_record(
                Workload::Gat,
                System::FtOptimized,
                Device::Cpu,
                kind,
                Scale::Small,
                &r,
            )
        };
        write_bench_json(&path, "forward", vec![rec("forward")]).unwrap();
        write_bench_json(&path, "grad", vec![rec("grad")]).unwrap();
        // Re-writing one kind replaces that kind only.
        write_bench_json(&path, "forward", vec![rec("forward")]).unwrap();
        let doc = JsonVal::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let records = doc.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), 2);
        let kinds: Vec<_> = records
            .iter()
            .map(|r| r.get("kind").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(kinds.contains(&"forward".to_string()));
        assert!(kinds.contains(&"grad".to_string()));
        assert!(records[0].get("wall_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(records[0].get("vm_wall_speedup").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_forward_records_provenance_and_matching_profile() {
        // The fig17 `--trace` path: one sink sees schedule decisions, pass
        // spans, and a per-statement profile whose totals equal the
        // whole-run counters; the Chrome export validates.
        let prep = prepare(Workload::SubdivNet, Scale::Small);
        let sink = ft_trace::TraceSink::new();
        let ft = run_forward_traced(&prep, System::FtOptimized, Device::Gpu, &sink);
        assert!(ft.failure.is_none(), "{:?}", ft.failure);
        let ob = run_forward_traced(&prep, System::OpBase, Device::Gpu, &sink);
        assert!(ob.failure.is_none(), "{:?}", ob.failure);
        assert!(!sink.decisions().is_empty(), "no schedule decisions traced");
        let profiles = sink.profiles();
        assert_eq!(profiles.len(), 1, "expected exactly one run profile");
        let totals = profiles[0].totals();
        assert_eq!(totals.flops, ft.counters.flops);
        assert_eq!(totals.dram_bytes, ft.counters.dram_bytes);
        assert_eq!(totals.l2_bytes, ft.counters.l2_bytes);
        let events = sink.events();
        assert!(events.iter().any(|e| e.name == "opbase forward"));
        ft_trace::validate_chrome_trace(&ft_trace::chrome_trace(&sink)).unwrap();
    }

    #[test]
    fn searched_system_without_a_schedule_is_a_structured_skip() {
        // `FT_SCHEDULES_DIR` is unset and the test cwd has no
        // results/schedules for the small GAT shape class, so the searched
        // system must degrade to a schedule-stage skip, not a panic — and
        // never run at all on GPU.
        let prep = prepare(Workload::Gat, Scale::Small);
        let gpu = run_forward(&prep, System::FtSearched, Device::Gpu);
        assert_eq!(gpu.failed_stage, Some("schedule"));
        assert!(gpu.failure.as_deref().unwrap_or_default().contains("CPU-only"));
        // (GAT grads are excluded before the schedule skip can fire, so use
        // a workload that reaches the searched-grad guard.)
        let prep = prepare(Workload::SubdivNet, Scale::Small);
        let grad = run_grad(&prep, System::FtSearched, Device::Cpu, TapePolicy::Selective);
        assert_eq!(grad.failed_stage, Some("schedule"));
        assert!(grad.cycles.is_nan());
    }

    #[test]
    fn searched_schedule_roundtrips_through_search_save_and_replay() {
        // The full tentpole loop at toy scale: search a few evaluations on
        // small GAT, persist the winner, replay it through the bench path,
        // and require the replayed deterministic score to equal the
        // recorded one (the memoized score was produced by the very same
        // prepare → interpret pipeline).
        let prep = prepare(Workload::Gat, Scale::Small);
        let config = SearchConfig {
            budget: 12,
            seed: 2022,
            workers: 2,
            ..SearchConfig::default()
        };
        let (saved, outcome) = search_schedule(&prep, &config, None, None);
        assert!(outcome.evaluations <= 12);
        assert!(saved.searched_cycles <= saved.rule_cycles * (1.0 + 1e-6));
        let back = SavedSchedule::from_json(&saved.to_json()).unwrap();
        assert_eq!(saved, back);
        let prog = replay_program(&prep.naive, Device::Cpu, &back.trace);
        let r = run_ft_both_engines(
            &prog,
            &input_pairs(&prep.inputs),
            DeviceConfig::default(),
            Device::Cpu,
        );
        assert!(r.failure.is_none(), "{:?}", r.failure);
        assert!(
            r.counters.score_eq(&outcome.best_counters),
            "replayed counters diverged: {} vs recorded {}",
            r.counters.modeled_cycles,
            saved.searched_cycles
        );
    }

    #[test]
    fn freetensor_wins_on_modeled_time_forward() {
        // The headline Fig. 16(a) shape at small scale: optimized FreeTensor
        // beats the operator baseline on modeled cycles for every workload.
        for w in Workload::ALL {
            let prep = prepare(w, Scale::Small);
            for dev in [Device::Cpu, Device::Gpu] {
                let ft = run_forward(&prep, System::FtOptimized, dev);
                let ob = run_forward(&prep, System::OpBase, dev);
                assert!(
                    ft.cycles < ob.cycles,
                    "{} on {dev}: FreeTensor {} !< baseline {}",
                    w.name(),
                    fmt_cycles(ft.cycles),
                    fmt_cycles(ob.cycles)
                );
            }
        }
    }
}
