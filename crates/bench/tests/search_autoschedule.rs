//! End-to-end properties of search-based auto-scheduling against the real
//! bench workloads: determinism across runs and worker pools, a directed
//! quality bar on small SubdivNet, honest committed artifacts, and metrics
//! export coverage.

use bench::{prepare, replay_program, search_schedule, Scale, Workload};
use ft_autoschedule::search::{SavedSchedule, SearchConfig};
use ft_ir::Device;
use ft_metrics::Metrics;
use ft_runtime::{Runtime, ScheduleScore, TensorVal};
use ft_schedule::trace::ScheduleOp;
use ft_workloads::input_pairs;
use std::collections::HashMap;
use std::path::PathBuf;

/// The committed schedule store, independent of the test cwd.
fn schedules_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/schedules")
}

fn interp_score(prep: &bench::Prepared, trace: &[ScheduleOp]) -> Option<ScheduleScore> {
    let prog = replay_program(&prep.naive, Device::Cpu, trace);
    let inputs: HashMap<String, TensorVal> = input_pairs(&prep.inputs)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    Runtime::new()
        .run(prog.func(), &inputs, &HashMap::new())
        .ok()
        .map(|r| r.counters.score())
}

#[test]
fn search_is_deterministic_across_runs_and_worker_pools() {
    // Same seed and budget must give bit-identical outcomes no matter how
    // many evaluation workers run — the persisted JSON differs only in the
    // wall-clock field.
    let prep = prepare(Workload::Gat, Scale::Small);
    let run = |workers: usize| {
        let config = SearchConfig {
            budget: 10,
            seed: 41,
            workers,
            ..SearchConfig::default()
        };
        search_schedule(&prep, &config, None, None)
    };
    let (mut a_saved, a_out) = run(1);
    let (mut b_saved, b_out) = run(1);
    let (mut c_saved, c_out) = run(4);
    assert_eq!(a_out.best_trace, b_out.best_trace);
    assert_eq!(a_out.best_score, b_out.best_score);
    assert_eq!(a_out.history, b_out.history);
    assert_eq!(a_out.best_trace, c_out.best_trace, "worker count changed the result");
    assert_eq!(a_out.best_score, c_out.best_score);
    assert_eq!(a_out.history, c_out.history);
    for s in [&mut a_saved, &mut b_saved, &mut c_saved] {
        s.search_wall_ms = 0.0;
    }
    assert_eq!(a_saved.to_json(), b_saved.to_json());
    assert_eq!(a_saved.to_json(), c_saved.to_json());
}

#[test]
fn search_beats_a_known_good_hand_schedule_on_small_subdivnet() {
    // A schedule a performance engineer would write by hand: parallelize
    // the outermost face loop and promote the first local buffer. The
    // search must discover something at least as good within a small
    // budget — and the hand schedule itself must be a real improvement,
    // or the bar would be vacuous.
    let prep = prepare(Workload::SubdivNet, Scale::Small);
    let naive = interp_score(&prep, &[]).expect("naive run");
    let hand = vec![
        ScheduleOp::Parallelize { loop_idx: 0 },
        ScheduleOp::SetMtype { def_idx: 0 },
    ];
    let hand_score = interp_score(&prep, &hand).expect("hand-schedule run");
    assert!(hand_score < naive, "hand schedule is not an improvement");
    let config = SearchConfig {
        budget: 48,
        seed: 2022,
        workers: 2,
        ..SearchConfig::default()
    };
    let (_, outcome) = search_schedule(&prep, &config, None, None);
    assert!(
        outcome.best_score <= hand_score,
        "search ({:?}) lost to the hand schedule ({hand_score:?})",
        outcome.best_score
    );
}

#[test]
fn committed_schedules_replay_to_their_recorded_scores() {
    // Every schedule committed under results/schedules/ must (a) replay
    // from its trace to exactly the recorded deterministic score and
    // (b) document a genuine win over the rule-based warm start. A file
    // that drifts from either is a stale artifact and must fail CI.
    let dir = schedules_dir();
    let mut found = 0usize;
    for w in Workload::ALL {
        for scale in [Scale::Small, Scale::Full] {
            let path = dir.join(SavedSchedule::file_name(
                w.schedule_key(),
                "cpu",
                scale.key(),
            ));
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            found += 1;
            let saved = SavedSchedule::from_json(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(
                saved.searched_cycles < saved.rule_cycles,
                "{}: committed schedule does not beat rule-based",
                path.display()
            );
            let prep = prepare(w, scale);
            let replayed = interp_score(&prep, &saved.trace)
                .unwrap_or_else(|| panic!("{}: replay failed", path.display()));
            let recorded = ScheduleScore::new(saved.searched_cycles, saved.searched_dram);
            assert_eq!(
                replayed,
                recorded,
                "{}: replayed score diverged from the recorded one",
                path.display()
            );
        }
    }
    assert!(
        found > 0,
        "no committed schedules found under {} — the searched system has nothing to replay",
        dir.display()
    );
}

#[test]
fn search_exports_its_counters_through_the_standard_registry() {
    // The driver's `--metrics` export must carry the search telemetry: the
    // same registry every engine reports into.
    let prep = prepare(Workload::Gat, Scale::Small);
    let metrics = Metrics::new();
    let config = SearchConfig {
        budget: 6,
        seed: 2022,
        ..SearchConfig::default()
    };
    let (_, outcome) = search_schedule(&prep, &config, None, Some(&metrics));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("search.evaluations"), outcome.evaluations);
    assert_eq!(snap.counter("search.memo.hit"), outcome.memo_hits);
    assert_eq!(
        snap.counter("search.illegal_rejected"),
        outcome.illegal_rejected
    );
    assert!(snap.counter("search.generations") >= 1);
    assert!(snap.gauges.contains_key("search.best_cycles"));
    // And the snapshot round-trips through JSON with the gauges intact,
    // which is what the artifact upload consumes.
    let back = ft_metrics::MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back.counter("search.evaluations"), outcome.evaluations);
}
