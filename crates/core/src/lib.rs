//! # freetensor-core — the compile-pipeline facade
//!
//! One type, [`Program`], strings the whole FreeTensor stack together:
//!
//! ```text
//! DSL source ──parse/inline/partial-eval──▶ IR ──simplify──▶ Program
//!     Program::optimize(target)   rule-based auto-scheduling (§4.3)
//!     Program::grad(options)      reverse-mode AD (§5)
//!     Program::schedule()         manual Table-1 transformations
//!     Program::run(runtime, …)    instrumented execution
//!     Program::emit_c() / emit_cuda()   backend source
//! ```
//!
//! ```
//! use freetensor_core::Program;
//! use ft_autoschedule::Target;
//!
//! let p = Program::compile(
//!     "def scale(x: f32[8] in, y: f32[8] out):\n  for i in range(8):\n    y[i] = x[i] * 2 + 1\n",
//!     "scale",
//! )?;
//! let fast = p.optimize(&Target::cpu());
//! let rt = ft_runtime::Runtime::new();
//! let x = ft_runtime::TensorVal::from_f32(&[8], vec![1.0; 8]);
//! let out = fast.run(&rt, &[("x", x)], &[])?;
//! assert_eq!(out.output("y").to_f64_vec(), vec![3.0; 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ft_autodiff::{AdError, GradOptions};
use ft_autoschedule::Target;
use ft_ir::Func;
use ft_runtime::{RunResult, Runtime, RuntimeError, TensorVal};
use std::collections::HashMap;

/// A compiled FreeTensor program (an IR function plus pipeline operations).
#[derive(Debug, Clone)]
pub struct Program {
    func: Func,
}

impl Program {
    /// Compile DSL source (entry function `entry`), with the `libop`
    /// operator library in scope; inlines all calls, partially evaluates
    /// metadata, and simplifies.
    ///
    /// # Errors
    ///
    /// Returns parse/lowering errors as display-ready strings.
    pub fn compile(src: &str, entry: &str) -> Result<Program, String> {
        let func = ft_libop::compile_with_libop(src, entry)?;
        Ok(Program::from_func(func))
    }

    /// Wrap an already-built IR function (normalizing definition names and
    /// simplifying).
    pub fn from_func(func: Func) -> Program {
        let func = ft_passes::uniquify_defs(&func);
        let func = ft_passes::simplify(&func);
        Program { func }
    }

    /// The underlying IR function.
    pub fn func(&self) -> &Func {
        &self.func
    }

    /// Apply the rule-based auto-scheduling passes for a target (§4.3),
    /// followed by cleanup simplification. Parameters are placed in the
    /// target device's default memory space (GPU global for GPU targets).
    pub fn optimize(&self, target: &Target) -> Program {
        let mut func = self.func.clone();
        for p in &mut func.params {
            p.mtype = ft_ir::MemType::default_for(target.device);
        }
        let tuned = ft_autoschedule::auto_schedule(&func, target);
        Program {
            func: ft_passes::simplify(&tuned),
        }
    }

    /// Start manual scheduling (Table 1 transformations).
    pub fn schedule(&self) -> ft_schedule::Schedule {
        ft_schedule::Schedule::new(self.func.clone())
    }

    /// Finish manual scheduling.
    pub fn from_schedule(sched: ft_schedule::Schedule) -> Program {
        Program {
            func: sched.into_func(),
        }
    }

    /// Differentiate (reverse mode, §5). The result computes the original
    /// outputs plus `x.grad` for every float input, given `y.grad` seeds.
    ///
    /// # Errors
    ///
    /// See [`ft_autodiff::grad_with`].
    pub fn grad(&self, opts: &GradOptions) -> Result<Program, AdError> {
        let g = ft_autodiff::grad_with(&self.func, opts)?;
        Ok(Program::from_func(g))
    }

    /// Execute on an instrumented runtime.
    ///
    /// # Errors
    ///
    /// See [`ft_runtime::Runtime::run`].
    pub fn run(
        &self,
        runtime: &Runtime,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> Result<RunResult, RuntimeError> {
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        runtime.run(&self.func, &inputs, &sizes)
    }

    /// Emit C99 + OpenMP source for the current schedule.
    pub fn emit_c(&self) -> String {
        ft_codegen::emit_c(&self.func)
    }

    /// Emit CUDA-flavoured source for the current schedule.
    pub fn emit_cuda(&self) -> String {
        ft_codegen::emit_cuda(&self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile_optimize_run() {
        let p = Program::compile(
            "def f(x: f32[16] in, y: f32[16] out):\n  for i in range(16):\n    y[i] = x[i] * x[i]\n",
            "f",
        )
        .unwrap();
        let rt = Runtime::new();
        let x = TensorVal::from_f32(&[16], (0..16).map(|v| v as f32).collect());
        let plain = p.run(&rt, &[("x", x.clone())], &[]).unwrap();
        for target in [Target::cpu(), Target::gpu()] {
            let fast = p.optimize(&target);
            let out = fast.run(&rt, &[("x", x.clone())], &[]).unwrap();
            assert!(plain.output("y").allclose(out.output("y"), 1e-6));
        }
    }

    #[test]
    fn libop_calls_are_inlined_and_co_optimized() {
        let p = Program::compile(
            "def f(x: f32[8, 4] in, y: f32[8, 4] out):\n  t = create_var((8, 4), \"f32\", \"cpu\")\n  relu(x, t)\n  scale(t, 3, y)\n",
            "f",
        )
        .unwrap();
        // After inlining + auto_fuse, a single fused nest should survive.
        let tuned = p.optimize(&Target::cpu());
        let rt = Runtime::new();
        let x = TensorVal::from_f32(&[8, 4], (0..32).map(|v| v as f32 - 16.0).collect());
        let out = tuned.run(&rt, &[("x", x.clone())], &[]).unwrap();
        let expect: Vec<f64> = x
            .to_f64_vec()
            .into_iter()
            .map(|v| v.max(0.0) * 3.0)
            .collect();
        assert_eq!(out.output("y").to_f64_vec(), expect);
    }

    #[test]
    fn grad_pipeline() {
        let p = Program::compile(
            "def f(x: f64[4] in, y: f64[4] out):\n  for i in range(4):\n    y[i] = x[i] * x[i] * x[i]\n",
            "f",
        )
        .unwrap();
        let g = p.grad(&GradOptions::default()).unwrap();
        let rt = Runtime::new();
        let x = TensorVal::from_f64(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let seed = TensorVal::from_f64(&[4], vec![1.0; 4]);
        let out = g
            .run(&rt, &[("x", x), ("y.grad", seed)], &[])
            .unwrap();
        let gx = out.output("x.grad").to_f64_vec();
        let expect: Vec<f64> = [1.0f64, 2.0, 3.0, 4.0].iter().map(|v| 3.0 * v * v).collect();
        for (a, b) in gx.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9, "{gx:?}");
        }
    }

    #[test]
    fn emits_both_backends() {
        let p = Program::compile(
            "def f(x: f32[8] in, y: f32[8] out):\n  for i in range(8):\n    y[i] = x[i] + 1\n",
            "f",
        )
        .unwrap();
        assert!(p.emit_c().contains("void f("));
        let gpu = p.optimize(&Target::gpu());
        assert!(gpu.emit_cuda().contains("__global__"));
    }
}
