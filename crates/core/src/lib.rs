//! # freetensor-core — the compile-pipeline facade
//!
//! One type, [`Program`], strings the whole FreeTensor stack together:
//!
//! ```text
//! DSL source ──parse/inline/partial-eval──▶ IR ──simplify──▶ Program
//!     Program::optimize(target)   rule-based auto-scheduling (§4.3)
//!     Program::grad(options)      reverse-mode AD (§5)
//!     Program::schedule()         manual Table-1 transformations
//!     Program::run(runtime, …)    instrumented execution
//!     Program::emit_c() / emit_cuda()   backend source
//! ```
//!
//! ```
//! use freetensor_core::Program;
//! use ft_autoschedule::Target;
//!
//! let p = Program::compile(
//!     "def scale(x: f32[8] in, y: f32[8] out):\n  for i in range(8):\n    y[i] = x[i] * 2 + 1\n",
//!     "scale",
//! )?;
//! let fast = p.optimize(&Target::cpu());
//! let rt = ft_runtime::Runtime::new();
//! let x = ft_runtime::TensorVal::from_f32(&[8], vec![1.0; 8]);
//! let out = fast.run(&rt, &[("x", x)], &[])?;
//! assert_eq!(out.output("y").to_f64_vec(), vec![3.0; 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ft_autodiff::{AdError, GradOptions};
use ft_autoschedule::Target;
use ft_ir::Func;
use ft_runtime::{
    CompiledEngine, ExecutionEngine, RunResult, Runtime, RuntimeError, TensorVal, VmRuntime,
};
use ft_trace::TraceSink;
use std::collections::HashMap;

/// A compiled FreeTensor program (an IR function plus pipeline operations).
///
/// Installing a [`TraceSink`] (via [`Program::compile_traced`],
/// [`Program::with_sink`] or [`Program::set_sink`]) turns on end-to-end
/// provenance: every pipeline stage this program goes through — frontend
/// lowering, simplification passes, auto-scheduling decisions, codegen, and
/// instrumented runs — reports into the sink, and the sink carries through
/// `optimize`/`grad` to derived programs.
#[derive(Debug, Clone)]
pub struct Program {
    func: Func,
    sink: Option<TraceSink>,
}

impl Program {
    /// Compile DSL source (entry function `entry`), with the `libop`
    /// operator library in scope; inlines all calls, partially evaluates
    /// metadata, and simplifies.
    ///
    /// # Errors
    ///
    /// Returns parse/lowering errors as display-ready strings.
    pub fn compile(src: &str, entry: &str) -> Result<Program, String> {
        Program::compile_inner(src, entry, None)
    }

    /// [`Program::compile`] with provenance recording into `sink`.
    ///
    /// # Errors
    ///
    /// Same error surface as [`Program::compile`].
    pub fn compile_traced(src: &str, entry: &str, sink: TraceSink) -> Result<Program, String> {
        Program::compile_inner(src, entry, Some(sink))
    }

    fn compile_inner(src: &str, entry: &str, sink: Option<TraceSink>) -> Result<Program, String> {
        let func = {
            let mut span = sink.as_ref().map(|s| s.span("frontend", "compile"));
            let func = ft_libop::compile_with_libop(src, entry)?;
            if let Some(sp) = span.as_mut() {
                sp.arg("entry", entry);
                sp.arg("source_bytes", src.len());
            }
            func
        };
        Ok(Program::from_func_inner(func, sink))
    }

    /// Wrap an already-built IR function (normalizing definition names and
    /// simplifying).
    pub fn from_func(func: Func) -> Program {
        Program::from_func_inner(func, None)
    }

    fn from_func_inner(func: Func, sink: Option<TraceSink>) -> Program {
        let func = {
            let _span = sink.as_ref().map(|s| s.span("pass", "uniquify_defs"));
            ft_passes::uniquify_defs(&func)
        };
        let func = ft_passes::simplify_traced(&func, sink.as_ref());
        Program { func, sink }
    }

    /// Install a trace sink on this program (builder form).
    #[must_use]
    pub fn with_sink(mut self, sink: TraceSink) -> Program {
        self.sink = Some(sink);
        self
    }

    /// Install (or remove) the trace sink all later pipeline stages report
    /// into.
    pub fn set_sink(&mut self, sink: Option<TraceSink>) {
        self.sink = sink;
    }

    /// The installed trace sink, if any.
    pub fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// The underlying IR function.
    pub fn func(&self) -> &Func {
        &self.func
    }

    /// Apply the rule-based auto-scheduling passes for a target (§4.3),
    /// followed by cleanup simplification. Parameters are placed in the
    /// target device's default memory space (GPU global for GPU targets).
    /// With a sink installed, every primitive the passes attempt lands in
    /// the schedule decision log.
    pub fn optimize(&self, target: &Target) -> Program {
        let mut func = self.func.clone();
        for p in &mut func.params {
            p.mtype = ft_ir::MemType::default_for(target.device);
        }
        let tuned = ft_autoschedule::auto_schedule_traced(&func, target, self.sink.clone());
        Program {
            func: ft_passes::simplify_traced(&tuned, self.sink.as_ref()),
            sink: self.sink.clone(),
        }
    }

    /// Start manual scheduling (Table 1 transformations). With a sink
    /// installed, manual primitives are logged the same way automatic ones
    /// are.
    pub fn schedule(&self) -> ft_schedule::Schedule {
        match &self.sink {
            Some(s) => ft_schedule::Schedule::with_sink(self.func.clone(), s.clone()),
            None => ft_schedule::Schedule::new(self.func.clone()),
        }
    }

    /// Finish manual scheduling. The schedule's sink (if any) carries over.
    pub fn from_schedule(sched: ft_schedule::Schedule) -> Program {
        let sink = sched.sink().cloned();
        Program {
            func: sched.into_func(),
            sink,
        }
    }

    /// Differentiate (reverse mode, §5). The result computes the original
    /// outputs plus `x.grad` for every float input, given `y.grad` seeds.
    ///
    /// # Errors
    ///
    /// See [`ft_autodiff::grad_with`].
    pub fn grad(&self, opts: &GradOptions) -> Result<Program, AdError> {
        let g = {
            let _span = self.sink.as_ref().map(|s| s.span("autodiff", "grad"));
            ft_autodiff::grad_with(&self.func, opts)?
        };
        Ok(Program::from_func_inner(g, self.sink.clone()))
    }

    /// Execute on an instrumented runtime. If this program carries a trace
    /// sink and `runtime` has none, the run is profiled into the program's
    /// sink (runtime span + per-statement counter attribution).
    ///
    /// # Errors
    ///
    /// See [`ft_runtime::Runtime::run`].
    pub fn run(
        &self,
        runtime: &Runtime,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> Result<RunResult, RuntimeError> {
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        match &self.sink {
            Some(s) if runtime.sink().is_none() => {
                let mut rt = runtime.clone();
                rt.set_sink(Some(s.clone()));
                rt.run(&self.func, &inputs, &sizes)
            }
            _ => runtime.run(&self.func, &inputs, &sizes),
        }
    }

    /// Execute on the bytecode VM (the wall-clock engine; see
    /// `ft_runtime::VmRuntime`). Sink propagation matches [`Program::run`]:
    /// if this program carries a trace sink and `vm` has none, the run is
    /// recorded into the program's sink.
    ///
    /// # Errors
    ///
    /// See [`ft_runtime::VmRuntime::run`].
    pub fn run_vm(
        &self,
        vm: &VmRuntime,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> Result<RunResult, RuntimeError> {
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        match &self.sink {
            Some(s) if vm.sink().is_none() => {
                let mut v = vm.clone();
                v.set_sink(Some(s.clone()));
                v.run(&self.func, &inputs, &sizes)
            }
            _ => vm.run(&self.func, &inputs, &sizes),
        }
    }

    /// Execute on any [`ExecutionEngine`] — the one entry point behind
    /// [`Program::run`]/[`Program::run_vm`]/[`Program::run_compiled`].
    /// Sink propagation matches [`Program::run`]: if this program carries a
    /// trace sink and `engine` has none, the run is recorded into the
    /// program's sink.
    ///
    /// # Errors
    ///
    /// The engine's [`RuntimeError`] surface.
    pub fn run_engine<E: ExecutionEngine + Clone>(
        &self,
        engine: &E,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> Result<RunResult, RuntimeError> {
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        match &self.sink {
            Some(s) if engine.sink().is_none() => {
                let mut e = engine.clone();
                e.set_sink(Some(s.clone()));
                e.run(&self.func, &inputs, &sizes)
            }
            _ => engine.run(&self.func, &inputs, &sizes),
        }
    }

    /// Execute through the native compiled engine: emit C, `cc`-compile to
    /// a cached shared object, and call it in-process (the paper's actual
    /// execution model). Compilation happens at most once per distinct
    /// schedule — repeat runs hit the artifact cache.
    ///
    /// # Errors
    ///
    /// See [`ft_runtime::CompiledEngine`]; toolchain failures surface as
    /// [`RuntimeError::Native`].
    pub fn run_compiled(
        &self,
        engine: &CompiledEngine,
        inputs: &[(&str, TensorVal)],
        sizes: &[(&str, i64)],
    ) -> Result<RunResult, RuntimeError> {
        self.run_engine(engine, inputs, sizes)
    }

    /// Emit C99 + OpenMP source for the current schedule.
    pub fn emit_c(&self) -> String {
        ft_codegen::emit_c_traced(&self.func, self.sink.as_ref())
    }

    /// Emit CUDA-flavoured source for the current schedule.
    pub fn emit_cuda(&self) -> String {
        ft_codegen::emit_cuda_traced(&self.func, self.sink.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile_optimize_run() {
        let p = Program::compile(
            "def f(x: f32[16] in, y: f32[16] out):\n  for i in range(16):\n    y[i] = x[i] * x[i]\n",
            "f",
        )
        .unwrap();
        let rt = Runtime::new();
        let x = TensorVal::from_f32(&[16], (0..16).map(|v| v as f32).collect());
        let plain = p.run(&rt, &[("x", x.clone())], &[]).unwrap();
        for target in [Target::cpu(), Target::gpu()] {
            let fast = p.optimize(&target);
            let out = fast.run(&rt, &[("x", x.clone())], &[]).unwrap();
            assert!(plain.output("y").allclose(out.output("y"), 1e-6));
        }
    }

    #[test]
    fn libop_calls_are_inlined_and_co_optimized() {
        let p = Program::compile(
            "def f(x: f32[8, 4] in, y: f32[8, 4] out):\n  t = create_var((8, 4), \"f32\", \"cpu\")\n  relu(x, t)\n  scale(t, 3, y)\n",
            "f",
        )
        .unwrap();
        // After inlining + auto_fuse, a single fused nest should survive.
        let tuned = p.optimize(&Target::cpu());
        let rt = Runtime::new();
        let x = TensorVal::from_f32(&[8, 4], (0..32).map(|v| v as f32 - 16.0).collect());
        let out = tuned.run(&rt, &[("x", x.clone())], &[]).unwrap();
        let expect: Vec<f64> = x
            .to_f64_vec()
            .into_iter()
            .map(|v| v.max(0.0) * 3.0)
            .collect();
        assert_eq!(out.output("y").to_f64_vec(), expect);
    }

    #[test]
    fn grad_pipeline() {
        let p = Program::compile(
            "def f(x: f64[4] in, y: f64[4] out):\n  for i in range(4):\n    y[i] = x[i] * x[i] * x[i]\n",
            "f",
        )
        .unwrap();
        let g = p.grad(&GradOptions::default()).unwrap();
        let rt = Runtime::new();
        let x = TensorVal::from_f64(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let seed = TensorVal::from_f64(&[4], vec![1.0; 4]);
        let out = g
            .run(&rt, &[("x", x), ("y.grad", seed)], &[])
            .unwrap();
        let gx = out.output("x.grad").to_f64_vec();
        let expect: Vec<f64> = [1.0f64, 2.0, 3.0, 4.0].iter().map(|v| 3.0 * v * v).collect();
        for (a, b) in gx.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9, "{gx:?}");
        }
    }

    #[test]
    fn traced_pipeline_covers_compile_schedule_and_run() {
        let sink = ft_trace::TraceSink::new();
        let p = Program::compile_traced(
            "def f(x: f32[64] in, y: f32[64] out):\n  for i in range(64):\n    y[i] = x[i] * 2\n",
            "f",
            sink.clone(),
        )
        .unwrap();
        let fast = p.optimize(&Target::cpu());
        let rt = Runtime::new();
        let x = TensorVal::from_f32(&[64], vec![1.0; 64]);
        let r = fast.run(&rt, &[("x", x)], &[]).unwrap();
        let _ = fast.emit_c();

        let events = sink.events();
        for expected in ["compile", "uniquify_defs", "simplify", "emit_c"] {
            assert!(
                events.iter().any(|e| e.name == expected),
                "missing span `{expected}` in {:?}",
                events.iter().map(|e| &e.name).collect::<Vec<_>>()
            );
        }
        assert!(events.iter().any(|e| e.name.starts_with("interp")));
        // The auto-schedule passes logged decisions; the run left a profile
        // whose exclusive sums equal the whole-run counters.
        assert!(!sink.decisions().is_empty());
        let profiles = sink.profiles();
        assert_eq!(profiles.len(), 1);
        let t = profiles[0].totals();
        assert_eq!(t.flops, r.counters.flops);
        assert_eq!(t.dram_bytes, r.counters.dram_bytes);
        assert_eq!(t.l2_bytes, r.counters.l2_bytes);
        // The exported Chrome trace is well-formed.
        let json = ft_trace::chrome_trace(&sink);
        ft_trace::validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn vm_engine_matches_interpreter_end_to_end() {
        let p = Program::compile(
            "def f(x: f32[32] in, y: f32[32] out):\n  for i in range(32):\n    y[i] = x[i] * x[i] + 1\n",
            "f",
        )
        .unwrap();
        let fast = p.optimize(&Target::cpu());
        let x = TensorVal::from_f32(&[32], (0..32).map(|v| v as f32 * 0.25).collect());
        let ri = fast.run(&Runtime::new(), &[("x", x.clone())], &[]).unwrap();
        let rv = fast
            .run_vm(&VmRuntime::new(), &[("x", x)], &[])
            .unwrap();
        assert_eq!(ri.output("y"), rv.output("y"));
    }

    #[test]
    fn compiled_engine_matches_interpreter_end_to_end() {
        if !ft_runtime::cc_available() {
            eprintln!("cc unavailable; skipping");
            return;
        }
        let p = Program::compile(
            "def f(x: f32[32] in, y: f32[32] out):\n  for i in range(32):\n    y[i] = x[i] * x[i] + 1\n",
            "f",
        )
        .unwrap();
        let fast = p.optimize(&Target::cpu());
        let x = TensorVal::from_f32(&[32], (0..32).map(|v| v as f32 * 0.25).collect());
        let ri = fast.run(&Runtime::new(), &[("x", x.clone())], &[]).unwrap();
        let rc = fast
            .run_compiled(&CompiledEngine::new(), &[("x", x)], &[])
            .unwrap();
        // Inputs here are exactly representable and the kernel is one
        // multiply-add per element, so f32-native arithmetic agrees with
        // the interpreter's widen-to-f64-then-round to rounding error.
        assert!(ri.output("y").allclose(rc.output("y"), 1e-6));
    }

    #[test]
    fn emits_both_backends() {
        let p = Program::compile(
            "def f(x: f32[8] in, y: f32[8] out):\n  for i in range(8):\n    y[i] = x[i] + 1\n",
            "f",
        )
        .unwrap();
        assert!(p.emit_c().contains("void f("));
        let gpu = p.optimize(&Target::gpu());
        assert!(gpu.emit_cuda().contains("__global__"));
    }
}
