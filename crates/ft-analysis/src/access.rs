//! Collection of tensor accesses with their full static context.

use ft_ir::{Expr, Func, ReduceOp, Stmt, StmtId, StmtKind, Visitor};
use std::collections::HashMap;

/// How an access touches its tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read (`Load`).
    Read,
    /// A plain write (`Store`).
    Write,
    /// A read-modify-write with a commutative-associative operator.
    Reduce(ReduceOp),
}

impl AccessKind {
    /// Whether the access writes its tensor.
    pub fn writes(self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    /// Whether the access reads its tensor.
    pub fn reads(self) -> bool {
        !matches!(self, AccessKind::Write)
    }
}

/// One enclosing loop of an access.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopCtx {
    /// Id of the `For` statement.
    pub id: StmtId,
    /// Iterator name.
    pub iter: String,
    /// Inclusive lower bound.
    pub begin: Expr,
    /// Exclusive upper bound.
    pub end: Expr,
}

/// A single tensor access inside a function.
#[derive(Debug, Clone)]
pub struct Access {
    /// Id of the statement containing the access.
    pub stmt: StmtId,
    /// Tensor name.
    pub var: String,
    /// Subscript expressions (empty for scalars).
    pub indices: Vec<Expr>,
    /// Read / write / reduce.
    pub kind: AccessKind,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopCtx>,
    /// Enclosing branch conditions; `(cond, taken)` where `taken == false`
    /// means the access is in the `else` arm.
    pub conds: Vec<(Expr, bool)>,
    /// Pre-order position of the containing statement, for syntactic
    /// ordering of instances with equal loop iterations.
    pub pos: usize,
}

/// All accesses of a function plus per-tensor scope information.
#[derive(Debug, Clone, Default)]
pub struct AccessInfo {
    /// Every access, in pre-order.
    pub accesses: Vec<Access>,
    /// For each locally defined tensor: the ids of the loops *containing* its
    /// `VarDef` (dependences on the tensor cannot be carried by these loops —
    /// each iteration sees a fresh incarnation; paper Fig. 12(d)).
    pub def_inside_loops: HashMap<String, Vec<StmtId>>,
}

struct Collector {
    loops: Vec<LoopCtx>,
    conds: Vec<(Expr, bool)>,
    pos: usize,
    info: AccessInfo,
}

impl Collector {
    fn record(&mut self, stmt: StmtId, var: &str, indices: &[Expr], kind: AccessKind) {
        self.info.accesses.push(Access {
            stmt,
            var: var.to_string(),
            indices: indices.to_vec(),
            kind,
            loops: self.loops.clone(),
            conds: self.conds.clone(),
            pos: self.pos,
        });
    }

    fn record_expr_reads(&mut self, stmt: StmtId, e: &Expr) {
        match e {
            Expr::Load { var, indices } => {
                self.record(stmt, var, indices, AccessKind::Read);
                for i in indices {
                    self.record_expr_reads(stmt, i);
                }
            }
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => self.record_expr_reads(stmt, a),
            Expr::Binary { a, b, .. } => {
                self.record_expr_reads(stmt, a);
                self.record_expr_reads(stmt, b);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.record_expr_reads(stmt, cond);
                self.record_expr_reads(stmt, then);
                self.record_expr_reads(stmt, otherwise);
            }
            _ => {}
        }
    }

    fn walk(&mut self, s: &Stmt) {
        self.pos += 1;
        let my_pos = self.pos;
        match &s.kind {
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.walk(st);
                }
            }
            StmtKind::VarDef { name, body, .. } => {
                self.info.def_inside_loops.insert(
                    name.clone(),
                    self.loops.iter().map(|l| l.id).collect(),
                );
                self.walk(body);
            }
            StmtKind::For {
                iter,
                begin,
                end,
                body,
                ..
            } => {
                self.record_expr_reads(s.id, begin);
                self.record_expr_reads(s.id, end);
                self.loops.push(LoopCtx {
                    id: s.id,
                    iter: iter.clone(),
                    begin: begin.clone(),
                    end: end.clone(),
                });
                self.walk(body);
                self.loops.pop();
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                self.record_expr_reads(s.id, cond);
                self.conds.push((cond.clone(), true));
                self.walk(then);
                self.conds.pop();
                if let Some(o) = otherwise {
                    self.conds.push((cond.clone(), false));
                    self.walk(o);
                    self.conds.pop();
                }
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                self.pos = my_pos;
                for i in indices {
                    self.record_expr_reads(s.id, i);
                }
                self.record_expr_reads(s.id, value);
                self.record(s.id, var, indices, AccessKind::Write);
            }
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                ..
            } => {
                for i in indices {
                    self.record_expr_reads(s.id, i);
                }
                self.record_expr_reads(s.id, value);
                self.record(s.id, var, indices, AccessKind::Reduce(*op));
            }
            StmtKind::LibCall {
                inputs, outputs, ..
            } => {
                // A library call touches whole tensors with unknown (non-affine)
                // subscripts: model each as a 0-subscript access which the
                // dependence engine treats as "may alias any element".
                for i in inputs {
                    self.record(s.id, i, &[], AccessKind::Read);
                }
                for o in outputs {
                    self.record(s.id, o, &[], AccessKind::Write);
                }
            }
            StmtKind::Empty => {}
        }
    }
}

/// Collect every access of the function body with its static context.
pub fn collect_accesses(func: &Func) -> AccessInfo {
    let mut c = Collector {
        loops: Vec::new(),
        conds: Vec::new(),
        pos: 0,
        info: AccessInfo::default(),
    };
    c.walk(&func.body);
    c.info
}

/// Check that all `VarDef` names in a function are unique (the dependence
/// engine keys tensors by name). Returns the first duplicate, if any.
pub fn find_duplicate_def(func: &Func) -> Option<String> {
    struct Dup {
        seen: std::collections::HashSet<String>,
        dup: Option<String>,
    }
    impl Visitor for Dup {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                if !self.seen.insert(name.clone()) && self.dup.is_none() {
                    self.dup = Some(name.clone());
                }
            }
            ft_ir::visit::walk_stmt(self, s);
        }
    }
    let mut d = Dup {
        seen: func.params.iter().map(|p| p.name.clone()).collect(),
        dup: None,
    };
    d.visit_stmt(&func.body);
    d.dup
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::DataType;

    fn example() -> Func {
        // for i in 0..n:
        //   t = create_var((), f32)
        //   if i < m:
        //     t[] = x[i]
        //     y[i] += t[]
        Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .size_param("m")
            .body(for_(
                "i",
                0,
                var("n"),
                var_def(
                    "t",
                    ft_ir::builder::scalar(),
                    DataType::F32,
                    MemType::CpuStack,
                    if_(
                        var("i").lt(var("m")),
                        block([
                            store("t", scalar(), load("x", [var("i")])),
                            reduce("y", [var("i")], ReduceOp::Add, load("t", scalar())),
                        ]),
                    ),
                ),
            ))
    }

    #[test]
    fn collects_all_accesses_with_context() {
        let info = collect_accesses(&example());
        // x read, t write, t read, y reduce, plus loop-bound read of n? (n is
        // a scalar var, not a Load) => 4 accesses.
        assert_eq!(info.accesses.len(), 4);
        let y = info
            .accesses
            .iter()
            .find(|a| a.var == "y")
            .expect("y access");
        assert!(matches!(y.kind, AccessKind::Reduce(ReduceOp::Add)));
        assert_eq!(y.loops.len(), 1);
        assert_eq!(y.loops[0].iter, "i");
        assert_eq!(y.conds.len(), 1);
        assert!(y.conds[0].1);
    }

    #[test]
    fn def_scope_is_recorded() {
        let info = collect_accesses(&example());
        let loops = &info.def_inside_loops["t"];
        assert_eq!(loops.len(), 1); // t's def sits inside the i loop
    }

    #[test]
    fn pos_orders_statements() {
        let info = collect_accesses(&example());
        let t_write = info
            .accesses
            .iter()
            .find(|a| a.var == "t" && a.kind.writes())
            .unwrap();
        let t_read = info
            .accesses
            .iter()
            .find(|a| a.var == "t" && a.kind == AccessKind::Read)
            .unwrap();
        assert!(t_write.pos < t_read.pos);
    }

    #[test]
    fn duplicate_defs_are_found() {
        let f = Func::new("g").body(block([
            var_def("t", [1], DataType::F32, MemType::CpuHeap, empty()),
            var_def("t", [1], DataType::F32, MemType::CpuHeap, empty()),
        ]));
        assert_eq!(find_duplicate_def(&f), Some("t".to_string()));
        assert_eq!(find_duplicate_def(&example()), None);
    }
}
