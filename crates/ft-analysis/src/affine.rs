//! Extraction of affine forms from IR expressions.
//!
//! Subscripts and loop bounds that are affine in the surrounding iterators
//! and size parameters become [`LinExpr`]s, enabling exact polyhedral
//! reasoning. Anything else (indirect loads like `adj[i, j]`, `%`, `/`,
//! products of variables) yields `None` and is treated conservatively by the
//! dependence engine.

use ft_ir::{BinaryOp, Expr, UnaryOp};
use ft_poly::{Constraint, LinExpr, System};
use std::collections::HashMap;

/// A renaming of scalar variables applied during extraction (used to give
/// the two instances of a dependence query distinct variable names).
pub type VarMap = HashMap<String, String>;

/// Convert an expression to an affine form over scalar variables, renaming
/// variables through `map` (variables absent from the map keep their name).
///
/// Returns `None` when the expression is not affine.
pub fn to_linexpr_mapped(e: &Expr, map: &VarMap) -> Option<LinExpr> {
    match e {
        Expr::IntConst(v) => Some(LinExpr::constant(*v)),
        Expr::Var(n) => {
            let name = map.get(n).cloned().unwrap_or_else(|| n.clone());
            Some(LinExpr::var(name))
        }
        Expr::Unary {
            op: UnaryOp::Neg,
            a,
        } => Some(-to_linexpr_mapped(a, map)?),
        Expr::Binary { op, a, b } => {
            let la = to_linexpr_mapped(a, map);
            let lb = to_linexpr_mapped(b, map);
            match op {
                BinaryOp::Add => Some(la? + lb?),
                BinaryOp::Sub => Some(la? - lb?),
                BinaryOp::Mul => {
                    // Affine only when one side is constant.
                    let (la, lb) = (la?, lb?);
                    if la.is_constant() {
                        Some(lb.scaled(la.constant_term()))
                    } else if lb.is_constant() {
                        Some(la.scaled(lb.constant_term()))
                    } else {
                        None
                    }
                }
                BinaryOp::Div => {
                    // Exact constant division only.
                    let (la, lb) = (la?, lb?);
                    let d = lb.is_constant().then(|| lb.constant_term())?;
                    if d != 0
                        && la.constant_term() % d == 0
                        && la.iter_terms().all(|(_, c)| c % d == 0)
                    {
                        Some(la.exact_div(d))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::Cast { a, .. } => to_linexpr_mapped(a, map),
        _ => None,
    }
}

/// Convert an expression to an affine form without renaming.
pub fn to_linexpr(e: &Expr) -> Option<LinExpr> {
    to_linexpr_mapped(e, &VarMap::new())
}

/// Translate a branch condition into constraints conjoined onto `sys`.
///
/// Returns `true` when the condition was captured exactly; `false` when it
/// was (partially) dropped, leaving `sys` an over-approximation of the
/// condition's domain — which is the conservative direction for dependence
/// testing.
pub fn cond_to_constraints(cond: &Expr, map: &VarMap, sys: &mut System) -> bool {
    match cond {
        Expr::Binary {
            op: BinaryOp::And,
            a,
            b,
        } => {
            // Both conjuncts add constraints; exact iff both exact.
            let ea = cond_to_constraints(a, map, sys);
            let eb = cond_to_constraints(b, map, sys);
            ea && eb
        }
        Expr::Binary { op, a, b } => {
            let (Some(la), Some(lb)) = (to_linexpr_mapped(a, map), to_linexpr_mapped(b, map))
            else {
                return false;
            };
            match op {
                BinaryOp::Lt => {
                    sys.push(Constraint::lt(la, lb));
                    true
                }
                BinaryOp::Le => {
                    sys.push(Constraint::le(la, lb));
                    true
                }
                BinaryOp::Gt => {
                    sys.push(Constraint::gt(la, lb));
                    true
                }
                BinaryOp::Ge => {
                    sys.push(Constraint::ge(la, lb));
                    true
                }
                BinaryOp::Eq => {
                    sys.push(Constraint::eq(la, lb));
                    true
                }
                _ => false,
            }
        }
        Expr::BoolConst(true) => true,
        _ => false,
    }
}

/// Translate the *negation* of a branch condition (for `else` arms).
///
/// Only single comparisons negate exactly into a conjunction; anything else
/// is dropped (over-approximation).
pub fn negated_cond_to_constraints(cond: &Expr, map: &VarMap, sys: &mut System) -> bool {
    if let Expr::Binary { op, a, b } = cond {
        let (Some(la), Some(lb)) = (to_linexpr_mapped(a, map), to_linexpr_mapped(b, map)) else {
            return false;
        };
        match op {
            BinaryOp::Lt => {
                sys.push(Constraint::ge(la, lb));
                return true;
            }
            BinaryOp::Le => {
                sys.push(Constraint::gt(la, lb));
                return true;
            }
            BinaryOp::Gt => {
                sys.push(Constraint::le(la, lb));
                return true;
            }
            BinaryOp::Ge => {
                sys.push(Constraint::lt(la, lb));
                return true;
            }
            _ => {}
        }
    }
    false
}


/// Convert an affine form back into an IR expression (normal form: terms in
/// name order, constant last).
pub fn linexpr_to_expr(l: &LinExpr) -> Expr {
    let mut e: Option<Expr> = None;
    for (name, coeff) in l.iter_terms() {
        let term = if coeff == 1 {
            Expr::Var(name.to_string())
        } else {
            Expr::Var(name.to_string()) * coeff
        };
        e = Some(match e {
            None => term,
            Some(acc) => acc + term,
        });
    }
    let c = l.constant_term();
    match e {
        None => Expr::IntConst(c),
        Some(acc) if c == 0 => acc,
        Some(acc) => acc + c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_poly::Sat;

    #[test]
    fn affine_extraction() {
        let e = var("i") * 2 + var("j") - 3;
        let l = to_linexpr(&e).unwrap();
        assert_eq!(l.coeff("i"), 2);
        assert_eq!(l.coeff("j"), 1);
        assert_eq!(l.constant_term(), -3);
    }

    #[test]
    fn non_affine_yields_none() {
        assert!(to_linexpr(&(var("i") * var("j"))).is_none());
        assert!(to_linexpr(&load("adj", [var("i")])).is_none());
        assert!(to_linexpr(&var("i").rem(4)).is_none());
        // Division only when exact.
        assert!(to_linexpr(&(var("i") * 4 / 2)).is_some());
        assert!(to_linexpr(&(var("i") / 2)).is_none());
    }

    #[test]
    fn renaming_applies() {
        let mut map = VarMap::new();
        map.insert("i".to_string(), "i@src".to_string());
        let l = to_linexpr_mapped(&(var("i") + 1), &map).unwrap();
        assert_eq!(l.coeff("i@src"), 1);
        assert_eq!(l.coeff("i"), 0);
    }

    #[test]
    fn conditions_become_constraints() {
        // i + k >= 0 and i + k < n
        let cond = (var("i") + var("k"))
            .ge(0)
            .and((var("i") + var("k")).lt(var("n")));
        let mut sys = System::new();
        assert!(cond_to_constraints(&cond, &VarMap::new(), &mut sys));
        assert_eq!(sys.constraints.len(), 2);
        // Adding i + k = n makes it empty.
        sys.push(ft_poly::Constraint::eq(
            ft_poly::LinExpr::var("i") + ft_poly::LinExpr::var("k"),
            ft_poly::LinExpr::var("n"),
        ));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn negated_conditions() {
        let mut sys = System::new();
        assert!(negated_cond_to_constraints(
            &var("i").lt(var("n")),
            &VarMap::new(),
            &mut sys
        ));
        // not(i < n)  =>  i >= n; with i < n it must be empty.
        assert!(cond_to_constraints(
            &var("i").lt(var("n")),
            &VarMap::new(),
            &mut sys
        ));
        assert_eq!(sys.satisfiable(), Sat::Empty);
        // Negating a conjunction is a disjunction: dropped, reported inexact.
        let mut sys2 = System::new();
        assert!(!negated_cond_to_constraints(
            &var("i").lt(5).and(var("j").lt(5)),
            &VarMap::new(),
            &mut sys2
        ));
        assert!(sys2.constraints.is_empty());
    }
}
