//! Symbolic and constant bound inference.
//!
//! This implements the bound analysis the paper uses for the `cache`
//! transformation (Fig. 14): every affine index expression gets a set of
//! candidate lower and upper bounds, obtained by substituting the bounds of
//! loop iterators; the caller then selects the tightest bound expressed only
//! in terms of variables defined at the caching point.

use crate::affine::to_linexpr;
use ft_ir::Expr;
use ft_poly::LinExpr;
use std::collections::HashMap;

/// Per-iterator bound context: `iter -> [lower, upper]` (both inclusive),
/// as affine expressions over outer variables.
#[derive(Debug, Clone, Default)]
pub struct BoundsCtx {
    ranges: Vec<(String, LinExpr, LinExpr)>,
    index: HashMap<String, usize>,
}

impl BoundsCtx {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an iterator with inclusive bounds `[lower, upper]`, innermost
    /// last. Bounds may reference previously registered iterators.
    pub fn push(&mut self, iter: impl Into<String>, lower: LinExpr, upper: LinExpr) {
        let name = iter.into();
        self.index.insert(name.clone(), self.ranges.len());
        self.ranges.push((name, lower, upper));
    }

    /// Remove the innermost iterator.
    pub fn pop(&mut self) {
        if let Some((name, _, _)) = self.ranges.pop() {
            self.index.remove(&name);
        }
    }

    /// Whether `name` is a registered iterator.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// The registered bounds of an iterator, if any.
    pub fn get(&self, name: &str) -> Option<(&LinExpr, &LinExpr)> {
        self.index.get(name).map(|&i| {
            let (_, lo, hi) = &self.ranges[i];
            (lo, hi)
        })
    }
}

/// Symbolic inclusive bounds of an expression: `lower <= e <= upper`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBounds {
    /// An affine lower bound.
    pub lower: LinExpr,
    /// An affine upper bound.
    pub upper: LinExpr,
}

/// Compute symbolic bounds of `e` in terms of variables *not* listed in
/// `eliminate` (typically the iterators inner to a caching point), by
/// repeatedly substituting each eliminated iterator's own bounds according to
/// its coefficient sign.
///
/// Returns `None` when `e` is not affine or an eliminated variable has no
/// registered bounds.
pub fn symbolic_bounds(e: &Expr, ctx: &BoundsCtx, eliminate: &[String]) -> Option<SymBounds> {
    let lin = to_linexpr(e)?;
    let mut lower = lin.clone();
    let mut upper = lin;
    // Substitute innermost-first so bounds referencing outer iterators are
    // themselves eliminated on later steps.
    for (name, lo, hi) in ctx.ranges.iter().rev() {
        if !eliminate.contains(name) {
            continue;
        }
        let cl = lower.coeff(name);
        if cl != 0 {
            let sub = if cl > 0 { lo } else { hi };
            lower = lower.subst(name, sub);
        }
        let cu = upper.coeff(name);
        if cu != 0 {
            let sub = if cu > 0 { hi } else { lo };
            upper = upper.subst(name, sub);
        }
    }
    // Every eliminated variable must be gone.
    for name in eliminate {
        if lower.coeff(name) != 0 || upper.coeff(name) != 0 {
            return None;
        }
    }
    Some(SymBounds { lower, upper })
}

/// Compute constant inclusive bounds of `e`, eliminating *all* iterators in
/// the context. Remaining free variables (size parameters) make this fail.
pub fn const_bounds(e: &Expr, ctx: &BoundsCtx) -> Option<(i64, i64)> {
    let all: Vec<String> = ctx.ranges.iter().map(|(n, _, _)| n.clone()).collect();
    let b = symbolic_bounds(e, ctx, &all)?;
    if b.lower.is_constant() && b.upper.is_constant() {
        Some((b.lower.constant_term(), b.upper.constant_term()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn paper_fig14_cache_bounds() {
        // for i in 0..n: for j in 0..m: access a[i + j]
        // Caching between i and j: eliminate j. Tightest bounds: [i, i+m-1].
        let mut ctx = BoundsCtx::new();
        ctx.push("i", LinExpr::constant(0), LinExpr::var("n") - 1);
        ctx.push("j", LinExpr::constant(0), LinExpr::var("m") - 1);
        let e = var("i") + var("j");
        let b = symbolic_bounds(&e, &ctx, &["j".to_string()]).unwrap();
        assert_eq!(b.lower, LinExpr::var("i"));
        assert_eq!(b.upper, LinExpr::var("i") + LinExpr::var("m") - 1);
        // Cache extent: upper - lower + 1 = m.
        let extent = b.upper - b.lower + 1;
        assert_eq!(extent, LinExpr::var("m"));
    }

    #[test]
    fn negative_coefficients_flip_bounds() {
        let mut ctx = BoundsCtx::new();
        ctx.push("k", LinExpr::constant(0), LinExpr::constant(7));
        let e = -var("k") + 10;
        let (lo, hi) = const_bounds(&e, &ctx).unwrap();
        assert_eq!((lo, hi), (3, 10));
    }

    #[test]
    fn triangular_loops_substitute_transitively() {
        // for i in 0..8: for j in 0..i: bounds of (i + j) eliminating both.
        let mut ctx = BoundsCtx::new();
        ctx.push("i", LinExpr::constant(0), LinExpr::constant(7));
        ctx.push("j", LinExpr::constant(0), LinExpr::var("i") - 1);
        let (lo, hi) = const_bounds(&(var("i") + var("j")), &ctx).unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 13); // i = 7, j <= 6
    }

    #[test]
    fn fails_on_non_affine_or_unbounded() {
        let ctx = BoundsCtx::new();
        assert!(symbolic_bounds(&(var("i") * var("j")), &ctx, &[]).is_none());
        // Eliminating a variable with no registered bounds fails.
        assert!(symbolic_bounds(&var("i"), &ctx, &["i".to_string()]).is_none());
        // Size parameters remain symbolic: const bounds fail, symbolic ok.
        let mut ctx = BoundsCtx::new();
        ctx.push("i", LinExpr::constant(0), LinExpr::var("n") - 1);
        assert!(const_bounds(&var("i"), &ctx).is_none());
        assert!(symbolic_bounds(&var("i"), &ctx, &["i".to_string()]).is_some());
    }
}
