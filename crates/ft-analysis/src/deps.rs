//! The dependence engine: instance-precision RAW/WAR/WAW analysis and the
//! order-violation queries behind every schedule legality check.
//!
//! A dependence query between two accesses is compiled to an integer linear
//! system (see `ft-poly`):
//!
//! * the iteration domains of both instances (loop bounds + branch
//!   conditions), with iterators renamed apart,
//! * subscript equality per affine dimension (non-affine dimensions are
//!   skipped — "may alias anything"),
//! * an execution-order constraint (loop-carried at a given carrier loop, or
//!   loop-independent with syntactic position as tie-breaker).
//!
//! Three FreeTensor-specific refinements (paper Fig. 12) are implemented:
//!
//! * **stack-scope projection**: a dependence on a tensor cannot be carried
//!   by a loop that encloses the tensor's `VarDef` — each iteration owns a
//!   fresh incarnation (Fig. 12(d));
//! * **commutative reductions**: two `ReduceTo`s with the same operator on
//!   the same tensor never constrain each other (Fig. 12(c));
//! * **`no_deps` assertions**: loops may declare tensors free of carried
//!   dependences (the escape hatch for indirect subscripts the polyhedral
//!   model cannot see through).

use crate::access::{collect_accesses, Access, AccessInfo, AccessKind, LoopCtx};
use crate::affine::{
    cond_to_constraints, negated_cond_to_constraints, to_linexpr_mapped, VarMap,
};
use ft_ir::{find, Func, Stmt, StmtId, StmtKind};
use ft_poly::{Constraint, LinExpr, Sat, System};
use std::collections::HashSet;
use std::fmt;

/// Classification of a dependence by the kinds of its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
}

/// What carries a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// Carried by the loop with this id (the instances differ in this loop's
    /// iteration, with all outer common iterations equal).
    Loop(StmtId),
    /// Loop-independent (same iteration of every common loop; the sink is
    /// syntactically after the source).
    Independent,
}

/// A dependence found by the engine.
#[derive(Debug, Clone)]
pub struct FoundDep {
    /// RAW / WAR / WAW.
    pub kind: DepKind,
    /// The tensor involved.
    pub var: String,
    /// Statement containing the earlier (source) access.
    pub source: StmtId,
    /// Statement containing the later (sink) access.
    pub sink: StmtId,
    /// Carrier loop or loop-independent.
    pub carrier: Carrier,
    /// `true` when the solver certified the dependence exists; `false` when
    /// it could not rule it out (conservative).
    pub certain: bool,
}

/// A structured legality violation: why a transformation must be rejected,
/// carrying the blocking dependences themselves (not just a message) so
/// callers — notably the schedule decision log — can report *which*
/// dependence was violated.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable explanation.
    pub reason: String,
    /// The dependences blocking the transformation; empty for structural
    /// failures (e.g. "loop not found") that never reached the solver.
    pub deps: Vec<FoundDep>,
}

impl Violation {
    fn structural(reason: impl Into<String>) -> Violation {
        Violation {
            reason: reason.into(),
            deps: Vec::new(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

fn side_map(loops: &[LoopCtx], tag: &str) -> VarMap {
    // Innermost binding wins for shadowed names (map is overwritten in order).
    let mut m = VarMap::new();
    for l in loops {
        m.insert(l.iter.clone(), format!("{}.{}{}", l.iter, l.id.0, tag));
    }
    m
}

fn renamed(l: &LoopCtx, tag: &str) -> String {
    format!("{}.{}{}", l.iter, l.id.0, tag)
}

/// Add the iteration-domain constraints of one access side.
fn domain_constraints(acc: &Access, tag: &str, sys: &mut System) {
    // Build the rename map incrementally so a loop's bounds are translated
    // with only *outer* iterators renamed.
    let mut map = VarMap::new();
    for l in &acc.loops {
        let v = LinExpr::var(renamed(l, tag));
        if let Some(lo) = to_linexpr_mapped(&l.begin, &map) {
            sys.push(Constraint::ge(v.clone(), lo));
        }
        if let Some(hi) = to_linexpr_mapped(&l.end, &map) {
            sys.push(Constraint::lt(v, hi));
        }
        map.insert(l.iter.clone(), renamed(l, tag));
    }
    for (cond, taken) in &acc.conds {
        if *taken {
            cond_to_constraints(cond, &map, sys);
        } else {
            negated_cond_to_constraints(cond, &map, sys);
        }
    }
}

/// Add subscript-equality constraints for the affine dimensions.
fn subscript_constraints(a: &Access, b: &Access, sys: &mut System) {
    let ma = side_map(&a.loops, "s");
    let mb = side_map(&b.loops, "t");
    // A LibCall access has no subscripts and aliases the whole tensor:
    // mismatched arity also means "may alias" — skip equality entirely.
    if a.indices.len() != b.indices.len() {
        return;
    }
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        if let (Some(la), Some(lb)) = (to_linexpr_mapped(ia, &ma), to_linexpr_mapped(ib, &mb)) {
            sys.push(Constraint::eq(la, lb));
        }
        // Non-affine dimension: may alias anything — no constraint.
    }
}

/// Stack-scope incarnation constraint (Fig. 12(d)): two instances can only
/// touch the *same* incarnation of a locally defined tensor when they agree
/// on every loop enclosing its `VarDef`, because each iteration of such a
/// loop allocates a fresh tensor.
fn incarnation_constraints(info: &AccessInfo, a: &Access, b: &Access, sys: &mut System) {
    let Some(containing) = info.def_inside_loops.get(&a.var) else {
        return; // function parameter: one incarnation for the whole call
    };
    for c in common_loops(a, b) {
        if containing.contains(&c.id) {
            sys.push(Constraint::eq(
                LinExpr::var(renamed(c, "s")),
                LinExpr::var(renamed(c, "t")),
            ));
        }
    }
}

/// The loops common to both accesses (shared prefix of enclosing loops).
fn common_loops<'a>(a: &'a Access, b: &Access) -> Vec<&'a LoopCtx> {
    a.loops
        .iter()
        .zip(&b.loops)
        .take_while(|(x, y)| x.id == y.id)
        .map(|(x, _)| x)
        .collect()
}

/// Does a dependence with `a` as source (earlier) and `b` as sink (later)
/// exist under the given carrier?
///
/// `Sat::Empty` means certainly not; `NonEmpty` certainly yes; `Unknown` is
/// treated by callers as "maybe" (conservative).
pub fn dep_exists(info: &AccessInfo, a: &Access, b: &Access, carrier: Carrier) -> Sat {
    let common = common_loops(a, b);
    let mut sys = System::new();
    domain_constraints(a, "s", &mut sys);
    domain_constraints(b, "t", &mut sys);
    subscript_constraints(a, b, &mut sys);
            incarnation_constraints(info, a, b, &mut sys);
    match carrier {
        Carrier::Loop(l) => {
            let Some(d) = common.iter().position(|c| c.id == l) else {
                return Sat::Empty; // not a common loop: cannot carry
            };
            // Stack-scope projection (Fig. 12(d)): the carrier must not
            // enclose the tensor's VarDef.
            if let Some(containing) = info.def_inside_loops.get(&a.var) {
                if containing.contains(&l) {
                    return Sat::Empty;
                }
            }
            for c in &common[..d] {
                sys.push(Constraint::eq(
                    LinExpr::var(renamed(c, "s")),
                    LinExpr::var(renamed(c, "t")),
                ));
            }
            sys.push(Constraint::lt(
                LinExpr::var(renamed(common[d], "s")),
                LinExpr::var(renamed(common[d], "t")),
            ));
        }
        Carrier::Independent => {
            if a.pos >= b.pos {
                return Sat::Empty; // source must be syntactically earlier
            }
            for c in &common {
                sys.push(Constraint::eq(
                    LinExpr::var(renamed(c, "s")),
                    LinExpr::var(renamed(c, "t")),
                ));
            }
        }
    }
    sys.satisfiable()
}

fn classify(a: AccessKind, b: AccessKind) -> DepKind {
    match (a.writes(), b.writes()) {
        (true, true) => DepKind::Waw,
        (true, false) => DepKind::Raw,
        (false, true) => DepKind::War,
        (false, false) => unreachable!("read-read pairs are filtered out"),
    }
}

/// Whether a pair of accesses can be ignored entirely: read-read pairs,
/// different tensors, and same-operator reduce-reduce pairs (Fig. 12(c)).
fn ignorable(a: &Access, b: &Access) -> bool {
    if a.var != b.var || (!a.kind.writes() && !b.kind.writes()) {
        return true;
    }
    matches!(
        (a.kind, b.kind),
        (AccessKind::Reduce(x), AccessKind::Reduce(y)) if x == y
    )
}

/// Whether the carrier loop asserts `no_deps` for this tensor.
fn no_deps_asserted(func: &Func, carrier: StmtId, var: &str) -> bool {
    match find::find_by_id(&func.body, carrier) {
        Some(Stmt {
            kind: StmtKind::For { property, .. },
            ..
        }) => property.no_deps.iter().any(|n| n == var),
        _ => false,
    }
}

/// Compute every dependence in the function: for each conflicting access
/// pair, each possible carrier loop plus the loop-independent case.
pub fn all_deps(func: &Func) -> Vec<FoundDep> {
    let info = collect_accesses(func);
    let mut out = Vec::new();
    for a in &info.accesses {
        for b in &info.accesses {
            if ignorable(a, b) {
                continue;
            }
            for c in common_loops(a, b) {
                if no_deps_asserted(func, c.id, &a.var) {
                    continue;
                }
                match dep_exists(&info, a, b, Carrier::Loop(c.id)) {
                    Sat::Empty => {}
                    sat => out.push(FoundDep {
                        kind: classify(a.kind, b.kind),
                        var: a.var.clone(),
                        source: a.stmt,
                        sink: b.stmt,
                        carrier: Carrier::Loop(c.id),
                        certain: sat == Sat::NonEmpty,
                    }),
                }
            }
            match dep_exists(&info, a, b, Carrier::Independent) {
                Sat::Empty => {}
                sat => out.push(FoundDep {
                    kind: classify(a.kind, b.kind),
                    var: a.var.clone(),
                    source: a.stmt,
                    sink: b.stmt,
                    carrier: Carrier::Independent,
                    certain: sat == Sat::NonEmpty,
                }),
            }
        }
    }
    out
}

/// Dependences carried by a specific loop.
pub fn loop_carried_deps(func: &Func, loop_id: StmtId) -> Vec<FoundDep> {
    let info = collect_accesses(func);
    let mut out = Vec::new();
    for a in &info.accesses {
        for b in &info.accesses {
            if ignorable(a, b) || no_deps_asserted(func, loop_id, &a.var) {
                continue;
            }
            match dep_exists(&info, a, b, Carrier::Loop(loop_id)) {
                Sat::Empty => {}
                sat => out.push(FoundDep {
                    kind: classify(a.kind, b.kind),
                    var: a.var.clone(),
                    source: a.stmt,
                    sink: b.stmt,
                    carrier: Carrier::Loop(loop_id),
                    certain: sat == Sat::NonEmpty,
                }),
            }
        }
    }
    out
}

/// Dependences that block parallelizing `loop_id` (paper Fig. 13).
///
/// Same-operator reduce pairs are already exempt (they lower to atomics or
/// parallel reductions); everything else carried by the loop blocks it.
pub fn parallelize_blockers(func: &Func, loop_id: StmtId) -> Vec<FoundDep> {
    loop_carried_deps(func, loop_id)
}

/// Reduce statements under `loop_id` whose target element may be updated by
/// more than one iteration of the loop — these must become atomic updates or
/// parallel reductions when the loop is parallelized (Fig. 13(d)/(e)).
pub fn carried_reductions(func: &Func, loop_id: StmtId) -> Vec<StmtId> {
    let info = collect_accesses(func);
    let mut out = Vec::new();
    for a in &info.accesses {
        let AccessKind::Reduce(op_a) = a.kind else {
            continue;
        };
        for b in &info.accesses {
            let AccessKind::Reduce(op_b) = b.kind else {
                continue;
            };
            if a.var != b.var || op_a != op_b {
                continue;
            }
            if dep_exists(&info, a, b, Carrier::Loop(loop_id)) != Sat::Empty {
                if !out.contains(&a.stmt) {
                    out.push(a.stmt);
                }
                if !out.contains(&b.stmt) {
                    out.push(b.stmt);
                }
            }
        }
    }
    out
}

/// Ids of all statements in the subtree rooted at `root`.
pub fn subtree_ids(root: &Stmt) -> HashSet<StmtId> {
    let mut set = HashSet::new();
    root.walk(&mut |s| {
        set.insert(s.id);
    });
    set
}

/// Legality of fusing consecutive loops `l1` (first) and `l2` (second).
///
/// After fusion, `l2`'s body at normalized iteration `j` runs *before*
/// `l1`'s body at any normalized iteration `i > j`; fusion is illegal iff a
/// conflict exists between such instances (paper's `dot_max` example,
/// Fig. 8→10). Returns a [`Violation`] (reason + blocking dependences) when
/// illegal.
pub fn fuse_illegal(func: &Func, l1: StmtId, l2: StmtId) -> Option<Violation> {
    let info = collect_accesses(func);
    let (Some(loop1), Some(loop2)) = (
        find::find_by_id(&func.body, l1),
        find::find_by_id(&func.body, l2),
    ) else {
        return Some(Violation::structural("loop not found"));
    };
    let ids1 = subtree_ids(loop1);
    let ids2 = subtree_ids(loop2);
    let (StmtKind::For { begin: b1, .. }, StmtKind::For { begin: b2, .. }) =
        (&loop1.kind, &loop2.kind)
    else {
        return Some(Violation::structural("not loops"));
    };
    for a in info.accesses.iter().filter(|x| ids1.contains(&x.stmt)) {
        for b in info.accesses.iter().filter(|x| ids2.contains(&x.stmt)) {
            if ignorable(a, b) {
                continue;
            }
            let mut sys = System::new();
            domain_constraints(a, "s", &mut sys);
            domain_constraints(b, "t", &mut sys);
            subscript_constraints(a, b, &mut sys);
            incarnation_constraints(&info, a, b, &mut sys);
            // Common outer loops (everything above l1/l2) run in lockstep.
            for c in common_loops(a, b) {
                sys.push(Constraint::eq(
                    LinExpr::var(renamed(c, "s")),
                    LinExpr::var(renamed(c, "t")),
                ));
            }
            // Normalized iterations: (i - begin1) vs (j - begin2).
            let la = a.loops.iter().find(|l| l.id == l1).map(|l| renamed(l, "s"));
            let lb = b.loops.iter().find(|l| l.id == l2).map(|l| renamed(l, "t"));
            let (Some(ia), Some(jb)) = (la, lb) else {
                continue;
            };
            let (Some(lb1), Some(lb2)) = (
                to_linexpr_mapped(b1, &side_map(&a.loops, "s")),
                to_linexpr_mapped(b2, &side_map(&b.loops, "t")),
            ) else {
                return Some(Violation::structural("non-affine loop begin"));
            };
            // j_norm < i_norm would be reversed by fusion.
            sys.push(Constraint::lt(
                LinExpr::var(jb) - lb2,
                LinExpr::var(ia) - lb1,
            ));
            let sat = sys.satisfiable();
            if sat != Sat::Empty {
                return Some(Violation {
                    reason: format!(
                        "fusing would reverse a dependence on `{}` ({} -> {})",
                        a.var, a.stmt, b.stmt
                    ),
                    deps: vec![FoundDep {
                        kind: classify(a.kind, b.kind),
                        var: a.var.clone(),
                        source: a.stmt,
                        sink: b.stmt,
                        carrier: Carrier::Loop(l1),
                        certain: sat == Sat::NonEmpty,
                    }],
                });
            }
        }
    }
    None
}

/// Legality of fissioning loop `loop_id` into the statements selected by
/// `in_first` followed by the rest.
///
/// After fission every first-part iteration runs before any second-part
/// iteration; illegal iff a second-part instance at iteration `i` conflicts
/// with a first-part instance at iteration `j > i`.
pub fn fission_illegal(
    func: &Func,
    loop_id: StmtId,
    in_first: &dyn Fn(StmtId) -> bool,
) -> Option<Violation> {
    let info = collect_accesses(func);
    let Some(the_loop) = find::find_by_id(&func.body, loop_id) else {
        return Some(Violation::structural("loop not found"));
    };
    let ids = subtree_ids(the_loop);
    for a in info.accesses.iter().filter(|x| ids.contains(&x.stmt)) {
        for b in info.accesses.iter().filter(|x| ids.contains(&x.stmt)) {
            // a in the second part (earlier in original), b in the first part.
            if in_first(a.stmt) || !in_first(b.stmt) || ignorable(a, b) {
                continue;
            }
            let mut sys = System::new();
            domain_constraints(a, "s", &mut sys);
            domain_constraints(b, "t", &mut sys);
            subscript_constraints(a, b, &mut sys);
            incarnation_constraints(&info, a, b, &mut sys);
            let common = common_loops(a, b);
            let Some(d) = common.iter().position(|c| c.id == loop_id) else {
                continue;
            };
            for c in &common[..d] {
                sys.push(Constraint::eq(
                    LinExpr::var(renamed(c, "s")),
                    LinExpr::var(renamed(c, "t")),
                ));
            }
            // second-part at i strictly before first-part at j (i < j) in the
            // original order — reversed after fission.
            sys.push(Constraint::lt(
                LinExpr::var(renamed(common[d], "s")),
                LinExpr::var(renamed(common[d], "t")),
            ));
            let sat = sys.satisfiable();
            if sat != Sat::Empty {
                return Some(Violation {
                    reason: format!(
                        "fission would reverse a dependence on `{}` ({} -> {})",
                        a.var, a.stmt, b.stmt
                    ),
                    deps: vec![FoundDep {
                        kind: classify(a.kind, b.kind),
                        var: a.var.clone(),
                        source: a.stmt,
                        sink: b.stmt,
                        carrier: Carrier::Loop(loop_id),
                        certain: sat == Sat::NonEmpty,
                    }],
                });
            }
        }
    }
    None
}

/// Legality of swapping two consecutive statements `s1` (first) and `s2`.
///
/// Swapping only permutes the two bodies *within* one iteration of the
/// common loops, so it is illegal iff they conflict at equal iterations.
pub fn swap_illegal(func: &Func, s1: StmtId, s2: StmtId) -> Option<Violation> {
    let info = collect_accesses(func);
    let (Some(st1), Some(st2)) = (
        find::find_by_id(&func.body, s1),
        find::find_by_id(&func.body, s2),
    ) else {
        return Some(Violation::structural("statement not found"));
    };
    let ids1 = subtree_ids(st1);
    let ids2 = subtree_ids(st2);
    for a in info.accesses.iter().filter(|x| ids1.contains(&x.stmt)) {
        for b in info.accesses.iter().filter(|x| ids2.contains(&x.stmt)) {
            if ignorable(a, b) {
                continue;
            }
            let mut sys = System::new();
            domain_constraints(a, "s", &mut sys);
            domain_constraints(b, "t", &mut sys);
            subscript_constraints(a, b, &mut sys);
            incarnation_constraints(&info, a, b, &mut sys);
            for c in common_loops(a, b) {
                sys.push(Constraint::eq(
                    LinExpr::var(renamed(c, "s")),
                    LinExpr::var(renamed(c, "t")),
                ));
            }
            let sat = sys.satisfiable();
            if sat != Sat::Empty {
                return Some(Violation {
                    reason: format!(
                        "statements conflict on `{}` within one iteration",
                        a.var
                    ),
                    deps: vec![FoundDep {
                        kind: classify(a.kind, b.kind),
                        var: a.var.clone(),
                        source: a.stmt,
                        sink: b.stmt,
                        carrier: Carrier::Independent,
                        certain: sat == Sat::NonEmpty,
                    }],
                });
            }
        }
    }
    None
}

/// Legality of permuting a perfect loop nest.
///
/// `old_order` lists the nest's loop ids outermost-first as written;
/// `new_order` is the desired nesting. Illegal iff some conflicting pair of
/// instances executes in one order under the old nesting and the opposite
/// order under the new nesting.
pub fn reorder_illegal(
    func: &Func,
    old_order: &[StmtId],
    new_order: &[StmtId],
) -> Option<Violation> {
    let info = collect_accesses(func);
    for a in &info.accesses {
        for b in &info.accesses {
            if ignorable(a, b) {
                continue;
            }
            // Both accesses must be inside the whole nest.
            let pos_of = |acc: &Access, id: StmtId| acc.loops.iter().position(|l| l.id == id);
            if old_order.iter().any(|id| pos_of(a, *id).is_none())
                || old_order.iter().any(|id| pos_of(b, *id).is_none())
            {
                continue;
            }
            let common = common_loops(a, b);
            // Execution-order comparison sequences: the common loops, in old
            // and in new nesting order.
            let old_seq: Vec<&LoopCtx> = common.clone();
            let mut new_seq: Vec<&LoopCtx> = Vec::new();
            for c in &common {
                if !old_order.contains(&c.id) {
                    new_seq.push(c);
                }
            }
            // Insert the permuted nest loops at the position of the first
            // nest loop in the common order.
            let first_nest_pos = common
                .iter()
                .position(|c| old_order.contains(&c.id))
                .unwrap_or(common.len());
            let mut new_seq2: Vec<&LoopCtx> = common
                .iter()
                .filter(|c| !old_order.contains(&c.id))
                .copied()
                .collect();
            let nest_loops: Vec<&LoopCtx> = new_order
                .iter()
                .filter_map(|id| common.iter().find(|c| c.id == *id).copied())
                .collect();
            for (k, l) in nest_loops.into_iter().enumerate() {
                new_seq2.insert(first_nest_pos + k, l);
            }
            new_seq = new_seq2;

            // Violation: a before b under old_seq at depth d, while b
            // strictly before a under new_seq at depth e.
            for d in 0..=old_seq.len() {
                for e in 0..new_seq.len() {
                    if d == old_seq.len() && a.pos >= b.pos {
                        continue; // "a before b at equal iters" needs pos order
                    }
                    let mut sys = System::new();
                    domain_constraints(a, "s", &mut sys);
                    domain_constraints(b, "t", &mut sys);
                    subscript_constraints(a, b, &mut sys);
            incarnation_constraints(&info, a, b, &mut sys);
                    for c in &old_seq[..d.min(old_seq.len())] {
                        sys.push(Constraint::eq(
                            LinExpr::var(renamed(c, "s")),
                            LinExpr::var(renamed(c, "t")),
                        ));
                    }
                    if d < old_seq.len() {
                        sys.push(Constraint::lt(
                            LinExpr::var(renamed(old_seq[d], "s")),
                            LinExpr::var(renamed(old_seq[d], "t")),
                        ));
                    }
                    for c in &new_seq[..e] {
                        sys.push(Constraint::eq(
                            LinExpr::var(renamed(c, "s")),
                            LinExpr::var(renamed(c, "t")),
                        ));
                    }
                    // b strictly before a in the new order.
                    sys.push(Constraint::lt(
                        LinExpr::var(renamed(new_seq[e], "t")),
                        LinExpr::var(renamed(new_seq[e], "s")),
                    ));
                    let sat = sys.satisfiable();
                    if sat != Sat::Empty {
                        return Some(Violation {
                            reason: format!(
                                "reorder would reverse a dependence on `{}` ({} -> {})",
                                a.var, a.stmt, b.stmt
                            ),
                            deps: vec![FoundDep {
                                kind: classify(a.kind, b.kind),
                                var: a.var.clone(),
                                source: a.stmt,
                                sink: b.stmt,
                                carrier: Carrier::Loop(new_seq[e].id),
                                certain: sat == Sat::NonEmpty,
                            }],
                        });
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::idx;
    use ft_ir::DataType;

    fn fnc(body: Stmt) -> Func {
        Func::new("f")
            .param("a", [var("N"), var("M")], DataType::F32, AccessType::InOut)
            .param("b", [var("N"), var("M")], DataType::F32, AccessType::InOut)
            .param("idx", [var("N")], DataType::I32, AccessType::Input)
            .size_param("N")
            .size_param("M")
            .size_param("K")
            .body(body)
    }

    fn i() -> Expr {
        var("i")
    }
    fn j() -> Expr {
        var("j")
    }

    #[test]
    fn fig12a_reorder_legal() {
        // for i: for j: a[i, j] = b[i, j] + 1  — no deps at all.
        let body = for_(
            "i",
            0,
            var("N"),
            for_("j", 0, var("M"), store("a", [i(), j()], load("b", [i(), j()]) + 1.0f64)),
        );
        let f = fnc(body);
        let li = find::find_loop(&f.body, "i").unwrap().id;
        let lj = find::find_loop(&f.body, "j").unwrap().id;
        assert!(reorder_illegal(&f, &[li, lj], &[lj, li]).is_none());
        assert!(all_deps(&f).is_empty());
    }

    #[test]
    fn fig12b_reorder_illegal() {
        // for i: for j: a = a * b[i, j] + 1 on a scalar (as Store, not reduce).
        let f = Func::new("f")
            .param("a", Vec::<Expr>::new(), DataType::F32, AccessType::InOut)
            .param("b", [var("N"), var("M")], DataType::F32, AccessType::Input)
            .size_param("N")
            .size_param("M")
            .body(for_(
                "i",
                0,
                var("N"),
                for_(
                    "j",
                    0,
                    var("M"),
                    store(
                        "a",
                        scalar(),
                        load("a", scalar()) * load("b", [i(), j()]) + 1.0f64,
                    ),
                ),
            ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        let lj = find::find_loop(&f.body, "j").unwrap().id;
        assert!(reorder_illegal(&f, &[li, lj], &[lj, li]).is_some());
    }

    #[test]
    fn fig12c_reduction_can_reorder() {
        // for i: for j: a += b[i, j]  (ReduceTo: WAW exempt).
        let f = Func::new("f")
            .param("a", Vec::<Expr>::new(), DataType::F32, AccessType::InOut)
            .param("b", [var("N"), var("M")], DataType::F32, AccessType::Input)
            .size_param("N")
            .size_param("M")
            .body(for_(
                "i",
                0,
                var("N"),
                for_(
                    "j",
                    0,
                    var("M"),
                    reduce("a", scalar(), ReduceOp::Add, load("b", [i(), j()])),
                ),
            ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        let lj = find::find_loop(&f.body, "j").unwrap().id;
        assert!(reorder_illegal(&f, &[li, lj], &[lj, li]).is_none());
    }

    #[test]
    fn fig12d_stack_scoped_temp_can_reorder() {
        // for i: for j: t = var(K); for k: t[k] = a[i,j,k]; b[i,j,k] = t[k]
        let f = Func::new("f")
            .param(
                "a",
                [var("N"), var("M"), var("K")],
                DataType::F32,
                AccessType::Input,
            )
            .param(
                "b",
                [var("N"), var("M"), var("K")],
                DataType::F32,
                AccessType::Output,
            )
            .size_param("N")
            .size_param("M")
            .size_param("K")
            .body(for_(
                "i",
                0,
                var("N"),
                for_(
                    "j",
                    0,
                    var("M"),
                    var_def(
                        "t",
                        [var("K")],
                        DataType::F32,
                        MemType::CpuStack,
                        for_(
                            "k",
                            0,
                            var("K"),
                            block([
                                store("t", [var("k")], load("a", [i(), j(), var("k")])),
                                store("b", [i(), j(), var("k")], load("t", [var("k")])),
                            ]),
                        ),
                    ),
                ),
            ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        let lj = find::find_loop(&f.body, "j").unwrap().id;
        // WAW on t across i/j iterations is projected away by stack scoping.
        assert!(reorder_illegal(&f, &[li, lj], &[lj, li]).is_none());
        // And neither loop carries a dependence (so both parallelize).
        assert!(parallelize_blockers(&f, li).is_empty());
        assert!(parallelize_blockers(&f, lj).is_empty());
    }

    #[test]
    fn fig13a_parallelizable() {
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            store("a", idx![i(), 0], load("b", idx![i(), 0]) + 1.0f64),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f, li).is_empty());
    }

    #[test]
    fn fig13b_cross_iteration_dep_blocks() {
        // for i: a[0,0] = a[0,0] * 2 + b[i,0]
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            store(
                "a",
                idx![0, 0],
                load("a", idx![0, 0]) * 2.0f64 + load("b", idx![i(), 0]),
            ),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(!parallelize_blockers(&f, li).is_empty());
    }

    #[test]
    fn fig13d_same_index_reduction_detected() {
        // for i: acc[] += b[i, 0]
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            reduce("a", idx![0, 0], ReduceOp::Add, load("b", idx![i(), 0])),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f, li).is_empty()); // exempt...
        assert_eq!(carried_reductions(&f, li).len(), 1); // ...but must combine
    }

    #[test]
    fn fig13e_random_access_reduction_detected() {
        // for i: a[idx[i], 0] += b[i, 0]  — indirect subscript.
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            reduce(
                "a",
                [Expr::cast(DataType::I64, load("idx", [i()])), 0.into()],
                ReduceOp::Add,
                load("b", idx![i(), 0]),
            ),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f, li).is_empty());
        assert_eq!(carried_reductions(&f, li).len(), 1);
    }

    #[test]
    fn disjoint_writes_by_index_do_not_conflict() {
        // for i: a[i,0] = 1; a[i,1] = 2 — distinct columns, no dep at all.
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            block([
                store("a", idx![i(), 0], 1.0f64),
                store("a", idx![i(), 1], 2.0f64),
            ]),
        ));
        assert!(all_deps(&f).is_empty());
    }

    #[test]
    fn loop_independent_raw_found() {
        // for i: a[i,0] = b[i,0]; b2 reads a[i,0] later in same iteration.
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            block([
                store("a", idx![i(), 0], load("b", idx![i(), 0])),
                store("b", idx![i(), 1], load("a", idx![i(), 0])),
            ]),
        ));
        let deps = all_deps(&f);
        assert!(deps
            .iter()
            .any(|d| d.kind == DepKind::Raw && d.carrier == Carrier::Independent && d.var == "a"));
        // No loop-carried deps: i iterations are independent.
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f, li).is_empty());
    }

    #[test]
    fn carried_raw_found_with_distance_one() {
        // for i in 1..N: a[i,0] = a[i-1,0] — carried by i.
        let f = fnc(for_(
            "i",
            1,
            var("N"),
            store("a", idx![i(), 0], load("a", idx![i() - 1, 0])),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        let blockers = parallelize_blockers(&f, li);
        assert!(blockers.iter().any(|d| d.kind == DepKind::Raw));
    }

    #[test]
    fn guards_refine_dependence() {
        // for i in 0..N: if i < 1: a[0,0] = ...; only iteration 0 writes, so
        // no carried WAW.
        let f = fnc(for_(
            "i",
            0,
            var("N"),
            if_(i().lt(1), store("a", idx![0, 0], 1.0f64)),
        ));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f, li).is_empty());
    }

    #[test]
    fn paper_fuse_example_dot_max() {
        // Paper Fig. 8: loop k1 writes dot[k+w] and updates dot_max (reduce);
        // loop k2 reads dot_max. Fusing k2 into k1 is illegal (dot_max is
        // read before all updates are in).
        let f = Func::new("f")
            .param("dot", [var("W")], DataType::F32, AccessType::InOut)
            .param("dot_max", Vec::<Expr>::new(), DataType::F32, AccessType::InOut)
            .param("dot_norm", [var("W")], DataType::F32, AccessType::Output)
            .size_param("W")
            .body(block([
                for_(
                    "k1",
                    0,
                    var("W"),
                    reduce(
                        "dot_max",
                        scalar(),
                        ReduceOp::Max,
                        load("dot", [var("k1")]),
                    ),
                ),
                for_(
                    "k2",
                    0,
                    var("W"),
                    store(
                        "dot_norm",
                        [var("k2")],
                        load("dot", [var("k2")]) - load("dot_max", scalar()),
                    ),
                ),
            ]));
        let l1 = find::find_loop(&f.body, "k1").unwrap().id;
        let l2 = find::find_loop(&f.body, "k2").unwrap().id;
        assert!(fuse_illegal(&f, l1, l2).is_some());
    }

    #[test]
    fn fuse_legal_when_elementwise() {
        // for k1: a[k1,0] = b[k1,0]; for k2: b[k2,1] = a[k2,0] * 2
        // Dependence a[k1] -> a[k2] only at k2 == k1: fusion preserves it.
        let f = fnc(block([
            for_("k1", 0, var("N"), store("a", idx![var("k1"), 0], load("b", idx![var("k1"), 0]))),
            for_(
                "k2",
                0,
                var("N"),
                store("b", idx![var("k2"), 1], load("a", idx![var("k2"), 0]) * 2.0f64),
            ),
        ]));
        let l1 = find::find_loop(&f.body, "k1").unwrap().id;
        let l2 = find::find_loop(&f.body, "k2").unwrap().id;
        assert!(fuse_illegal(&f, l1, l2).is_none());
    }

    #[test]
    fn fuse_illegal_on_backward_read() {
        // for k1: a[k1,0] = ...; for k2: reads a[k2+1,0]: after fusion the
        // read at iteration k happens before the write at k+1. Illegal.
        let f = fnc(block([
            for_("k1", 0, var("N"), store("a", idx![var("k1"), 0], 1.0f64)),
            for_(
                "k2",
                0,
                var("N") - 1,
                store("b", idx![var("k2"), 0], load("a", idx![var("k2") + 1, 0])),
            ),
        ]));
        let l1 = find::find_loop(&f.body, "k1").unwrap().id;
        let l2 = find::find_loop(&f.body, "k2").unwrap().id;
        assert!(fuse_illegal(&f, l1, l2).is_some());
    }

    #[test]
    fn swap_legality() {
        // s1: a[i,0] = b[i,0]; s2: b[i,1] = 1 — disjoint; swap ok.
        let s1 = store("a", idx![i(), 0], load("b", idx![i(), 0]));
        let s2 = store("b", idx![i(), 1], 1.0f64);
        let (id1, id2) = (s1.id, s2.id);
        let f = fnc(for_("i", 0, var("N"), block([s1, s2])));
        assert!(swap_illegal(&f, id1, id2).is_none());
        // s1 writes a[i,0], s2 reads a[i,0]: conflict at same iteration.
        let s1 = store("a", idx![i(), 0], 1.0f64);
        let s2 = store("b", idx![i(), 0], load("a", idx![i(), 0]));
        let (id1, id2) = (s1.id, s2.id);
        let f = fnc(for_("i", 0, var("N"), block([s1, s2])));
        assert!(swap_illegal(&f, id1, id2).is_some());
    }

    #[test]
    fn fission_legality() {
        // for i { S1: t1[i,0] = b[i,0]; S2: a[i,0] = t1[i,0] } — fission legal
        // (dep is loop-independent, same iteration).
        let s1 = store("a", idx![i(), 0], load("b", idx![i(), 0]));
        let s2 = store("b", idx![i(), 1], load("a", idx![i(), 0]));
        let id1 = s1.id;
        let f = fnc(for_("i", 0, var("N"), block([s1, s2])));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(fission_illegal(&f, li, &|id| id == id1).is_none());
        // for i { S1: a[i,0] = b[i-1,1]; S2: b[i,1] = 1 } — S1 at iter j reads
        // what S2 wrote at iter j-1: after fission all S1 run first and read
        // stale data. Illegal.
        let s1 = store("a", idx![i(), 0], load("b", idx![i() - 1, 1]));
        let s2 = store("b", idx![i(), 1], 1.0f64);
        let id1 = s1.id;
        let f = fnc(for_("i", 1, var("N"), block([s1, s2])));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(fission_illegal(&f, li, &|id| id == id1).is_some());
    }

    #[test]
    fn no_deps_assertion_suppresses() {
        // Indirect store a[idx[i],0] = 1 normally blocks parallelization
        // (unknown subscripts may collide); a no_deps assertion lifts it.
        let body = store(
            "a",
            [Expr::cast(DataType::I64, load("idx", [i()])), 0.into()],
            1.0f64,
        );
        let f = fnc(for_("i", 0, var("N"), body.clone()));
        let li = find::find_loop(&f.body, "i").unwrap().id;
        assert!(!parallelize_blockers(&f, li).is_empty());
        let mut prop = ForProperty::serial();
        prop.no_deps.push("a".to_string());
        let f2 = fnc(for_with("i", 0, var("N"), prop, body));
        let li2 = find::find_loop(&f2.body, "i").unwrap().id;
        assert!(parallelize_blockers(&f2, li2).is_empty());
    }
}
