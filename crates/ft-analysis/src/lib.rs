//! # ft-analysis — program analyses over the FreeTensor IR
//!
//! The holistic optimizations of FreeTensor all hinge on answering
//! *instance-of-statement* precision dependence questions (paper §4.2): not
//! "does statement S depend on statement T" but "does the instance of S in
//! iteration (i,j) depend on the instance of T in iteration (i',j')".
//!
//! This crate provides:
//!
//! * [`affine`] — extraction of affine ([`ft_poly::LinExpr`]) forms from IR
//!   expressions, with a conservative "unknown" fallback for non-affine
//!   subscripts such as the indirect `adj[i, j]` accesses of SubdivNet/GAT;
//! * [`bounds`] — symbolic and constant bound inference for expressions under
//!   a loop context (used by `cache` size inference, paper Fig. 14, and by
//!   the simplifier);
//! * [`access`] — collection of every tensor access together with its
//!   enclosing loops, branch conditions and syntactic position;
//! * [`deps`] — the dependence engine: RAW/WAR/WAW dependences classified as
//!   loop-carried (per carrier loop) or loop-independent, with the
//!   stack-scope projection of paper Fig. 12(d) and the commutative-reduction
//!   exemption of Fig. 12(c), plus the order-violation queries that back
//!   every legality check in `ft-schedule`;
//! * [`memplan`] — static memory planning: per-`VarDef` live ranges in
//!   program pre-order (loop-carried defs widened to their enclosing loop),
//!   interference, and deterministic best-fit arena packing, plus a
//!   write-before-read proof that lets engines elide the scope-entry
//!   zero-fill.

pub mod access;
pub mod affine;
pub mod bounds;
pub mod deps;
pub mod memplan;

pub use access::{collect_accesses, Access, AccessKind, LoopCtx};
pub use memplan::{eval_extent, MemPlan, PlanClass, PlanEntry, ARENA_ALIGN};
pub use affine::{cond_to_constraints, linexpr_to_expr, to_linexpr};
pub use bounds::{const_bounds, symbolic_bounds, BoundsCtx, SymBounds};
pub use deps::{
    all_deps, carried_reductions, fission_illegal, fuse_illegal, loop_carried_deps,
    parallelize_blockers, reorder_illegal, swap_illegal, Carrier, DepKind, FoundDep, Violation,
};
