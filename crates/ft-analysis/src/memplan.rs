//! Static memory planning: liveness-based arena layout for `VarDef`s.
//!
//! Every execution engine historically gave each `VarDef` a fresh zeroed
//! heap buffer per scope entry — per *loop iteration* for loop-local defs.
//! This module computes, ahead of execution, which defs can share storage
//! and which defs actually need their zero-fill:
//!
//! 1. **Live ranges.** One pre-order walk assigns every statement a
//!    sequence number. A def's live range is the union of its access
//!    points, each access widened to the span of every loop lying strictly
//!    *inside* the def's own scope (a value carried across iterations of
//!    such a loop is live for the whole loop). Loops enclosing the def
//!    itself cause no widening: the def is freshly scoped per iteration.
//! 2. **Interference.** Two defs interfere iff their live ranges overlap.
//! 3. **Packing.** Defs are grouped into storage *classes* (an equivalence
//!    relation, so typed buffer pools can realize the sharing as easily as
//!    a byte arena can): best-fit by decreasing size, with a first-fit
//!    retry in program order when that heuristic ever packs worse than the
//!    naive stack discipline. Class `k` occupies one 64-byte-aligned slice
//!    of the arena, sized by its largest member.
//! 4. **Zero-fill elision.** A def whose first action on every execution
//!    path that touches it is a full overwrite (a scalar store, or a
//!    perfect unconditional loop nest covering the whole shape) does not
//!    need its buffer zeroed on scope entry — `must_zero == false`.
//!    Anything conditional, partial, or reducing keeps the zero-fill.
//!
//! The resulting [`MemPlan`] is deterministic for a given `(func, sizes)`
//! pair ([`MemPlan::plan_hash`] is stable across processes) and carries
//! three comparable byte totals: `naive_alloc_bytes` (allocation churn of
//! the fresh-buffer-per-entry regime, loop trip counts folded in when
//! constant), `naive_peak_bytes` (stack-discipline peak of that regime)
//! and `planned_peak_bytes` (the arena size).

use ft_ir::{BinaryOp, DataType, Expr, Func, MemType, Stmt, StmtId, StmtKind};
use std::collections::HashMap;

/// Arena slices are aligned to the simulated cache line, matching the
/// engines' modeled address arithmetic.
pub const ARENA_ALIGN: u64 = 64;

fn align_up(b: u64) -> u64 {
    b.div_ceil(ARENA_ALIGN) * ARENA_ALIGN
}

/// Best-effort constant evaluation of a shape/bound expression under the
/// given size-parameter bindings. `None` marks the extent dynamic.
pub fn eval_extent(e: &Expr, sizes: &HashMap<String, i64>) -> Option<i64> {
    match e {
        Expr::IntConst(v) => Some(*v),
        Expr::Var(n) => sizes.get(n).copied(),
        Expr::Binary { op, a, b } => {
            let x = eval_extent(a, sizes)?;
            let y = eval_extent(b, sizes)?;
            Some(match op {
                BinaryOp::Add => x + y,
                BinaryOp::Sub => x - y,
                BinaryOp::Mul => x * y,
                BinaryOp::Div if y != 0 => x.div_euclid(y),
                BinaryOp::Mod if y != 0 => x.rem_euclid(y),
                BinaryOp::Min => x.min(y),
                BinaryOp::Max => x.max(y),
                _ => return None,
            })
        }
        Expr::Cast { a, .. } => eval_extent(a, sizes),
        _ => None,
    }
}

/// The planner's verdict on one `VarDef`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// IR name of the def (not necessarily unique — shadowing is legal).
    pub name: String,
    /// Pre-order def index. Engines that assign tensor slots params-first
    /// address this def at slot `n_params + def_idx`.
    pub def_idx: usize,
    /// Stable id of the defining statement.
    pub stmt: StmtId,
    /// Element type.
    pub dtype: DataType,
    /// Memory space.
    pub mtype: MemType,
    /// Element count, when every extent is constant under `sizes`.
    pub numel: Option<u64>,
    /// Byte size (`numel * dtype.size_bytes()`), when constant.
    pub bytes: Option<u64>,
    /// Storage class the def was packed into; `None` for dynamic defs,
    /// which fall back to ordinary allocation.
    pub class: Option<usize>,
    /// Byte offset of the def's class inside the arena.
    pub offset: Option<u64>,
    /// Whether scope entry must zero the buffer before the body runs.
    /// `false` is a proof that every element is written before it is read.
    pub must_zero: bool,
    /// Live range in pre-order sequence numbers (inclusive).
    pub first: u32,
    /// See [`PlanEntry::first`].
    pub last: u32,
}

/// One storage class of the packed arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanClass {
    /// Byte size of the class (its largest member).
    pub bytes: u64,
    /// Byte offset inside the arena (64-aligned).
    pub offset: u64,
}

/// A complete static memory plan for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct MemPlan {
    /// One entry per `VarDef`, in pre-order.
    pub entries: Vec<PlanEntry>,
    /// The packed storage classes; `planned_peak_bytes` is their total.
    pub classes: Vec<PlanClass>,
    /// Arena size: sum of aligned class sizes.
    pub planned_peak_bytes: u64,
    /// Peak bytes of the naive fresh-buffer-per-scope regime (stack
    /// discipline over def scopes, aligned like the arena).
    pub naive_peak_bytes: u64,
    /// Total allocation churn of the naive regime: every scope entry
    /// counted, loop trip counts folded in when constant (unknown trips
    /// count once, so this is a floor).
    pub naive_alloc_bytes: u64,
    /// Number of function params (engines map def `k` to slot
    /// `n_params + k`).
    pub n_params: usize,
}

/// One recorded access during the liveness walk.
struct AccessRec {
    def_idx: usize,
    seq: u32,
    /// Start seq of the outermost loop that is strictly inside the def's
    /// scope and encloses the access, when any.
    widen_loop: Option<u32>,
}

/// Walk state for the single liveness pass.
struct Walker<'a> {
    sizes: &'a HashMap<String, i64>,
    seq: u32,
    /// Innermost-first def bindings: name -> stack of def indices.
    scope: HashMap<String, Vec<usize>>,
    /// All defs in pre-order: (name, stmt, dtype, mtype, bytes, scope start).
    defs: Vec<(String, StmtId, DataType, MemType, Option<u64>, u32)>,
    /// Scope end seq per def, filled on exit.
    def_end: Vec<u32>,
    accesses: Vec<AccessRec>,
    /// Enclosing loops: (start seq, end seq filled later) indices into
    /// `loops`.
    loop_stack: Vec<usize>,
    loops: Vec<(u32, u32)>,
    /// Stack-discipline accounting for the naive numbers.
    live_now: u64,
    naive_peak: u64,
    naive_alloc: u64,
    /// Product of constant trip counts of enclosing loops (unknown = 1).
    trip_factor: u64,
}

impl Walker<'_> {
    fn note_access(&mut self, name: &str) {
        let Some(stack) = self.scope.get(name) else {
            return; // parameter or size var, not a planned def
        };
        let Some(&def_idx) = stack.last() else {
            return;
        };
        let def_start = self.defs[def_idx].5;
        // Outermost enclosing loop opened after the def's scope began.
        let widen_loop = self
            .loop_stack
            .iter()
            .map(|&li| self.loops[li].0)
            .find(|&ls| ls > def_start);
        self.accesses.push(AccessRec {
            def_idx,
            seq: self.seq,
            widen_loop,
        });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Load { var, indices } => {
                self.note_access(var);
                for i in indices {
                    self.expr(i);
                }
            }
            Expr::Unary { a, .. } => self.expr(a),
            Expr::Binary { a, b, .. } => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond);
                self.expr(then);
                self.expr(otherwise);
            }
            Expr::Cast { a, .. } => self.expr(a),
            _ => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.seq += 1;
        let my_seq = self.seq;
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Block(v) => {
                for st in v {
                    self.stmt(st);
                }
            }
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                body,
                ..
            } => {
                for e in shape {
                    self.expr(e);
                }
                let numel: Option<u64> = shape
                    .iter()
                    .map(|e| eval_extent(e, self.sizes))
                    .try_fold(1u64, |a, b| b.map(|v| a * v.max(0) as u64));
                let bytes = numel.map(|n| n * dtype.size_bytes() as u64);
                let def_idx = self.defs.len();
                self.defs
                    .push((name.clone(), s.id, *dtype, *mtype, bytes, my_seq));
                self.def_end.push(0);
                let b = bytes.unwrap_or(0);
                self.live_now += align_up(b);
                self.naive_peak = self.naive_peak.max(self.live_now);
                self.naive_alloc = self.naive_alloc.saturating_add(
                    align_up(b).saturating_mul(self.trip_factor),
                );
                self.scope.entry(name.clone()).or_default().push(def_idx);
                self.stmt(body);
                self.scope.get_mut(name).expect("pushed above").pop();
                self.live_now -= align_up(b);
                self.def_end[def_idx] = self.seq;
            }
            StmtKind::For {
                begin, end, body, ..
            } => {
                self.expr(begin);
                self.expr(end);
                let li = self.loops.len();
                self.loops.push((my_seq, 0));
                self.loop_stack.push(li);
                let trips = match (
                    eval_extent(begin, self.sizes),
                    eval_extent(end, self.sizes),
                ) {
                    (Some(b), Some(e)) => (e - b).max(0) as u64,
                    _ => 1,
                };
                let saved = self.trip_factor;
                self.trip_factor = self.trip_factor.saturating_mul(trips.max(1));
                self.stmt(body);
                self.trip_factor = saved;
                self.loop_stack.pop();
                self.loops[li].1 = self.seq;
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond);
                self.stmt(then);
                if let Some(o) = otherwise {
                    self.stmt(o);
                }
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                self.note_access(var);
                for i in indices {
                    self.expr(i);
                }
                self.expr(value);
            }
            StmtKind::ReduceTo {
                var,
                indices,
                value,
                ..
            } => {
                self.note_access(var);
                for i in indices {
                    self.expr(i);
                }
                self.expr(value);
            }
            StmtKind::LibCall {
                inputs, outputs, ..
            } => {
                for n in inputs.iter().chain(outputs) {
                    self.note_access(n);
                }
            }
        }
    }
}

/// Verdict of the write-before-read scan.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ZeroScan {
    /// Statement does not touch the def; keep scanning.
    Skip,
    /// First touch is a proven full overwrite: zero-fill elidable.
    Covered,
    /// First touch may read (or only partially write): must zero.
    Needs,
}

fn expr_reads(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Load { var, indices } => {
            var == name || indices.iter().any(|i| expr_reads(i, name))
        }
        Expr::Unary { a, .. } => expr_reads(a, name),
        Expr::Binary { a, b, .. } => expr_reads(a, name) || expr_reads(b, name),
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            expr_reads(cond, name) || expr_reads(then, name) || expr_reads(otherwise, name)
        }
        Expr::Cast { a, .. } => expr_reads(a, name),
        _ => false,
    }
}

fn stmt_touches(s: &Stmt, name: &str) -> bool {
    let mut hit = false;
    s.walk(&mut |st| match &st.kind {
        StmtKind::VarDef {
            name: n, shape, ..
        } => {
            // A shadowing def rebinds the name for its subtree; its own
            // extents still evaluate in the outer scope. `walk` cannot skip
            // subtrees, so shadowed regions are handled conservatively:
            // treat any occurrence as a touch (only affects precision).
            if n == name {
                hit = true;
            }
            if shape.iter().any(|e| expr_reads(e, name)) {
                hit = true;
            }
        }
        StmtKind::Store {
            var,
            indices,
            value,
        } => {
            hit |= var == name
                || indices.iter().any(|e| expr_reads(e, name))
                || expr_reads(value, name);
        }
        StmtKind::ReduceTo {
            var,
            indices,
            value,
            ..
        } => {
            hit |= var == name
                || indices.iter().any(|e| expr_reads(e, name))
                || expr_reads(value, name);
        }
        StmtKind::For { begin, end, .. } => {
            hit |= expr_reads(begin, name) || expr_reads(end, name);
        }
        StmtKind::If { cond, .. } => {
            hit |= expr_reads(cond, name);
        }
        StmtKind::LibCall {
            inputs, outputs, ..
        } => {
            hit |= inputs.iter().any(|n| n == name) || outputs.iter().any(|n| n == name);
        }
        _ => {}
    });
    hit
}

/// Does `s` start with a perfect unconditional loop nest that stores to
/// every element of `name` (extents syntactically equal to `shape`, indices
/// the nest iterators in order) without reading it?
fn is_full_overwrite_nest(s: &Stmt, name: &str, shape: &[Expr]) -> bool {
    let mut cur = s;
    let mut iters: Vec<&str> = Vec::new();
    for extent in shape {
        let StmtKind::For {
            iter,
            begin,
            end,
            body,
            ..
        } = &cur.kind
        else {
            return false;
        };
        if !matches!(begin, Expr::IntConst(0)) || end != extent {
            return false;
        }
        iters.push(iter);
        // Perfect nest: descend through trivial single-statement blocks.
        let mut b: &Stmt = body;
        while let StmtKind::Block(v) = &b.kind {
            let non_empty: Vec<&Stmt> = v.iter().filter(|st| !st.is_empty()).collect();
            if non_empty.len() != 1 {
                return false;
            }
            b = non_empty[0];
        }
        cur = b;
    }
    let StmtKind::Store {
        var,
        indices,
        value,
    } = &cur.kind
    else {
        return false;
    };
    var == name
        && indices.len() == iters.len()
        && indices
            .iter()
            .zip(&iters)
            .all(|(e, it)| matches!(e, Expr::Var(v) if v == *it))
        && !expr_reads(value, name)
}

/// Scan the def body in execution order for the first statement touching
/// the def, deciding whether scope entry needs the zero-fill.
fn zero_scan(s: &Stmt, name: &str, shape: &[Expr]) -> ZeroScan {
    match &s.kind {
        StmtKind::Empty => ZeroScan::Skip,
        StmtKind::Block(v) => {
            for st in v {
                match zero_scan(st, name, shape) {
                    ZeroScan::Skip => continue,
                    d => return d,
                }
            }
            ZeroScan::Skip
        }
        StmtKind::VarDef {
            name: n,
            shape: sh,
            body,
            ..
        } => {
            if sh.iter().any(|e| expr_reads(e, name)) {
                return ZeroScan::Needs;
            }
            if n == name {
                // Shadowed for the whole subtree: our def is untouched.
                return ZeroScan::Skip;
            }
            zero_scan(body, name, shape)
        }
        StmtKind::Store {
            var,
            indices,
            value,
        } => {
            if indices.iter().any(|e| expr_reads(e, name)) || expr_reads(value, name) {
                return ZeroScan::Needs;
            }
            if var == name {
                // Only a scalar store covers the whole def in one shot.
                if shape.is_empty() {
                    ZeroScan::Covered
                } else {
                    ZeroScan::Needs
                }
            } else {
                ZeroScan::Skip
            }
        }
        StmtKind::ReduceTo {
            var,
            indices,
            value,
            ..
        } => {
            if var == name
                || indices.iter().any(|e| expr_reads(e, name))
                || expr_reads(value, name)
            {
                ZeroScan::Needs
            } else {
                ZeroScan::Skip
            }
        }
        StmtKind::For { begin, end, .. } => {
            if expr_reads(begin, name) || expr_reads(end, name) {
                return ZeroScan::Needs;
            }
            if is_full_overwrite_nest(s, name, shape) {
                return ZeroScan::Covered;
            }
            // A loop that touches the def some other way may execute zero
            // times or cover partially: conservative.
            if stmt_touches(s, name) {
                ZeroScan::Needs
            } else {
                ZeroScan::Skip
            }
        }
        StmtKind::If { cond, .. } => {
            if expr_reads(cond, name) {
                return ZeroScan::Needs;
            }
            // Conditional first write: either branch may be skipped.
            if stmt_touches(s, name) {
                ZeroScan::Needs
            } else {
                ZeroScan::Skip
            }
        }
        StmtKind::LibCall {
            inputs, outputs, ..
        } => {
            if inputs.iter().any(|n| n == name) || outputs.iter().any(|n| n == name) {
                // Library kernels accumulate (`matmul` does `C +=`).
                ZeroScan::Needs
            } else {
                ZeroScan::Skip
            }
        }
    }
}

fn overlaps(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Pack `order`ed defs into classes; returns (class id per def position in
/// `idxs`, class sizes). `best_fit` picks the tightest compatible class,
/// otherwise first-fit.
fn pack(
    order: &[usize],
    bytes: &HashMap<usize, u64>,
    ranges: &HashMap<usize, (u32, u32)>,
    best_fit: bool,
) -> (HashMap<usize, usize>, Vec<u64>) {
    let mut class_of: HashMap<usize, usize> = HashMap::new();
    let mut class_bytes: Vec<u64> = Vec::new();
    let mut class_members: Vec<Vec<usize>> = Vec::new();
    for &d in order {
        let db = bytes[&d];
        let dr = ranges[&d];
        let mut chosen: Option<usize> = None;
        for (ci, members) in class_members.iter().enumerate() {
            if members.iter().any(|&m| overlaps(ranges[&m], dr)) {
                continue;
            }
            match chosen {
                None => chosen = Some(ci),
                Some(prev) if best_fit => {
                    // Tightest class still holding the def; ties keep the
                    // lowest index for determinism.
                    let (pb, cb) = (class_bytes[prev], class_bytes[ci]);
                    let fit = |b: u64| if b >= db { b - db } else { u64::MAX - (db - b) };
                    if fit(cb) < fit(pb) {
                        chosen = Some(ci);
                    }
                }
                Some(_) => {} // first fit: keep the first
            }
        }
        let ci = match chosen {
            Some(ci) => ci,
            None => {
                class_bytes.push(0);
                class_members.push(Vec::new());
                class_bytes.len() - 1
            }
        };
        class_bytes[ci] = class_bytes[ci].max(db);
        class_members[ci].push(d);
        class_of.insert(d, ci);
    }
    (class_of, class_bytes)
}

impl MemPlan {
    /// Compute the plan for `func` under the given size-parameter bindings.
    /// Pass an empty map for a size-generic plan (only constant-shaped defs
    /// get packed; the rest fall back to dynamic allocation).
    pub fn plan(func: &Func, sizes: &HashMap<String, i64>) -> MemPlan {
        let mut w = Walker {
            sizes,
            seq: 0,
            scope: HashMap::new(),
            defs: Vec::new(),
            def_end: Vec::new(),
            accesses: Vec::new(),
            loop_stack: Vec::new(),
            loops: Vec::new(),
            live_now: 0,
            naive_peak: 0,
            naive_alloc: 0,
            trip_factor: 1,
        };
        w.stmt(&func.body);

        // Live ranges: union of widened access points; untouched defs get a
        // zero-length range at their scope start.
        let n_defs = w.defs.len();
        let mut ranges: HashMap<usize, (u32, u32)> = HashMap::new();
        for a in &w.accesses {
            let (lo, hi) = match a.widen_loop {
                Some(ls) => {
                    let &(s, e) = w
                        .loops
                        .iter()
                        .find(|&&(s, _)| s == ls)
                        .expect("loop recorded during walk");
                    (s, e)
                }
                None => (a.seq, a.seq),
            };
            ranges
                .entry(a.def_idx)
                .and_modify(|r| {
                    r.0 = r.0.min(lo);
                    r.1 = r.1.max(hi);
                })
                .or_insert((lo, hi));
        }
        for (d, def) in w.defs.iter().enumerate() {
            ranges.entry(d).or_insert((def.5, def.5));
        }

        // must_zero: re-find each def statement by id for the body scan.
        let mut must_zero: Vec<bool> = vec![true; n_defs];
        {
            let mut k = 0usize;
            func.body.walk(&mut |s| {
                if let StmtKind::VarDef {
                    name, shape, body, ..
                } = &s.kind
                {
                    debug_assert_eq!(w.defs[k].1, s.id, "walk order matches planner");
                    must_zero[k] =
                        zero_scan(body, name, shape) != ZeroScan::Covered;
                    k += 1;
                }
            });
        }

        // A def that needs the zero-fill is written at *scope entry* (that
        // is where executors zero it), so for interference purposes its
        // live range starts there — not at its first recorded access.
        // Without this, a class-mate whose range sits between the def's
        // scope entry and its first access would clobber the zeros.
        for (d, def) in w.defs.iter().enumerate() {
            if must_zero[d] {
                let r = ranges.get_mut(&d).expect("range seeded above");
                r.0 = r.0.min(def.5);
            }
        }

        // Pack the constant-shaped defs.
        let bytes: HashMap<usize, u64> = w
            .defs
            .iter()
            .enumerate()
            .filter_map(|(d, def)| def.4.map(|b| (d, b)))
            .collect();
        let mut by_size: Vec<usize> = bytes.keys().copied().collect();
        by_size.sort_by_key(|&d| (std::cmp::Reverse(bytes[&d]), d));
        let (mut class_of, mut class_bytes) = pack(&by_size, &bytes, &ranges, true);
        let planned = |cb: &[u64]| cb.iter().map(|&b| align_up(b)).sum::<u64>();
        if planned(&class_bytes) > w.naive_peak {
            // Pathological fragmentation: retry in program order, keep the
            // better packing.
            let mut by_start: Vec<usize> = bytes.keys().copied().collect();
            by_start.sort_by_key(|&d| (ranges[&d].0, d));
            let (c2, b2) = pack(&by_start, &bytes, &ranges, false);
            if planned(&b2) < planned(&class_bytes) {
                class_of = c2;
                class_bytes = b2;
            }
        }
        let mut classes: Vec<PlanClass> = Vec::with_capacity(class_bytes.len());
        let mut off = 0u64;
        for &b in &class_bytes {
            classes.push(PlanClass { bytes: b, offset: off });
            off += align_up(b);
        }
        let planned_peak_bytes = off;

        let entries = w
            .defs
            .iter()
            .enumerate()
            .map(|(d, (name, stmt, dtype, mtype, b, _))| {
                let class = class_of.get(&d).copied();
                PlanEntry {
                    name: name.clone(),
                    def_idx: d,
                    stmt: *stmt,
                    dtype: *dtype,
                    mtype: *mtype,
                    numel: b.map(|bb| bb / (dtype.size_bytes() as u64).max(1)),
                    bytes: *b,
                    class,
                    offset: class.map(|c| classes[c].offset),
                    must_zero: must_zero[d],
                    first: ranges[&d].0,
                    last: ranges[&d].1,
                }
            })
            .collect();

        MemPlan {
            entries,
            classes,
            planned_peak_bytes,
            naive_peak_bytes: w.naive_peak,
            naive_alloc_bytes: w.naive_alloc,
            n_params: func.params.len(),
        }
    }

    /// Deterministic FNV-1a hash of the whole plan — identical programs
    /// yield identical hashes across processes and runs.
    pub fn plan_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(&(self.n_params as u64).to_le_bytes());
        eat(&self.planned_peak_bytes.to_le_bytes());
        eat(&self.naive_peak_bytes.to_le_bytes());
        for e in &self.entries {
            eat(e.name.as_bytes());
            eat(&[0xff, e.must_zero as u8]);
            eat(&e.bytes.unwrap_or(u64::MAX).to_le_bytes());
            eat(&e.offset.unwrap_or(u64::MAX).to_le_bytes());
            eat(&(e.class.map_or(u64::MAX, |c| c as u64)).to_le_bytes());
            eat(&u64::from(e.first).to_le_bytes());
            eat(&u64::from(e.last).to_le_bytes());
        }
        h
    }

    /// Planned peak footprint of one *run* of `func` at these sizes: the
    /// arena peak plus every parameter buffer (inputs are caller-owned but
    /// pinned for the call; outputs/in-outs/caches are allocated by the
    /// engine). This is the number a serving admission controller budgets
    /// against — rejecting on `planned_peak_bytes` alone would undercount
    /// programs whose footprint is dominated by parameters. Unresolvable
    /// (symbolic, size not supplied) extents contribute zero, keeping the
    /// estimate a floor.
    pub fn run_peak_bytes(&self, func: &Func, sizes: &HashMap<String, i64>) -> u64 {
        let params: u64 = func
            .params
            .iter()
            .map(|p| {
                p.shape
                    .iter()
                    .map(|e| eval_extent(e, sizes).filter(|&v| v >= 0).unwrap_or(0) as u64)
                    .product::<u64>()
                    .saturating_mul(p.dtype.size_bytes() as u64)
            })
            .map(align_up)
            .sum();
        self.planned_peak_bytes.saturating_add(params)
    }

    /// The plan entry of the `k`-th pre-order `VarDef`.
    pub fn entry_for_def(&self, def_idx: usize) -> Option<&PlanEntry> {
        self.entries.get(def_idx)
    }

    /// Defs actually packed into the arena.
    pub fn n_planned(&self) -> usize {
        self.entries.iter().filter(|e| e.class.is_some()).count()
    }

    /// Defs whose zero-fill was proven elidable.
    pub fn n_zero_elided(&self) -> usize {
        self.entries.iter().filter(|e| !e.must_zero).count()
    }

    /// Compact JSON rendering of the plan (entries, classes, totals) for
    /// artifacts and repros.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"plan_hash\": \"{:016x}\",", self.plan_hash());
        let _ = writeln!(s, "  \"n_params\": {},", self.n_params);
        let _ = writeln!(s, "  \"planned_peak_bytes\": {},", self.planned_peak_bytes);
        let _ = writeln!(s, "  \"naive_peak_bytes\": {},", self.naive_peak_bytes);
        let _ = writeln!(s, "  \"naive_alloc_bytes\": {},", self.naive_alloc_bytes);
        let _ = writeln!(s, "  \"classes\": [");
        for (i, c) in self.classes.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"bytes\": {}, \"offset\": {}}}{}",
                c.bytes,
                c.offset,
                if i + 1 < self.classes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": {:?}, \"def_idx\": {}, \"bytes\": {}, \"class\": {}, \
                 \"offset\": {}, \"must_zero\": {}, \"first\": {}, \"last\": {}}}{}",
                e.name,
                e.def_idx,
                e.bytes.map_or("null".to_string(), |b| b.to_string()),
                e.class.map_or("null".to_string(), |c| c.to_string()),
                e.offset.map_or("null".to_string(), |o| o.to_string()),
                e.must_zero,
                e.first,
                e.last,
                if i + 1 < self.entries.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::AccessType;

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Two sequential loop-local defs never overlap: one class, planned
    /// peak well under the naive sum.
    #[test]
    fn disjoint_defs_share_one_class() {
        let body = block([
            var_def(
                "a",
                [256],
                DataType::F32,
                MemType::CpuHeap,
                store("a", [0], 1.0f32),
            ),
            var_def(
                "b",
                [256],
                DataType::F32,
                MemType::CpuHeap,
                store("b", [0], 2.0f32),
            ),
        ]);
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(body);
        let p = MemPlan::plan(&f, &HashMap::new());
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.entries[0].class, p.entries[1].class);
        assert_eq!(p.planned_peak_bytes, 1024);
        assert_eq!(p.naive_peak_bytes, 1024, "stack peak: one def at a time");
        assert_eq!(p.naive_alloc_bytes, 2048, "naive regime allocates both");
    }

    /// A def read after another def starts interferes with it.
    #[test]
    fn overlapping_defs_get_distinct_classes() {
        let inner = var_def(
            "b",
            [64],
            DataType::F32,
            MemType::CpuHeap,
            block([
                store("b", [0], load("a", [0])),
                store("a", [1], load("b", [0])),
            ]),
        );
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "a",
                [64],
                DataType::F32,
                MemType::CpuHeap,
                block([store("a", [0], 1.0f32), inner]),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        assert_ne!(p.entries[0].class, p.entries[1].class);
        assert_eq!(p.planned_peak_bytes, p.naive_peak_bytes);
    }

    /// Accesses inside a loop that sits inside the def's scope widen to the
    /// whole loop, so a def written in one iteration and read in the next
    /// conflicts with everything else used in that loop.
    #[test]
    fn loop_carried_def_widens_to_the_loop() {
        // acc lives across iterations of the loop (reduce), scratch is
        // loop-local. They must not share storage.
        let loop_body = block([
            var_def(
                "scratch",
                [8],
                DataType::F32,
                MemType::CpuHeap,
                store("acc", scalar(), load("scratch", [0])),
            ),
        ]);
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "acc",
                [] as [Expr; 0],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    store("acc", scalar(), 0.0f32),
                    for_("i", 0, 10, loop_body),
                    store("y", [0], load("acc", scalar())),
                ]),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        assert_ne!(
            p.entries[0].class, p.entries[1].class,
            "loop-carried acc must not share with loop-local scratch"
        );
    }

    /// Defs scoped inside a loop do not widen to the loop itself: each
    /// iteration gets a fresh incarnation.
    #[test]
    fn loop_local_def_does_not_widen_past_its_scope() {
        let f = Func::new("f")
            .param("y", [10], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                10,
                var_def(
                    "t",
                    [4],
                    DataType::F32,
                    MemType::CpuHeap,
                    store("y", [var("i")], load("t", [0])),
                ),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        let e = &p.entries[0];
        assert!(e.class.is_some());
        // Interval stays inside the loop body (no widening to the loop).
        assert!(e.first > 1, "{e:?}");
    }

    #[test]
    fn must_zero_analysis() {
        // (a) full-overwrite nest -> elidable.
        let full = var_def(
            "t",
            ft_ir::idx![var("n"), 4],
            DataType::F32,
            MemType::CpuHeap,
            block([
                for_(
                    "i",
                    0,
                    var("n"),
                    for_("j", 0, 4, store("t", [var("i"), var("j")], 1.0f32)),
                ),
                store("y", [0], load("t", [0, 0])),
            ]),
        );
        // (b) conditional first write -> must zero.
        let cond = var_def(
            "u",
            [4],
            DataType::F32,
            MemType::CpuHeap,
            block([
                if_(
                    load("y", [0]).gt(0.0f32),
                    store("u", [0], 1.0f32),
                ),
                store("y", [1], load("u", [0])),
            ]),
        );
        // (c) reduce-first scalar -> must zero.
        let red = var_def(
            "s",
            [] as [Expr; 0],
            DataType::F32,
            MemType::CpuHeap,
            block([
                reduce("s", scalar(), ReduceOp::Add, 1.0f32),
                store("y", [2], load("s", scalar())),
            ]),
        );
        // (d) scalar store-first -> elidable.
        let sc = var_def(
            "v",
            [] as [Expr; 0],
            DataType::F32,
            MemType::CpuHeap,
            block([
                store("v", scalar(), 3.0f32),
                store("y", [3], load("v", scalar())),
            ]),
        );
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(block([full, cond, red, sc]));
        let p = MemPlan::plan(&f, &sizes(&[("n", 3)]));
        assert!(!p.entries[0].must_zero, "full overwrite nest");
        assert!(p.entries[1].must_zero, "conditional first write");
        assert!(p.entries[2].must_zero, "reduce reads the identity");
        assert!(!p.entries[3].must_zero, "scalar store first");
        assert_eq!(p.n_zero_elided(), 2);
    }

    /// Partial overwrite (inner extent differs from the shape) keeps the
    /// zero-fill.
    #[test]
    fn partial_overwrite_still_zeros() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [8, 8],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    for_(
                        "i",
                        0,
                        8,
                        for_("j", 0, 4, store("t", [var("i"), var("j")], 1.0f32)),
                    ),
                    store("y", [0], load("t", [0, 7])),
                ]),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        assert!(p.entries[0].must_zero);
    }

    /// Same program, same sizes -> identical plan and hash; different sizes
    /// -> (generally) different hash.
    #[test]
    fn plan_is_deterministic() {
        let mk = || {
            Func::new("f")
                .param("y", [var("n")], DataType::F32, AccessType::Output)
                .size_param("n")
                .body(var_def(
                    "t",
                    [var("n")],
                    DataType::F32,
                    MemType::CpuHeap,
                    for_("i", 0, var("n"), store("t", [var("i")], 1.0f32)),
                ))
        };
        let s = sizes(&[("n", 128)]);
        let f = mk();
        assert_eq!(MemPlan::plan(&f, &s), MemPlan::plan(&f, &s));
        // A structurally identical rebuild gets fresh StmtIds but the same
        // hash: the hash covers layout, not node identity.
        let p1 = MemPlan::plan(&f, &s);
        let p2 = MemPlan::plan(&mk(), &s);
        assert_eq!(p1.plan_hash(), p2.plan_hash());
        let p3 = MemPlan::plan(&mk(), &sizes(&[("n", 256)]));
        assert_ne!(p1.plan_hash(), p3.plan_hash());
    }

    /// Dynamic extents under an empty size map stay unplanned.
    #[test]
    fn dynamic_defs_fall_back() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(var_def(
                "t",
                [var("n")],
                DataType::F32,
                MemType::CpuHeap,
                store("t", [0], 1.0f32),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        assert_eq!(p.entries[0].class, None);
        assert_eq!(p.entries[0].offset, None);
        assert_eq!(p.n_planned(), 0);
        // With the size bound the same def plans fine.
        let p2 = MemPlan::plan(&f, &sizes(&[("n", 64)]));
        assert_eq!(p2.n_planned(), 1);
        assert_eq!(p2.planned_peak_bytes, 256);
    }

    /// The packed arena never exceeds the naive stack-discipline peak.
    #[test]
    fn planned_never_exceeds_naive_peak() {
        // Chain of partially overlapping defs in one scope tree.
        let inner2 = var_def(
            "c",
            [96],
            DataType::F32,
            MemType::CpuHeap,
            store("c", [0], load("b", [0])),
        );
        let inner1 = var_def(
            "b",
            [32],
            DataType::F32,
            MemType::CpuHeap,
            block([store("b", [0], load("a", [0])), inner2]),
        );
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "a",
                [128],
                DataType::F32,
                MemType::CpuHeap,
                block([store("a", [0], 1.0f32), inner1]),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        assert!(
            p.planned_peak_bytes <= p.naive_peak_bytes,
            "planned {} > naive {}",
            p.planned_peak_bytes,
            p.naive_peak_bytes
        );
    }

    #[test]
    fn json_roundtrips_key_fields() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [16],
                DataType::F32,
                MemType::CpuHeap,
                store("t", [0], 1.0f32),
            ));
        let p = MemPlan::plan(&f, &HashMap::new());
        let j = p.to_json();
        assert!(j.contains("\"planned_peak_bytes\": 64"), "{j}");
        assert!(j.contains(&format!("{:016x}", p.plan_hash())), "{j}");
    }
}
