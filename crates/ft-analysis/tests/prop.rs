//! Property test for the dependence engine: if the analysis certifies a loop
//! free of carried dependences, executing its iterations in *reverse* order
//! must produce identical results. (The engine may be conservative — extra
//! dependences are allowed — but never unsound.)

use ft_analysis::parallelize_blockers;
use ft_ir::idx;
use ft_ir::prelude::*;
use ft_runtime::{Runtime, TensorVal};
use proptest::prelude::*;
use std::collections::HashMap;

const N: i64 = 12;

/// One guarded update `a[p*i + q] op= a[r*i + s] + 1` inside `for i in 0..N`,
/// with bounds guards so every access is valid.
fn program(p: i64, q: i64, r: i64, s: i64, use_reduce: bool) -> (Func, StmtId) {
    let widx = var("i") * p + q;
    let ridx = var("i") * r + s;
    let guard = widx
        .clone()
        .ge(0)
        .and(widx.clone().lt(N))
        .and(ridx.clone().ge(0))
        .and(ridx.clone().lt(N));
    let update = if use_reduce {
        reduce("a", idx![widx], ReduceOp::Add, load("a", idx![ridx]) + 1.0f64)
    } else {
        store("a", idx![widx], load("a", idx![ridx]) + 1.0f64)
    };
    let the_loop = for_("i", 0, N, if_(guard, update));
    let loop_id = the_loop.id;
    (
        Func::new("f")
            .param("a", [N], DataType::F64, AccessType::InOut)
            .body(the_loop),
        loop_id,
    )
}

/// The same program with the loop reversed (`i := N-1-i`).
fn reversed(func: &Func) -> Func {
    struct Rev;
    impl Mutator for Rev {
        fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
            if let StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } = s.kind
            {
                let flipped = ft_ir::mutate::subst_var_stmt(
                    *body,
                    &iter,
                    &(end.clone() - 1 - var(&iter) + begin.clone()),
                );
                Stmt {
                    id: s.id,
                    label: s.label,
                    kind: StmtKind::For {
                        iter,
                        begin,
                        end,
                        property,
                        body: Box::new(flipped),
                    },
                }
            } else {
                ft_ir::mutate::mutate_stmt_walk(self, s)
            }
        }
    }
    func.with_body(Rev.mutate_stmt(func.body.clone()))
}

fn run(func: &Func) -> Vec<f64> {
    let a = TensorVal::from_f64(&[N as usize], (0..N).map(|k| (k as f64 * 0.7).sin()).collect());
    let inputs: HashMap<String, TensorVal> = [("a".to_string(), a)].into_iter().collect();
    Runtime::new()
        .run(func, &inputs, &HashMap::new())
        .expect("runs")
        .output("a")
        .to_f64_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn no_carried_dep_implies_order_independence(
        p in 0i64..=2, q in -2i64..=2, r in 0i64..=2, s in -2i64..=2, red in proptest::bool::ANY
    ) {
        let (func, loop_id) = program(p, q, r, s, red);
        let blockers = parallelize_blockers(&func, loop_id);
        if blockers.is_empty() {
            let fwd = run(&func);
            let bwd = run(&reversed(&func));
            for (x, y) in fwd.iter().zip(&bwd) {
                prop_assert!(
                    (x - y).abs() < 1e-9,
                    "analysis certified independence but order matters: \
                     a[{p}*i+{q}] {} a[{r}*i+{s}]+1\n{func}",
                    if red { "+=" } else { "=" }
                );
            }
        }
    }

    /// The engine must flag the classic recurrence patterns (completeness
    /// spot-check so the soundness property above is not vacuous).
    #[test]
    fn unit_shift_recurrences_are_flagged(shift in 1i64..=2) {
        let (func, loop_id) = program(1, 0, 1, -shift, false);
        prop_assert!(!parallelize_blockers(&func, loop_id).is_empty());
    }
}
