//! Which intermediate values the backward pass needs, and whether each is
//! stored (taped) or recomputed — §5.2's selective materialization.

use crate::deriv::pullback;
use ft_ir::{Expr, Func, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// User-selectable materialization strategy (paper Fig. 18's lever).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TapePolicy {
    /// Materialize every needed intermediate — the paper's FT(-) baseline.
    All,
    /// Balance storing vs recomputing per tensor — the paper's FT(+).
    #[default]
    Selective,
    /// Recompute everything recomputable; error otherwise.
    None,
}

/// Per-tensor decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaterializeDecision {
    /// Snapshot the tensor into a tape in the forward pass.
    Store,
    /// Re-emit the defining statement(s) in the backward pass.
    Recompute,
}

/// Facts about one local tensor relevant to the decision.
#[derive(Debug, Clone, Default)]
pub struct TensorFacts {
    /// The backward pass reads this tensor's forward value.
    pub needed: bool,
    /// Every write is a plain `Store` (no reductions) — a necessary
    /// condition for re-emitting the definition in the backward pass
    /// (paper Fig. 15(c)).
    pub store_only: bool,
    /// Tensors whose *values* the defining stores read. Recomputation is
    /// possible when these are all function inputs or materialized tensors.
    pub dep_loads: HashSet<String>,
    /// Total operation count of the defining expressions (recompute cost).
    pub def_cost: usize,
    /// Number of extra tape dimensions (enclosing loops of the `VarDef`) —
    /// the symbolic version count of §5.1.
    pub version_dims: usize,
}

impl TensorFacts {
    /// Whether the definition reads only function inputs (strictly
    /// recomputable regardless of other decisions).
    pub fn recomputable_from(&self, available: &HashSet<String>) -> bool {
        self.store_only && self.dep_loads.iter().all(|d| available.contains(d))
    }
}

/// Collect facts about every local (VarDef) tensor of a function, for the
/// active-set `active` (tensors that carry gradients).
pub fn tensor_facts(func: &Func, active: &dyn Fn(&str) -> bool) -> HashMap<String, TensorFacts> {
    let mut facts: HashMap<String, TensorFacts> = HashMap::new();
    let param_names: HashSet<String> = func.params.iter().map(|p| p.name.clone()).collect();
    // Register locals with their version-dimension counts.
    fn register(
        s: &Stmt,
        depth: usize,
        facts: &mut HashMap<String, TensorFacts>,
    ) {
        match &s.kind {
            StmtKind::VarDef { name, body, .. } => {
                facts.entry(name.clone()).or_default().version_dims = depth;
                register(body, depth, facts);
            }
            StmtKind::For { body, .. } => register(body, depth + 1, facts),
            _ => {
                for c in s.children() {
                    register(c, depth, facts);
                }
            }
        }
    }
    register(&func.body, 0, &mut facts);

    // Needed: tensors whose values appear in some pullback contribution.
    let mut needed: HashSet<String> = HashSet::new();
    func.body.walk(&mut |s| {
        let value = match &s.kind {
            StmtKind::Store { value, .. } | StmtKind::ReduceTo { value, .. } => value,
            _ => return,
        };
        if let Ok(contribs) = pullback(value, &Expr::FloatConst(1.0), active) {
            for c in &contribs {
                for v in c.value.loaded_vars() {
                    needed.insert(v);
                }
            }
        }
    });
    for n in needed {
        if let Some(f) = facts.get_mut(&n) {
            f.needed = true;
        }
    }

    // Write-site structure: store-only? which tensors do definitions read?
    let _ = &param_names;
    struct Site {
        is_store: bool,
        cost: usize,
        loads: HashSet<String>,
    }
    let mut write_sites: HashMap<String, Vec<Site>> = HashMap::new();
    func.body.walk(&mut |s| match &s.kind {
        StmtKind::Store {
            var,
            value,
            indices,
        } => {
            let mut loads = value.loaded_vars();
            for i in indices {
                loads.extend(i.loaded_vars());
            }
            write_sites.entry(var.clone()).or_default().push(Site {
                is_store: true,
                cost: value.value_op_count(),
                loads,
            });
        }
        StmtKind::ReduceTo { var, value, .. } => {
            write_sites.entry(var.clone()).or_default().push(Site {
                is_store: false,
                cost: value.value_op_count(),
                loads: value.loaded_vars(),
            });
        }
        _ => {}
    });
    for (name, sites) in write_sites {
        if let Some(f) = facts.get_mut(&name) {
            f.store_only = !sites.is_empty() && sites.iter().all(|s| s.is_store);
            f.def_cost = sites.iter().map(|s| s.cost).sum();
            for s in &sites {
                f.dep_loads.extend(s.loads.iter().cloned());
            }
            // Self-references disqualify re-emission.
            if f.dep_loads.contains(&name) {
                f.store_only = false;
            }
        }
    }
    facts
}

/// Decide store-vs-recompute for every *needed* local tensor.
///
/// The selective balance (paper §5.2): recompute when the defining
/// expressions are cheap (`def_cost <= threshold`) — the materialization
/// overhead (one tape slot per version × element) then outweighs redoing the
/// arithmetic; store otherwise. A recomputed definition may read function
/// inputs *and* materialized (taped) tensors, so decisions are iterated to a
/// fixpoint: a candidate falls back to `Store` when one of its dependencies
/// ends up un-materialized and un-recomputable.
pub fn decide(
    facts: &HashMap<String, TensorFacts>,
    params: &HashSet<String>,
    policy: TapePolicy,
    threshold: usize,
) -> HashMap<String, MaterializeDecision> {
    let mut out: HashMap<String, MaterializeDecision> = HashMap::new();
    // Initial assignment.
    for (name, f) in facts {
        if !f.needed {
            continue;
        }
        let want_recompute = match policy {
            TapePolicy::All => false,
            TapePolicy::None => true,
            TapePolicy::Selective => f.store_only && f.def_cost <= threshold,
        };
        out.insert(
            name.clone(),
            if want_recompute && f.store_only {
                MaterializeDecision::Recompute
            } else {
                MaterializeDecision::Store
            },
        );
    }
    // Fixpoint: a recompute candidate's value-dependencies must be function
    // inputs or tensors available in the backward pass (taped tensors).
    loop {
        let mut changed = false;
        let available: HashSet<String> = params
            .iter()
            .cloned()
            .chain(
                out.iter()
                    .filter(|(_, d)| **d == MaterializeDecision::Store)
                    .map(|(n, _)| n.clone()),
            )
            .collect();
        for (name, d) in out.clone() {
            if d != MaterializeDecision::Recompute {
                continue;
            }
            let f = &facts[&name];
            let deps_ok = f.dep_loads.iter().all(|dep| available.contains(dep));
            if !deps_ok {
                out.insert(name, MaterializeDecision::Store);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    /// The paper's Fig. 15 program:
    /// for i: t = a[i]*b[i]; y[i] = t*c[i]; z[i] = t*d[i]
    fn fig15() -> Func {
        Func::new("fig15")
            .param("a", [var("n")], DataType::F32, AccessType::Input)
            .param("b", [var("n")], DataType::F32, AccessType::Input)
            .param("c", [var("n")], DataType::F32, AccessType::Input)
            .param("d", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .param("z", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(for_(
                "i",
                0,
                var("n"),
                var_def(
                    "t",
                    scalar(),
                    DataType::F32,
                    MemType::CpuStack,
                    block([
                        store(
                            "t",
                            scalar(),
                            load("a", [var("i")]) * load("b", [var("i")]),
                        ),
                        store(
                            "y",
                            [var("i")],
                            load("t", scalar()) * load("c", [var("i")]),
                        ),
                        store(
                            "z",
                            [var("i")],
                            load("t", scalar()) * load("d", [var("i")]),
                        ),
                    ]),
                ),
            ))
    }

    #[test]
    fn fig15_facts() {
        let f = fig15();
        let facts = tensor_facts(&f, &|_| true);
        let t = &facts["t"];
        assert!(t.needed, "t's value is used by the y and z pullbacks");
        assert!(t.store_only && t.dep_loads.iter().all(|d| ["a","b"].contains(&d.as_str())),
            "t = a[i]*b[i] reads only inputs");
        assert_eq!(t.version_dims, 1, "one enclosing loop = one version dim");
        assert_eq!(t.def_cost, 1, "t = a[i]*b[i] is one multiply");
    }

    #[test]
    fn policies_differ_on_fig15() {
        let f = fig15();
        let facts = tensor_facts(&f, &|_| true);
        let params: HashSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
        let all = decide(&facts, &params, TapePolicy::All, 16);
        let sel = decide(&facts, &params, TapePolicy::Selective, 16);
        assert_eq!(all["t"], MaterializeDecision::Store);
        assert_eq!(sel["t"], MaterializeDecision::Recompute);
        // An expensive definition flips selective to Store.
        let strict = decide(&facts, &params, TapePolicy::Selective, 0);
        assert_eq!(strict["t"], MaterializeDecision::Store);
    }

    #[test]
    fn selective_boundary_at_default_threshold() {
        // `def_cost == recompute_threshold` recomputes (the comparison is
        // `<=`); one op more stores. Pinned at the default threshold of 16
        // so a change to either the default or the comparison direction
        // fails this test.
        let default_threshold = crate::GradOptions::default().recompute_threshold;
        assert_eq!(default_threshold, 16);
        let params: HashSet<String> = ["x".to_string()].into();
        for (cost, expected) in [
            (default_threshold, MaterializeDecision::Recompute),
            (default_threshold + 1, MaterializeDecision::Store),
        ] {
            let facts: HashMap<String, TensorFacts> = [(
                "t".to_string(),
                TensorFacts {
                    needed: true,
                    store_only: true,
                    dep_loads: ["x".to_string()].into(),
                    def_cost: cost,
                    version_dims: 1,
                },
            )]
            .into();
            let d = decide(&facts, &params, TapePolicy::Selective, default_threshold);
            assert_eq!(d["t"], expected, "def_cost {cost}");
        }
    }

    #[test]
    fn reduce_written_tensors_are_not_recomputable() {
        let f = Func::new("f")
            .param("x", [8], DataType::F32, AccessType::Input)
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(var_def(
                "acc",
                scalar(),
                DataType::F32,
                MemType::CpuStack,
                block([
                    for_(
                        "i",
                        0,
                        8,
                        reduce("acc", scalar(), ReduceOp::Add, load("x", [var("i")])),
                    ),
                    for_(
                        "j",
                        0,
                        8,
                        store("y", [var("j")], load("acc", scalar()) * load("x", [var("j")])),
                    ),
                ]),
            ));
        let facts = tensor_facts(&f, &|_| true);
        assert!(facts["acc"].needed);
        assert!(!facts["acc"].store_only);
        let params: HashSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
        let sel = decide(&facts, &params, TapePolicy::Selective, 16);
        assert_eq!(sel["acc"], MaterializeDecision::Store);
    }
}
