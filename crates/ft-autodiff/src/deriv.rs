//! Pullback (vector–Jacobian) computation for scalar expressions.

use ft_ir::{BinaryOp, Expr, UnaryOp};

/// One gradient contribution produced by a pullback: `target[indices] +=
/// value`.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Tensor receiving the contribution (the *primal* name; the caller maps
    /// it to `name.grad`).
    pub target: String,
    /// Element indices (primal subscripts, unchanged).
    pub indices: Vec<Expr>,
    /// The contribution value.
    pub value: Expr,
}

/// Failure modes of differentiation.
#[derive(Debug, Clone, PartialEq)]
pub enum DerivError {
    /// An expression form with no derivative rule.
    Unsupported(String),
}

impl std::fmt::Display for DerivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerivError::Unsupported(m) => write!(f, "cannot differentiate: {m}"),
        }
    }
}

impl std::error::Error for DerivError {}

/// Compute the pullback of `expr` with adjoint `adj`: the list of
/// `target[indices] += value` contributions for every differentiable
/// [`Expr::Load`] leaf whose tensor is in `active` (tensors requiring
/// gradients). Loads inside *subscripts* are integer plumbing and receive no
/// gradient.
///
/// # Errors
///
/// [`DerivError::Unsupported`] for non-differentiable forms (e.g. `%` on the
/// value path or a non-constant exponent).
pub fn pullback(
    expr: &Expr,
    adj: &Expr,
    active: &dyn Fn(&str) -> bool,
) -> Result<Vec<Contribution>, DerivError> {
    let mut out = Vec::new();
    rec(expr, adj.clone(), active, &mut out)?;
    Ok(out)
}

fn rec(
    e: &Expr,
    adj: Expr,
    active: &dyn Fn(&str) -> bool,
    out: &mut Vec<Contribution>,
) -> Result<(), DerivError> {
    match e {
        Expr::IntConst(_) | Expr::FloatConst(_) | Expr::BoolConst(_) | Expr::Var(_) => Ok(()),
        Expr::Load { var, indices } => {
            if active(var) {
                out.push(Contribution {
                    target: var.clone(),
                    indices: indices.clone(),
                    value: adj,
                });
            }
            Ok(())
        }
        Expr::Unary { op, a } => {
            let da = match op {
                UnaryOp::Neg => -adj,
                UnaryOp::Abs => adj * Expr::unary(UnaryOp::Sign, (**a).clone()),
                UnaryOp::Sqrt => {
                    adj / (Expr::unary(UnaryOp::Sqrt, (**a).clone()) * 2.0f64)
                }
                UnaryOp::Exp => adj * Expr::unary(UnaryOp::Exp, (**a).clone()),
                UnaryOp::Ln => adj / (**a).clone(),
                UnaryOp::Sigmoid => {
                    let s = Expr::unary(UnaryOp::Sigmoid, (**a).clone());
                    adj * s.clone() * (Expr::FloatConst(1.0) - s)
                }
                UnaryOp::Tanh => {
                    let t = Expr::unary(UnaryOp::Tanh, (**a).clone());
                    adj * (Expr::FloatConst(1.0) - t.clone() * t)
                }
                UnaryOp::Sign => return Ok(()), // derivative zero a.e.
                UnaryOp::Not => {
                    return Err(DerivError::Unsupported(
                        "logical not on the value path".to_string(),
                    ))
                }
            };
            rec(a, da, active, out)
        }
        Expr::Binary { op, a, b } => match op {
            BinaryOp::Add => {
                rec(a, adj.clone(), active, out)?;
                rec(b, adj, active, out)
            }
            BinaryOp::Sub => {
                rec(a, adj.clone(), active, out)?;
                rec(b, -adj, active, out)
            }
            BinaryOp::Mul => {
                rec(a, adj.clone() * (**b).clone(), active, out)?;
                rec(b, adj * (**a).clone(), active, out)
            }
            BinaryOp::Div => {
                rec(a, adj.clone() / (**b).clone(), active, out)?;
                let db = -(adj * (**a).clone()) / ((**b).clone() * (**b).clone());
                rec(b, db, active, out)
            }
            BinaryOp::Min | BinaryOp::Max => {
                // d/da min(a,b) = [a <= b]; ties route to the first operand.
                let take_a = if *op == BinaryOp::Min {
                    (**a).clone().le((**b).clone())
                } else {
                    (**a).clone().ge((**b).clone())
                };
                let da = Expr::select(take_a.clone(), adj.clone(), Expr::FloatConst(0.0));
                let db = Expr::select(take_a, Expr::FloatConst(0.0), adj);
                rec(a, da, active, out)?;
                rec(b, db, active, out)
            }
            BinaryOp::Pow => {
                let Some(k) = b.as_int() else {
                    if let Expr::FloatConst(c) = **b {
                        let da = adj
                            * Expr::FloatConst(c)
                            * Expr::binary(
                                BinaryOp::Pow,
                                (**a).clone(),
                                Expr::FloatConst(c - 1.0),
                            );
                        return rec(a, da, active, out);
                    }
                    return Err(DerivError::Unsupported(
                        "pow with a non-constant exponent".to_string(),
                    ));
                };
                // `k - 1` overflows for k == i64::MIN — a degenerate exponent
                // a user program can still write; fail structurally instead
                // of panicking in debug builds.
                let Some(km1) = k.checked_sub(1) else {
                    return Err(DerivError::Unsupported(format!(
                        "pow exponent {k} underflows when reduced for the power rule"
                    )));
                };
                let da = adj
                    * Expr::IntConst(k)
                    * Expr::binary(BinaryOp::Pow, (**a).clone(), Expr::IntConst(km1));
                rec(a, da, active, out)
            }
            BinaryOp::Mod => Err(DerivError::Unsupported(
                "remainder on the value path".to_string(),
            )),
            // Comparisons / logic yield booleans: piecewise-constant, zero
            // derivative.
            _ => Ok(()),
        },
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            let dthen = Expr::select((**cond).clone(), adj.clone(), Expr::FloatConst(0.0));
            let delse = Expr::select((**cond).clone(), Expr::FloatConst(0.0), adj);
            rec(then, dthen, active, out)?;
            rec(otherwise, delse, active, out)
        }
        Expr::Cast { dtype, a } => {
            if dtype.is_float() {
                rec(a, adj, active, out)
            } else {
                Ok(()) // integer/bool casts truncate: zero derivative a.e.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    fn all_active(_: &str) -> bool {
        true
    }

    #[test]
    fn product_rule_fig15() {
        // t * c[i] with adjoint g: dt += g*c[i], dc[i] += g*t.
        let e = load("t", scalar()) * load("c", [var("i")]);
        let cs = pullback(&e, &var("g"), &all_active).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].target, "t");
        assert_eq!(cs[1].target, "c");
        assert_eq!(cs[0].value, var("g") * load("c", [var("i")]));
        assert_eq!(cs[1].value, var("g") * load("t", scalar()));
    }

    #[test]
    fn chain_through_unary() {
        let e = intrin::exp(load("x", [var("i")]));
        let cs = pullback(&e, &var("g"), &all_active).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].value, var("g") * intrin::exp(load("x", [var("i")])));
    }

    #[test]
    fn quotient_and_sub() {
        let e = load("a", scalar()) / load("b", scalar()) - load("c", scalar());
        let cs = pullback(&e, &Expr::FloatConst(1.0), &all_active).unwrap();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[2].target, "c");
        // dc gets -1.
        assert_eq!(cs[2].value, -Expr::FloatConst(1.0));
    }

    #[test]
    fn subscript_loads_get_no_gradient() {
        // a[idx[i]]: idx is integer plumbing.
        let e = Expr::Load {
            var: "a".to_string(),
            indices: vec![Expr::cast(DataType::I64, load("idx", [var("i")]))],
        };
        let cs = pullback(&e, &var("g"), &all_active).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].target, "a");
    }

    #[test]
    fn inactive_tensors_are_skipped() {
        let e = load("a", scalar()) * load("b", scalar());
        let cs = pullback(&e, &var("g"), &|n| n == "a").unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].target, "a");
    }

    #[test]
    fn select_routes_gradient() {
        let e = Expr::select(var("c").gt(0), load("a", scalar()), load("b", scalar()));
        let cs = pullback(&e, &var("g"), &all_active).unwrap();
        assert_eq!(cs.len(), 2);
        assert!(matches!(cs[0].value, Expr::Select { .. }));
    }

    #[test]
    fn unsupported_forms_error() {
        let e = load("a", scalar()).rem(2);
        assert!(pullback(&e, &var("g"), &all_active).is_err());
        let e = Expr::binary(BinaryOp::Pow, load("a", scalar()), load("b", scalar()));
        assert!(pullback(&e, &var("g"), &all_active).is_err());
    }

    #[test]
    fn pow_min_int_exponent_errors_instead_of_overflowing() {
        // `i64::MIN - 1` overflows; the power rule must reject the exponent
        // structurally rather than panic in debug builds.
        let e = Expr::binary(
            BinaryOp::Pow,
            load("a", scalar()),
            Expr::IntConst(i64::MIN),
        );
        let err = pullback(&e, &var("g"), &all_active).unwrap_err();
        assert!(
            matches!(&err, DerivError::Unsupported(m) if m.contains("underflow")),
            "{err}"
        );
    }

    #[test]
    fn min_max_subgradients() {
        let e = load("a", scalar()).max(load("b", scalar()));
        let cs = pullback(&e, &var("g"), &all_active).unwrap();
        assert_eq!(cs.len(), 2);
    }
}
