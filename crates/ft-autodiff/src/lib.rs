//! # ft-autodiff — fine-grained reverse-mode automatic differentiation
//!
//! Implements §5 of the FreeTensor paper: AD as an AST→AST transformation,
//! so the gradient program enjoys the same scheduling and simplification
//! passes as the original.
//!
//! [`grad`] produces a single function computing the forward outputs *and*
//! the parameter gradients:
//!
//! * inputs: the original inputs, plus one seed `y.grad` per output;
//! * outputs: the original outputs, plus one `x.grad` per (float) input.
//!
//! Two mechanisms from the paper are central:
//!
//! * **Symbolic tape versioning** (§5.1): an intermediate tensor overwritten
//!   inside loops is materialized into a tape with one extra dimension per
//!   enclosing loop — the version number is the loop iterator vector, known
//!   at compile time, so the taped program parallelizes like the original
//!   (no runtime version counter).
//! * **Selective intermediate tensor materialization** (§5.2): per tensor,
//!   the transform chooses between *storing* (tape) and *recomputing* in the
//!   backward pass, balancing tape footprint against recompute cost
//!   ([`TapePolicy::Selective`]; `All` and `None` reproduce the FT(-) / FT(+)
//!   ablation of the paper's Fig. 18).

pub mod analyze;
pub mod deriv;
pub mod transform;

pub use analyze::{MaterializeDecision, TapePolicy};
pub use transform::{grad, grad_with, AdError, AdFault, GradOptions};
