//! The gradient transformation: forward instrumentation + reversed pass.

use crate::analyze::{decide, tensor_facts, MaterializeDecision, TapePolicy};
use crate::deriv::{pullback, DerivError};
use ft_ir::mutate::{rename_var_stmt, subst_var_stmt, uniquify_def_names};
use ft_ir::{
    builder, AccessType, DataType, Expr, Func, MemType, Param, ReduceOp, Stmt, StmtKind,
};
use ft_passes::const_fold_expr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Options controlling the gradient transformation.
#[derive(Debug, Clone)]
pub struct GradOptions {
    /// Store-vs-recompute strategy (paper §5.2).
    pub policy: TapePolicy,
    /// Definition-cost threshold below which `Selective` recomputes.
    pub recompute_threshold: usize,
    /// Inputs to differentiate with respect to (default: every float input).
    pub wrt: Option<Vec<String>>,
    /// Deliberate miscompilation for harness validation (never set in
    /// production): see [`AdFault`].
    pub fault: Option<AdFault>,
}

impl Default for GradOptions {
    fn default() -> Self {
        GradOptions {
            policy: TapePolicy::Selective,
            recompute_threshold: 16,
            wrt: None,
            fault: None,
        }
    }
}

/// Injectable AD miscompilations, used to validate that the gradient
/// conformance harness actually catches bugs (the same role
/// `ScheduleOp::ParallelizeUnchecked` plays for the forward harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdFault {
    /// Backward tape reads ignore the symbolic version subscripts (§5.1):
    /// every iteration reads tape slot 0 instead of `iter − begin`, so any
    /// taped tensor under a loop yields wrong gradients.
    DropTapeVersionBump,
}

/// Failures of the gradient transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum AdError {
    /// An expression could not be differentiated.
    Deriv(String),
    /// The program shape is outside the supported fragment.
    Unsupported(String),
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::Deriv(m) => write!(f, "differentiation error: {m}"),
            AdError::Unsupported(m) => write!(f, "autodiff unsupported: {m}"),
        }
    }
}

impl std::error::Error for AdError {}

impl From<DerivError> for AdError {
    fn from(e: DerivError) -> Self {
        AdError::Deriv(e.to_string())
    }
}

fn grad_name(t: &str) -> String {
    format!("{t}.grad")
}

fn tape_name(t: &str) -> String {
    format!("{t}.tape")
}

/// Differentiate with default options. See [`grad_with`].
///
/// # Errors
///
/// See [`grad_with`].
pub fn grad(func: &Func) -> Result<Func, AdError> {
    grad_with(func, &GradOptions::default())
}

/// Build the gradient function of `func`: it computes the original outputs
/// *plus* `x.grad` for every requested input, given seed gradients `y.grad`
/// for every float output (passed in-out; they are consumed).
///
/// # Errors
///
/// [`AdError::Unsupported`] for in-out parameters, library calls, taped
/// tensors under non-affine/iterator-dependent loop bounds, and
/// multiplicative reductions; [`AdError::Deriv`] for non-differentiable
/// expressions on the value path.
pub fn grad_with(func: &Func, opts: &GradOptions) -> Result<Func, AdError> {
    // Everything below keys per-tensor bookkeeping (dtypes, write-site
    // facts, tape names) by VarDef name, so duplicate names — e.g. the same
    // parameter cached twice by the schedule, yielding two `Q.cache` defs —
    // would silently merge distinct tensors and corrupt tape indexing.
    // Alpha-rename them apart first.
    let func = &uniquify_def_names(func);
    for p in &func.params {
        if p.atype == AccessType::InOut {
            return Err(AdError::Unsupported(format!(
                "in-out parameter `{}` (separate inputs from outputs before AD)",
                p.name
            )));
        }
    }
    let mut has_libcall = false;
    func.body.walk(&mut |s| {
        has_libcall |= matches!(s.kind, StmtKind::LibCall { .. });
    });
    if has_libcall {
        return Err(AdError::Unsupported(
            "library calls cannot be differentiated; apply as_lib after AD".to_string(),
        ));
    }

    // Active tensors: requested inputs, float outputs, and float locals.
    let wrt: Vec<String> = match &opts.wrt {
        Some(w) => {
            // Each requested name must be a *float input* parameter: an
            // unknown name has nothing to differentiate, an output would
            // collide with its own `.grad` seed parameter, and an integer
            // input has no gradient.
            for x in w {
                let p = func.find_param(x).ok_or_else(|| {
                    AdError::Unsupported(format!("unknown wrt input `{x}`"))
                })?;
                if p.atype != AccessType::Input {
                    return Err(AdError::Unsupported(format!(
                        "wrt `{x}` is an {:?} parameter; only inputs can be \
                         differentiated with respect to",
                        p.atype
                    )));
                }
                if !p.dtype.is_float() {
                    return Err(AdError::Unsupported(format!(
                        "wrt `{x}` has integer dtype {:?}; gradients are \
                         defined for float inputs only",
                        p.dtype
                    )));
                }
            }
            w.clone()
        }
        None => func
            .params
            .iter()
            .filter(|p| p.atype == AccessType::Input && p.dtype.is_float())
            .map(|p| p.name.clone())
            .collect(),
    };
    let mut dtypes: HashMap<String, DataType> = HashMap::new();
    let mut mtypes: HashMap<String, MemType> = HashMap::new();
    for p in &func.params {
        dtypes.insert(p.name.clone(), p.dtype);
        mtypes.insert(p.name.clone(), p.mtype);
    }
    func.body.walk(&mut |s| {
        if let StmtKind::VarDef {
            name, dtype, mtype, ..
        } = &s.kind
        {
            dtypes.insert(name.clone(), *dtype);
            mtypes.insert(name.clone(), *mtype);
        }
    });
    let inputs_inactive: HashSet<String> = func
        .params
        .iter()
        .filter(|p| p.atype == AccessType::Input && !wrt.contains(&p.name))
        .map(|p| p.name.clone())
        .collect();
    let dtypes_for_active = dtypes.clone();
    let active = move |name: &str| -> bool {
        dtypes_for_active
            .get(name)
            .is_some_and(|d| d.is_float())
            && !inputs_inactive.contains(name)
    };

    let facts = tensor_facts(func, &active);
    let param_set: HashSet<String> = func.params.iter().map(|p| p.name.clone()).collect();
    let decisions = decide(&facts, &param_set, opts.policy, opts.recompute_threshold);
    if opts.policy == TapePolicy::None {
        if let Some((t, _)) = decisions
            .iter()
            .find(|(_, d)| **d == MaterializeDecision::Store)
        {
            return Err(AdError::Unsupported(format!(
                "`{t}` must be materialized but TapePolicy::None forbids it"
            )));
        }
    }

    let deep_tape = deep_tape_plan(func, &decisions)?;
    let mut tx = Grad {
        decisions: &decisions,
        dtypes: &dtypes,
        active: &active,
        tapes: Vec::new(),
        versions: HashMap::new(),
        stack: Vec::new(),
        deep_tape,
        shapes: HashMap::new(),
        tmp: 0,
        size_params: func.size_params.iter().cloned().collect(),
        fault: opts.fault,
    };
    let fwd = tx.instrument_forward(func.body.clone())?;
    let bwd = tx.backward(&func.body)?;

    // Assemble: tapes wrap [forward; backward].
    let mut body = Stmt::new(StmtKind::Block(vec![fwd, bwd]));
    for (name, dims, dtype) in tx.tapes.iter().rev() {
        body = builder::var_def(name.clone(), dims.clone(), *dtype, MemType::CpuHeap, body);
    }
    let mut out = Func::new(format!("{}.grad", func.name));
    out.size_params = func.size_params.clone();
    for p in &func.params {
        out.params.push(p.clone());
    }
    for p in &func.params {
        if p.atype == AccessType::Output && p.dtype.is_float() {
            out.params.push(Param {
                name: grad_name(&p.name),
                shape: p.shape.clone(),
                dtype: p.dtype,
                mtype: p.mtype,
                atype: AccessType::InOut,
            });
        }
    }
    for x in &wrt {
        let p = func
            .find_param(x)
            .ok_or_else(|| AdError::Unsupported(format!("unknown wrt input `{x}`")))?;
        out.params.push(Param {
            name: grad_name(x),
            shape: p.shape.clone(),
            dtype: p.dtype,
            mtype: p.mtype,
            atype: AccessType::Output,
        });
    }
    out.body = body;
    Ok(out)
}

struct Grad<'a> {
    decisions: &'a HashMap<String, MaterializeDecision>,
    dtypes: &'a HashMap<String, DataType>,
    active: &'a dyn Fn(&str) -> bool,
    /// Collected tape definitions: (name, dims, dtype).
    tapes: Vec<(String, Vec<Expr>, DataType)>,
    /// Version-dimension count per taped tensor (loops enclosing its
    /// `VarDef` in the forward pass — or enclosing its defining store, for
    /// tensors in `deep_tape`).
    versions: HashMap<String, usize>,
    /// Enclosing loops: (iter, begin, end).
    stack: Vec<(String, Expr, Expr)>,
    /// Stored tensors snapshotted after their defining store rather than at
    /// `VarDef`-scope exit (see [`deep_tape_plan`]).
    deep_tape: HashSet<String>,
    /// Declared shape of every `VarDef` seen so far (store-site snapshots
    /// need it after the `VarDef` arm has already given `shape` away).
    shapes: HashMap<String, Vec<Expr>>,
    tmp: usize,
    size_params: HashSet<String>,
    /// Injected miscompilation, if any (see [`AdFault`]).
    fault: Option<AdFault>,
}

/// Decide which `Store`-decided tensors need *per-store* taping.
///
/// The default tape snapshot runs at `VarDef`-scope exit, which records only
/// the value a location holds when the scope ends. That is correct as long
/// as no location is overwritten across iterations of a loop nested inside
/// the scope — formally, for every store deeper than the `VarDef`, each of
/// the intervening loop iterators must appear in the store's indices (each
/// iteration then writes a distinct location, e.g. `dot[k] = …` inside
/// `for k`). A scalar temporary reused across an inner loop (`d = …` inside
/// `for c` with `d` declared outside) violates this: the backward pass would
/// read the final iteration's value everywhere. Such tensors are instead
/// snapshotted immediately after their store, with one tape dimension per
/// loop enclosing the *store*.
///
/// # Errors
///
/// [`AdError::Unsupported`] when per-store taping is needed but unsound:
/// several store sites, a self-referencing store, or reads outside the
/// store's loop nest (those would need the previous iteration's value).
fn deep_tape_plan(
    func: &Func,
    decisions: &HashMap<String, MaterializeDecision>,
) -> Result<HashSet<String>, AdError> {
    #[derive(Default)]
    struct Info {
        /// Per store: (iterators between `VarDef` and store, free variables
        /// of the store indices, whether the value reads the tensor itself).
        stores: Vec<(Vec<String>, HashSet<String>, bool)>,
        reduces: usize,
        /// Iterator stacks (relative to the `VarDef`) of statements that
        /// read the tensor.
        load_sites: Vec<Vec<String>>,
    }
    fn record_loads(
        exprs: &[&Expr],
        stack: &[String],
        defs: &HashMap<String, usize>,
        info: &mut HashMap<String, Info>,
    ) {
        for e in exprs {
            for v in e.loaded_vars() {
                if let Some(&d) = defs.get(&v) {
                    info.entry(v).or_default().load_sites.push(stack[d..].to_vec());
                }
            }
        }
    }
    fn walk(
        s: &Stmt,
        stack: &mut Vec<String>,
        defs: &mut HashMap<String, usize>,
        info: &mut HashMap<String, Info>,
    ) {
        match &s.kind {
            StmtKind::VarDef { name, body, .. } => {
                let prev = defs.insert(name.clone(), stack.len());
                walk(body, stack, defs, info);
                match prev {
                    Some(d) => {
                        defs.insert(name.clone(), d);
                    }
                    None => {
                        defs.remove(name);
                    }
                }
            }
            StmtKind::For { iter, body, .. } => {
                stack.push(iter.clone());
                walk(body, stack, defs, info);
                stack.pop();
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                if let Some(&d) = defs.get(var) {
                    let mut idx_vars = HashSet::new();
                    for i in indices {
                        idx_vars.extend(i.free_vars());
                    }
                    let self_load = value.loaded_vars().contains(var);
                    info.entry(var.clone()).or_default().stores.push((
                        stack[d..].to_vec(),
                        idx_vars,
                        self_load,
                    ));
                }
                let exprs: Vec<&Expr> =
                    std::iter::once(value).chain(indices.iter()).collect();
                record_loads(&exprs, stack, defs, info);
            }
            StmtKind::ReduceTo {
                var,
                indices,
                value,
                ..
            } => {
                if defs.contains_key(var) {
                    info.entry(var.clone()).or_default().reduces += 1;
                }
                let exprs: Vec<&Expr> =
                    std::iter::once(value).chain(indices.iter()).collect();
                record_loads(&exprs, stack, defs, info);
            }
            _ => {
                for c in s.children() {
                    walk(c, stack, defs, info);
                }
            }
        }
    }
    let mut info: HashMap<String, Info> = HashMap::new();
    walk(
        &func.body,
        &mut Vec::new(),
        &mut HashMap::new(),
        &mut info,
    );
    let mut deep = HashSet::new();
    for (t, i) in info {
        if decisions.get(&t) != Some(&MaterializeDecision::Store) {
            continue;
        }
        // Accumulators keep the end-of-scope snapshot (backward reads want
        // the final reduced value), as do tensors whose deeper stores each
        // cover the intervening iterators with their indices.
        if i.reduces > 0 || i.stores.iter().all(|(rel, _, _)| rel.is_empty()) {
            continue;
        }
        let covered = i
            .stores
            .iter()
            .all(|(rel, idx_vars, _)| rel.iter().all(|it| idx_vars.contains(it)));
        if covered {
            continue;
        }
        if i.stores.len() != 1 {
            return Err(AdError::Unsupported(format!(
                "`{t}` is overwritten across an inner loop from {} store sites; \
                 per-store taping supports exactly one",
                i.stores.len()
            )));
        }
        let (rel, _, self_load) = &i.stores[0];
        if *self_load {
            return Err(AdError::Unsupported(format!(
                "`{t}` is overwritten across an inner loop by a self-referencing \
                 store; the previous version cannot be taped"
            )));
        }
        if let Some(bad) = i.load_sites.iter().find(|ls| !ls.starts_with(rel)) {
            return Err(AdError::Unsupported(format!(
                "`{t}` is overwritten inside loop nest {rel:?} but read under \
                 {bad:?}; reads outside the storing nest would see a stale tape"
            )));
        }
        deep.insert(t);
    }
    Ok(deep)
}

impl Grad<'_> {
    fn stored(&self, t: &str) -> bool {
        self.decisions.get(t) == Some(&MaterializeDecision::Store)
    }

    fn recomputed(&self, t: &str) -> bool {
        self.decisions.get(t) == Some(&MaterializeDecision::Recompute)
    }

    fn check_tapeable_bounds(&self, t: &str) -> Result<(), AdError> {
        for (_, b, e) in &self.stack {
            for expr in [b, e] {
                for v in expr.free_vars() {
                    if !self.size_params.contains(&v) {
                        return Err(AdError::Unsupported(format!(
                            "tape for `{t}` needs loop bounds over size parameters only \
                             (found iterator `{v}`)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Forward pass: original statements plus end-of-scope tape snapshots
    /// for every tensor decided `Store`.
    fn instrument_forward(&mut self, s: Stmt) -> Result<Stmt, AdError> {
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Block(v) => StmtKind::Block(
                v.into_iter()
                    .map(|st| self.instrument_forward(st))
                    .collect::<Result<_, _>>()?,
            ),
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body,
            } => {
                self.shapes.insert(name.clone(), shape.clone());
                let body = self.instrument_forward(*body)?;
                let body = if self.stored(&name) && !self.deep_tape.contains(&name) {
                    self.check_tapeable_bounds(&name)?;
                    // Tape dims: one per enclosing loop (symbolic versions,
                    // §5.1) plus the tensor's own dims.
                    let mut dims: Vec<Expr> = self
                        .stack
                        .iter()
                        .map(|(_, b, e)| const_fold_expr(e.clone() - b.clone()))
                        .collect();
                    dims.extend(shape.iter().cloned());
                    self.versions.insert(name.clone(), self.stack.len());
                    self.tapes.push((tape_name(&name), dims, dtype));
                    let snapshot = self.snapshot(&name, &shape);
                    Stmt::new(StmtKind::Block(vec![body, snapshot]))
                } else {
                    body
                };
                StmtKind::VarDef {
                    name,
                    shape,
                    dtype,
                    mtype,
                    atype,
                    body: Box::new(body),
                }
            }
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                self.stack
                    .push((iter.clone(), begin.clone(), end.clone()));
                let body = self.instrument_forward(*body)?;
                self.stack.pop();
                StmtKind::For {
                    iter,
                    begin,
                    end,
                    property,
                    body: Box::new(body),
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => StmtKind::If {
                cond,
                then: Box::new(self.instrument_forward(*then)?),
                otherwise: match otherwise {
                    Some(o) => Some(Box::new(self.instrument_forward(*o)?)),
                    None => None,
                },
            },
            StmtKind::Store {
                var,
                indices,
                value,
            } if self.deep_tape.contains(&var) => {
                // Per-store taping: snapshot right after the store, with one
                // version dimension per loop enclosing the *store* (see
                // `deep_tape_plan`). The tape declaration happens here too —
                // `deep_tape_plan` guarantees a single store site.
                self.check_tapeable_bounds(&var)?;
                let shape = self.shapes.get(&var).cloned().unwrap_or_default();
                let dtype = self.dtypes.get(&var).copied().unwrap_or(DataType::F64);
                let mut dims: Vec<Expr> = self
                    .stack
                    .iter()
                    .map(|(_, b, e)| const_fold_expr(e.clone() - b.clone()))
                    .collect();
                dims.extend(shape.iter().cloned());
                self.versions.insert(var.clone(), self.stack.len());
                self.tapes.push((tape_name(&var), dims, dtype));
                let snapshot = self.snapshot(&var, &shape);
                let store = Stmt {
                    id,
                    label,
                    kind: StmtKind::Store {
                        var,
                        indices,
                        value,
                    },
                };
                return Ok(Stmt::new(StmtKind::Block(vec![store, snapshot])));
            }
            k => k,
        };
        Ok(Stmt { id, label, kind })
    }

    /// Version subscripts for the current loop stack: `iter - begin` each.
    fn version_indices(&self) -> Vec<Expr> {
        self.stack
            .iter()
            .map(|(it, b, _)| const_fold_expr(builder::var(it) - b.clone()))
            .collect()
    }

    /// `for c…: t.tape[versions…, c…] = t[c…]`.
    fn snapshot(&mut self, t: &str, shape: &[Expr]) -> Stmt {
        let iters: Vec<String> = (0..shape.len()).map(|d| format!("{t}.s{d}")).collect();
        let elem: Vec<Expr> = iters.iter().map(builder::var).collect();
        let mut idx = self.version_indices();
        idx.extend(elem.iter().cloned());
        let mut stmt = builder::store(
            tape_name(t),
            idx,
            Expr::Load {
                var: t.to_string(),
                indices: elem,
            },
        );
        for (it, ext) in iters.iter().zip(shape).rev() {
            stmt = builder::for_(it, 0, ext.clone(), stmt);
        }
        stmt
    }

    /// Replace value-loads of `Store`-decided tensors with tape loads,
    /// indexed by the current (mirrored) loop iterators.
    fn tape_substitute(&self, e: &Expr) -> Expr {
        match e {
            Expr::Load { var, indices } if self.stored(var) => {
                let nvers = self.versions.get(var).copied().unwrap_or(0);
                let mut idx: Vec<Expr> = self.stack[..nvers]
                    .iter()
                    .map(|(it, b, _)| {
                        if self.fault == Some(AdFault::DropTapeVersionBump) {
                            Expr::IntConst(0)
                        } else {
                            const_fold_expr(builder::var(it) - b.clone())
                        }
                    })
                    .collect();
                idx.extend(indices.iter().map(|i| self.tape_substitute(i)));
                Expr::Load {
                    var: tape_name(var),
                    indices: idx,
                }
            }
            Expr::Load { var, indices } => Expr::Load {
                var: var.clone(),
                indices: indices.iter().map(|i| self.tape_substitute(i)).collect(),
            },
            Expr::Unary { op, a } => Expr::unary(*op, self.tape_substitute(a)),
            Expr::Binary { op, a, b } => {
                Expr::binary(*op, self.tape_substitute(a), self.tape_substitute(b))
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => Expr::select(
                self.tape_substitute(cond),
                self.tape_substitute(then),
                self.tape_substitute(otherwise),
            ),
            Expr::Cast { dtype, a } => Expr::cast(*dtype, self.tape_substitute(a)),
            other => other.clone(),
        }
    }

}

impl Grad<'_> {
    /// Build the reversed (backward) pass of a statement.
    fn backward(&mut self, s: &Stmt) -> Result<Stmt, AdError> {
        match &s.kind {
            StmtKind::Empty | StmtKind::LibCall { .. } => Ok(builder::empty()),
            StmtKind::Block(v) => {
                let mut out: Vec<Stmt> = Vec::new();
                // Re-emit recompute definitions first, in forward order
                // (paper Fig. 15(c)): any direct child that only stores into
                // recompute-decided tensors — a bare store or a whole loop
                // nest — is replayed, with loads of taped tensors redirected
                // to their tapes.
                for st in v {
                    let (writes, all_stores) = written_tensors(st);
                    if !writes.is_empty()
                        && all_stores
                        && writes.iter().all(|t| self.recomputed(t))
                    {
                        let replay = self.tape_substitute_stmt(refresh_ids(st));
                        out.push(replay);
                    }
                }
                for st in v.iter().rev() {
                    // The recompute definitions' own pullback still runs:
                    // it routes gradients onward to the inputs.
                    out.push(self.backward(st)?);
                }
                Ok(Stmt::new(StmtKind::Block(out)))
            }
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                body: def_body,
                ..
            } => {
                let body = self.backward(def_body)?;
                // The backward incarnation of the tensor (fresh, zeroed;
                // refilled by recomputation when needed).
                let bwd_name = format!("{name}.b");
                let body = rename_var_stmt(body, name, &bwd_name);
                let with_grad = if (self.active)(name) {
                    builder::var_def(
                        grad_name(name),
                        shape.clone(),
                        *dtype,
                        *mtype,
                        body,
                    )
                } else {
                    body
                };
                Ok(builder::var_def(
                    bwd_name,
                    shape.clone(),
                    *dtype,
                    *mtype,
                    with_grad,
                ))
            }
            StmtKind::For {
                iter,
                begin,
                end,
                body,
                ..
            } => {
                self.stack
                    .push((iter.clone(), begin.clone(), end.clone()));
                let inner = self.backward(body)?;
                self.stack.pop();
                // Iterate in reverse: i := begin + end - 1 - i.
                let reversed_iter = const_fold_expr(
                    begin.clone() + end.clone() - 1 - builder::var(iter),
                );
                let inner = subst_var_stmt(inner, iter, &reversed_iter);
                Ok(builder::for_(
                    iter.clone(),
                    begin.clone(),
                    end.clone(),
                    inner,
                ))
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                let t = self.backward(then)?;
                match otherwise {
                    Some(o) => {
                        let o = self.backward(o)?;
                        Ok(builder::if_else(cond.clone(), t, o))
                    }
                    None => Ok(builder::if_(cond.clone(), t)),
                }
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                if !(self.active)(var) {
                    return Ok(builder::empty());
                }
                // g = var.grad[idx]; var.grad[idx] = 0; then contributions
                // flow with adjoint g (handles self-referencing stores).
                self.tmp += 1;
                let g = format!("ad.g{}", self.tmp);
                let dtype = self.dtypes.get(var).copied().unwrap_or(DataType::F64);
                let mut stmts = vec![
                    builder::store(
                        &g,
                        builder::scalar(),
                        Expr::Load {
                            var: grad_name(var),
                            indices: indices.clone(),
                        },
                    ),
                    builder::store(grad_name(var), indices.clone(), ReduceOp::Add.identity(dtype)),
                ];
                let adj = Expr::Load {
                    var: g.clone(),
                    indices: vec![],
                };
                for c in pullback(value, &adj, self.active)? {
                    stmts.push(builder::reduce(
                        grad_name(&c.target),
                        c.indices.iter().map(|i| self.tape_substitute(i)),
                        ReduceOp::Add,
                        self.tape_substitute(&c.value),
                    ));
                }
                Ok(builder::var_def(
                    g,
                    Vec::<Expr>::new(),
                    dtype,
                    MemType::CpuStack,
                    Stmt::new(StmtKind::Block(stmts)),
                ))
            }
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                ..
            } => {
                if !(self.active)(var) {
                    return Ok(builder::empty());
                }
                match op {
                    ReduceOp::Add => {
                        let adj = Expr::Load {
                            var: grad_name(var),
                            indices: indices.clone(),
                        };
                        let mut stmts = Vec::new();
                        for c in pullback(value, &adj, self.active)? {
                            stmts.push(builder::reduce(
                                grad_name(&c.target),
                                c.indices.iter().map(|i| self.tape_substitute(i)),
                                ReduceOp::Add,
                                self.tape_substitute(&c.value),
                            ));
                        }
                        Ok(Stmt::new(StmtKind::Block(stmts)))
                    }
                    // Extremum reductions (numerical-stability shifts like
                    // softmax's running max) are treated as locally constant:
                    // the shift's gradient contributions cancel analytically,
                    // so the subgradient through the max is dropped.
                    ReduceOp::Max | ReduceOp::Min => Ok(builder::empty()),
                    ReduceOp::Mul => Err(AdError::Unsupported(
                        "multiplicative reductions".to_string(),
                    )),
                }
            }
        }
    }
}

/// The set of tensors written in a sub-tree, and whether every write is a
/// plain `Store`.
fn written_tensors(s: &Stmt) -> (HashSet<String>, bool) {
    let mut writes = HashSet::new();
    let mut all_stores = true;
    s.walk(&mut |st| match &st.kind {
        StmtKind::Store { var, .. } => {
            writes.insert(var.clone());
        }
        StmtKind::ReduceTo { var, .. } => {
            writes.insert(var.clone());
            all_stores = false;
        }
        StmtKind::LibCall { outputs, .. } => {
            writes.extend(outputs.iter().cloned());
            all_stores = false;
        }
        _ => {}
    });
    (writes, all_stores)
}

impl Grad<'_> {
    /// Apply [`Grad::tape_substitute`] to every expression in a statement
    /// (used when replaying recompute definitions in the backward pass).
    fn tape_substitute_stmt(&self, s: Stmt) -> Stmt {
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Block(v) => StmtKind::Block(
                v.into_iter().map(|st| self.tape_substitute_stmt(st)).collect(),
            ),
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body,
            } => StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body: Box::new(self.tape_substitute_stmt(*body)),
            },
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => StmtKind::For {
                iter,
                begin: self.tape_substitute(&begin),
                end: self.tape_substitute(&end),
                property,
                body: Box::new(self.tape_substitute_stmt(*body)),
            },
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => StmtKind::If {
                cond: self.tape_substitute(&cond),
                then: Box::new(self.tape_substitute_stmt(*then)),
                otherwise: otherwise.map(|o| Box::new(self.tape_substitute_stmt(*o))),
            },
            StmtKind::Store {
                var,
                indices,
                value,
            } => StmtKind::Store {
                var,
                indices: indices.iter().map(|i| self.tape_substitute(i)).collect(),
                value: self.tape_substitute(&value),
            },
            k => k,
        };
        Stmt { id, label, kind }
    }
}

/// Deep copy with fresh statement identities.
fn refresh_ids(s: &Stmt) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Block(v) => StmtKind::Block(v.iter().map(refresh_ids).collect()),
        StmtKind::VarDef {
            name,
            shape,
            dtype,
            mtype,
            atype,
            body,
        } => StmtKind::VarDef {
            name: name.clone(),
            shape: shape.clone(),
            dtype: *dtype,
            mtype: *mtype,
            atype: *atype,
            body: Box::new(refresh_ids(body)),
        },
        StmtKind::For {
            iter,
            begin,
            end,
            property,
            body,
        } => StmtKind::For {
            iter: iter.clone(),
            begin: begin.clone(),
            end: end.clone(),
            property: property.clone(),
            body: Box::new(refresh_ids(body)),
        },
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => StmtKind::If {
            cond: cond.clone(),
            then: Box::new(refresh_ids(then)),
            otherwise: otherwise.as_ref().map(|o| Box::new(refresh_ids(o))),
        },
        k => k.clone(),
    };
    Stmt::new(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    /// `y[i] = x[i] * x[i]` with a float input, an integer input (unused on
    /// the value path), and one output.
    fn square() -> Func {
        Func::new("square")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("k", [4], DataType::I32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                store(
                    "y",
                    [var("i")],
                    load("x", [var("i")]) * load("x", [var("i")]),
                ),
            ))
    }

    fn wrt(names: &[&str]) -> GradOptions {
        GradOptions {
            wrt: Some(names.iter().map(|s| s.to_string()).collect()),
            ..Default::default()
        }
    }

    #[test]
    fn wrt_unknown_name_is_rejected() {
        let e = grad_with(&square(), &wrt(&["nope"])).unwrap_err();
        assert!(
            matches!(&e, AdError::Unsupported(m) if m.contains("unknown wrt")),
            "{e}"
        );
    }

    #[test]
    fn wrt_output_param_is_rejected() {
        // Previously accepted: `y` in wrt produced two parameters both named
        // `y.grad` (the in-out seed and the requested output gradient).
        let e = grad_with(&square(), &wrt(&["y"])).unwrap_err();
        assert!(
            matches!(&e, AdError::Unsupported(m) if m.contains("Output")),
            "{e}"
        );
    }

    #[test]
    fn wrt_integer_input_is_rejected() {
        let e = grad_with(&square(), &wrt(&["k"])).unwrap_err();
        assert!(
            matches!(&e, AdError::Unsupported(m) if m.contains("integer dtype")),
            "{e}"
        );
    }

    #[test]
    fn valid_wrt_yields_unique_param_names() {
        let g = grad_with(&square(), &wrt(&["x"])).unwrap();
        let mut names: Vec<&str> = g.params.iter().map(|p| p.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate gradient parameter names");
    }

    #[test]
    fn injected_fault_misindexes_tape_reads() {
        // A taped scalar under a loop: `t = x[i]*x[i]; y[i] = t*t` with
        // TapePolicy::All. The faulty transform must read `t.tape[0]`
        // everywhere instead of `t.tape[i]`.
        let f = Func::new("f")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                var_def(
                    "t",
                    scalar(),
                    DataType::F32,
                    MemType::CpuStack,
                    block([
                        store("t", scalar(), load("x", [var("i")]) * load("x", [var("i")])),
                        store("y", [var("i")], load("t", scalar()) * load("t", scalar())),
                    ]),
                ),
            ));
        let sound = grad_with(
            &f,
            &GradOptions {
                policy: TapePolicy::All,
                ..Default::default()
            },
        )
        .unwrap();
        let faulty = grad_with(
            &f,
            &GradOptions {
                policy: TapePolicy::All,
                fault: Some(AdFault::DropTapeVersionBump),
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(
            format!("{sound}"),
            format!("{faulty}"),
            "the injected fault must change the emitted gradient program"
        );
    }
}
