//! Gradient checking: analytic gradients from the AD transform vs central
//! finite differences, across the paper's mechanism examples.

use ft_autodiff::{grad, grad_with, GradOptions, TapePolicy};
use ft_ir::idx;
use ft_ir::prelude::*;
use ft_runtime::{Runtime, TensorVal};
use std::collections::HashMap;

type Inputs = HashMap<String, TensorVal>;

fn tensor(shape: &[usize], seed: u64) -> TensorVal {
    // Deterministic pseudo-random values in [-1, 1].
    let n: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect();
    TensorVal::from_f64(shape, data)
}

/// Sum all elements of all float outputs (the scalar loss used for FD).
fn loss(func: &Func, inputs: &Inputs, sizes: &HashMap<String, i64>) -> f64 {
    let r = Runtime::new().run(func, inputs, sizes).expect("fwd runs");
    r.outputs
        .values()
        .flat_map(|t| t.to_f64_vec())
        .sum()
}

/// Compare AD gradients against central finite differences for each wrt
/// input of `func`, using the all-ones seed (loss = sum of outputs).
fn gradcheck(func: &Func, opts: &GradOptions, inputs: &Inputs, sizes: &[(&str, i64)], tol: f64) {
    let sizes: HashMap<String, i64> = sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    let g = grad_with(func, opts).expect("grad transform");
    // Seeds: ones for every output gradient.
    let mut grad_inputs = inputs.clone();
    let fwd = Runtime::new().run(func, inputs, &sizes).expect("fwd");
    for p in &func.params {
        if p.atype == AccessType::Output && p.dtype.is_float() {
            let shape = fwd.output(&p.name).shape().to_vec();
            let ones =
                TensorVal::from_f64(&shape, vec![1.0; shape.iter().product::<usize>().max(1)]);
            grad_inputs.insert(format!("{}.grad", p.name), ones);
        }
    }
    let res = Runtime::new().run(&g, &grad_inputs, &sizes).expect("grad runs");
    // Finite differences per input element.
    let eps = 1e-5;
    for p in &func.params {
        if p.atype != AccessType::Input || !p.dtype.is_float() {
            continue;
        }
        let analytic = res.output(&format!("{}.grad", p.name));
        let base = inputs[&p.name].clone();
        for i in 0..base.numel() {
            let mut plus = inputs.clone();
            let mut t = base.clone();
            t.set_flat(i, ft_runtime::Scalar::Float(base.get_flat(i).as_f64() + eps));
            plus.insert(p.name.clone(), t);
            let mut minus = inputs.clone();
            let mut t = base.clone();
            t.set_flat(i, ft_runtime::Scalar::Float(base.get_flat(i).as_f64() - eps));
            minus.insert(p.name.clone(), t);
            let fd = (loss(func, &plus, &sizes) - loss(func, &minus, &sizes)) / (2.0 * eps);
            let an = analytic.get_flat(i).as_f64();
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs()),
                "gradient mismatch for {}[{}]: analytic {an}, finite-diff {fd}\n{g}",
                p.name,
                i
            );
        }
    }
}

/// The paper's Fig. 15 program.
fn fig15(n: i64) -> Func {
    Func::new("fig15")
        .param("a", [n], DataType::F64, AccessType::Input)
        .param("b", [n], DataType::F64, AccessType::Input)
        .param("c", [n], DataType::F64, AccessType::Input)
        .param("d", [n], DataType::F64, AccessType::Input)
        .param("y", [n], DataType::F64, AccessType::Output)
        .param("z", [n], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            var_def(
                "t",
                scalar(),
                DataType::F64,
                MemType::CpuStack,
                block([
                    store("t", scalar(), load("a", [var("i")]) * load("b", [var("i")])),
                    store("y", [var("i")], load("t", scalar()) * load("c", [var("i")])),
                    store("z", [var("i")], load("t", scalar()) * load("d", [var("i")])),
                ]),
            ),
        ))
}

fn fig15_inputs(n: usize) -> Inputs {
    [
        ("a".to_string(), tensor(&[n], 1)),
        ("b".to_string(), tensor(&[n], 2)),
        ("c".to_string(), tensor(&[n], 3)),
        ("d".to_string(), tensor(&[n], 4)),
    ]
    .into_iter()
    .collect()
}

#[test]
fn fig15_gradcheck_selective() {
    gradcheck(&fig15(6), &GradOptions::default(), &fig15_inputs(6), &[], 1e-4);
}

#[test]
fn fig15_gradcheck_materialize_all() {
    let opts = GradOptions {
        policy: TapePolicy::All,
        ..Default::default()
    };
    gradcheck(&fig15(6), &opts, &fig15_inputs(6), &[], 1e-4);
}

#[test]
fn fig15_policies_agree_but_tape_differs() {
    // FT(-) materializes t (tape present); FT(+) recomputes (no tape), with
    // identical results — the mechanism behind the paper's Fig. 18.
    let f = fig15(6);
    let all = grad_with(
        &f,
        &GradOptions {
            policy: TapePolicy::All,
            ..Default::default()
        },
    )
    .unwrap();
    let sel = grad_with(&f, &GradOptions::default()).unwrap();
    assert!(all.to_string().contains("t.tape"), "{all}");
    assert!(!sel.to_string().contains("t.tape"), "{sel}");
    // The recomputing version re-emits the defining store, targeting the
    // backward incarnation `t.b`, in the backward pass (Fig. 15(c)).
    assert!(sel.to_string().contains("t.b[] = a["), "{sel}");
}

#[test]
fn reduction_gradcheck() {
    // y[0] = sum_i x[i]^2 (via ReduceTo): dy/dx = 2x.
    let f = Func::new("sumsq")
        .param("x", [5], DataType::F64, AccessType::Input)
        .param("y", [1], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            5,
            reduce(
                "y",
                [0],
                ReduceOp::Add,
                load("x", [var("i")]) * load("x", [var("i")]),
            ),
        ));
    let inputs: Inputs = [("x".to_string(), tensor(&[5], 7))].into_iter().collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-4);
}

#[test]
fn softmax_like_gradcheck() {
    // Numerically-stabilized softmax then weighted sum — the Longformer
    // attention inner pattern, with a max-reduction shift.
    let n = 5i64;
    let f = Func::new("softmax")
        .param("x", [n], DataType::F64, AccessType::Input)
        .param("v", [n], DataType::F64, AccessType::Input)
        .param("y", [1], DataType::F64, AccessType::Output)
        .body(var_def(
            "m",
            scalar(),
            DataType::F64,
            MemType::CpuStack,
            var_def(
                "den",
                scalar(),
                DataType::F64,
                MemType::CpuStack,
                block([
                    store("m", scalar(), f64::NEG_INFINITY),
                    for_(
                        "i",
                        0,
                        n,
                        reduce("m", scalar(), ReduceOp::Max, load("x", [var("i")])),
                    ),
                    for_(
                        "j",
                        0,
                        n,
                        reduce(
                            "den",
                            scalar(),
                            ReduceOp::Add,
                            intrin::exp(load("x", [var("j")]) - load("m", scalar())),
                        ),
                    ),
                    for_(
                        "k",
                        0,
                        n,
                        reduce(
                            "y",
                            [0],
                            ReduceOp::Add,
                            intrin::exp(load("x", [var("k")]) - load("m", scalar()))
                                / load("den", scalar())
                                * load("v", [var("k")]),
                        ),
                    ),
                ]),
            ),
        ));
    let inputs: Inputs = [
        ("x".to_string(), tensor(&[5], 11)),
        ("v".to_string(), tensor(&[5], 12)),
    ]
    .into_iter()
    .collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-3);
}

#[test]
fn guarded_stencil_gradcheck() {
    // Sliding-window access with boundary guards (Longformer shape).
    let (n, w) = (6i64, 2i64);
    let f = Func::new("window")
        .param("x", [n], DataType::F64, AccessType::Input)
        .param("y", [n], DataType::F64, AccessType::Output)
        .body(for_(
            "j",
            0,
            n,
            for_(
                "k",
                -w,
                w + 1,
                if_(
                    (var("j") + var("k"))
                        .ge(0)
                        .and((var("j") + var("k")).lt(n)),
                    reduce(
                        "y",
                        [var("j")],
                        ReduceOp::Add,
                        load("x", idx![var("j") + var("k")]) * 0.5f64,
                    ),
                ),
            ),
        ));
    let inputs: Inputs = [("x".to_string(), tensor(&[6], 21))].into_iter().collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-4);
}

#[test]
fn unary_chain_gradcheck() {
    // y[i] = sigmoid(exp(x[i]) * tanh(x[i]) + sqrt(abs(x[i]) + 1))
    let f = Func::new("chain")
        .param("x", [4], DataType::F64, AccessType::Input)
        .param("y", [4], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            4,
            store(
                "y",
                [var("i")],
                intrin::sigmoid(
                    intrin::exp(load("x", [var("i")])) * intrin::tanh(load("x", [var("i")]))
                        + intrin::sqrt(intrin::abs(load("x", [var("i")])) + 1.0f64),
                ),
            ),
        ));
    let inputs: Inputs = [("x".to_string(), tensor(&[4], 31))].into_iter().collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-3);
}

#[test]
fn overwritten_output_gradcheck() {
    // y[i] written twice: the second store kills the first's gradient path.
    let f = Func::new("overwrite")
        .param("x", [4], DataType::F64, AccessType::Input)
        .param("y", [4], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            4,
            block([
                store("y", [var("i")], load("x", [var("i")]) * 3.0f64),
                store("y", [var("i")], load("x", [var("i")]) * load("x", [var("i")])),
            ]),
        ));
    let inputs: Inputs = [("x".to_string(), tensor(&[4], 41))].into_iter().collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-4);
}

#[test]
fn taped_vector_intermediate_gradcheck() {
    // A vector intermediate with an expensive definition: must be taped
    // under Selective, and indexed by the loop version in the backward pass.
    let (n, m) = (3i64, 4i64);
    let f = Func::new("taped")
        .param("x", [n, m], DataType::F64, AccessType::Input)
        .param("y", [n], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            var_def(
                "row",
                [m],
                DataType::F64,
                MemType::CpuStack,
                block([
                    for_(
                        "j",
                        0,
                        m,
                        store(
                            "row",
                            [var("j")],
                            intrin::exp(
                                intrin::sigmoid(load("x", [var("i"), var("j")]))
                                    * intrin::tanh(load("x", [var("i"), var("j")]))
                                    + intrin::sqrt(
                                        intrin::abs(load("x", [var("i"), var("j")])) + 1.0f64,
                                    ),
                            ),
                        ),
                    ),
                    for_(
                        "k",
                        0,
                        m,
                        reduce(
                            "y",
                            [var("i")],
                            ReduceOp::Add,
                            load("row", [var("k")]) * load("row", [var("k")]),
                        ),
                    ),
                ]),
            ),
        ));
    // Force the store decision with a tight recompute budget.
    let opts = GradOptions {
        recompute_threshold: 4,
        ..Default::default()
    };
    let g = grad_with(&f, &opts).unwrap();
    assert!(g.to_string().contains("row.tape"), "{g}");
    let inputs: Inputs = [("x".to_string(), tensor(&[3, 4], 51))].into_iter().collect();
    gradcheck(&f, &opts, &inputs, &[], 1e-3);
    // The default (more recompute-friendly) budget must agree too.
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-3);
    let _ = grad(&f).unwrap();
}

#[test]
fn unsupported_cases_error_cleanly() {
    // InOut parameter.
    let f = Func::new("f")
        .param("x", [2], DataType::F64, AccessType::InOut)
        .body(store("x", [0], load("x", [1])));
    assert!(grad(&f).is_err());
    // Multiplicative reduction.
    let f = Func::new("f")
        .param("x", [2], DataType::F64, AccessType::Input)
        .param("y", [1], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            2,
            reduce("y", [0], ReduceOp::Mul, load("x", [var("i")])),
        ));
    assert!(grad(&f).is_err());
}

#[test]
fn frontend_program_differentiates() {
    // End-to-end: DSL source -> IR -> grad -> gradcheck.
    let src = r#"
def f(x: f64[6] in, y: f64[6] out):
  for i in range(6):
    t = create_var((), "f64", "cpu")
    t = x[i] * x[i]
    y[i] = t * x[i]
"#;
    let f = ft_frontend::compile_str(src, "f").expect("compiles");
    let inputs: Inputs = [("x".to_string(), tensor(&[6], 61))].into_iter().collect();
    gradcheck(&f, &GradOptions::default(), &inputs, &[], 1e-4);
}

#[test]
fn duplicate_def_names_from_double_caching_gradcheck() {
    // Regression: the schedule's `cache` op names its staging buffer
    // `{param}.cache`, so caching the same parameter twice produces two
    // sibling defs with the same name — here with *different* version
    // structure (a depth-0 whole-array copy vs a depth-1 per-iteration
    // scalar). AD bookkeeping keys per-tensor facts by name and used to
    // merge the two, allocating one tape but indexing it with the other
    // def's rank (IndexOutOfBounds on `x.cache.tape`); found by the grad
    // conformance sweep on longformer (repro
    // `longformer-seed29958-interp-grad-all-t0-opt-then-grad.json`).
    let f = Func::new("dblcache")
        .param("x", [4], DataType::F64, AccessType::Input)
        .param("y", [4], DataType::F64, AccessType::Output)
        .body(block([
            var_def(
                "x.cache",
                [4],
                DataType::F64,
                MemType::CpuStack,
                block([
                    for_(
                        "i",
                        0,
                        4,
                        store("x.cache", [var("i")], load("x", [var("i")])),
                    ),
                    for_(
                        "i",
                        0,
                        4,
                        store(
                            "y",
                            [var("i")],
                            load("x.cache", [var("i")]) * load("x.cache", [var("i")]),
                        ),
                    ),
                ]),
            ),
            for_(
                "j",
                0,
                4,
                var_def(
                    "x.cache",
                    scalar(),
                    DataType::F64,
                    MemType::CpuStack,
                    block([
                        store("x.cache", scalar(), load("x", [var("j")])),
                        reduce(
                            "y",
                            [var("j")],
                            ReduceOp::Add,
                            load("x.cache", scalar()) * load("x.cache", scalar()),
                        ),
                    ]),
                ),
            ),
        ]));
    let inputs: Inputs = [("x".to_string(), tensor(&[4], 77))].into_iter().collect();
    // y[i] = 2·x[i]², so dy/dx must come out 4·x under every tape policy.
    for policy in [TapePolicy::All, TapePolicy::Selective] {
        let opts = GradOptions {
            policy,
            ..Default::default()
        };
        gradcheck(&f, &opts, &inputs, &[], 1e-3);
    }
}

#[test]
fn scalar_reused_across_inner_loop_gradcheck_all_policy() {
    // A scalar temporary declared outside the inner loop that overwrites it
    // each iteration: the end-of-scope snapshot would tape only the final
    // value, so `deep_tape_plan` switches to per-store taping with one
    // version per (i, j).
    let (n, m) = (4i64, 3i64);
    let f = Func::new("reuse")
        .param("a", [n], DataType::F64, AccessType::Input)
        .param("b", [m], DataType::F64, AccessType::Input)
        .param("y", [n, m], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            var_def(
                "t",
                scalar(),
                DataType::F64,
                MemType::CpuStack,
                for_(
                    "j",
                    0,
                    m,
                    block([
                        store(
                            "t",
                            scalar(),
                            load("a", [var("i")]) - load("b", [var("j")]),
                        ),
                        store(
                            "y",
                            [var("i"), var("j")],
                            load("t", scalar()) * load("t", scalar()),
                        ),
                    ]),
                ),
            ),
        ));
    let inputs: Inputs = [
        ("a".to_string(), tensor(&[n as usize], 7)),
        ("b".to_string(), tensor(&[m as usize], 8)),
    ]
    .into_iter()
    .collect();
    let all = GradOptions {
        policy: TapePolicy::All,
        ..Default::default()
    };
    gradcheck(&f, &all, &inputs, &[], 1e-4);
    // The tape must carry one version dimension per loop enclosing the
    // *store* — (i, j) — not just the VarDef's (i).
    let g = grad_with(&f, &all).expect("grad transform");
    let mut tape_dims = None;
    g.body.walk(&mut |s| {
        if let StmtKind::VarDef { name, shape, .. } = &s.kind {
            if name == "t.tape" {
                tape_dims = Some(shape.len());
            }
        }
    });
    assert_eq!(tape_dims, Some(2), "expected per-store tape over (i, j)");
}

#[test]
fn scalar_reuse_read_outside_storing_nest_is_rejected() {
    // The same reused scalar, but read *after* the inner loop: the backward
    // pass would need the previous iteration's value, which per-store taping
    // cannot provide — the transform must refuse rather than miscompute.
    let (n, m) = (4i64, 3i64);
    let f = Func::new("stale")
        .param("a", [n], DataType::F64, AccessType::Input)
        .param("b", [m], DataType::F64, AccessType::Input)
        .param("y", [n], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            var_def(
                "t",
                scalar(),
                DataType::F64,
                MemType::CpuStack,
                block([
                    for_(
                        "j",
                        0,
                        m,
                        store(
                            "t",
                            scalar(),
                            load("a", [var("i")]) * load("b", [var("j")]),
                        ),
                    ),
                    store("y", [var("i")], load("t", scalar()) * load("t", scalar())),
                ]),
            ),
        ));
    let all = GradOptions {
        policy: TapePolicy::All,
        ..Default::default()
    };
    let err = grad_with(&f, &all).expect_err("stale read must be rejected");
    assert!(
        err.to_string().contains("read under"),
        "unexpected error: {err}"
    );
}

/// A program whose single intermediate has `def_cost` exactly equal to the
/// default `recompute_threshold` (16): a chain of 16 adds over 17 loads.
fn boundary_cost_func(n: i64) -> Func {
    let mut acc = load("a", [var("i")]);
    for _ in 0..16 {
        acc = acc + load("a", [var("i")]);
    }
    Func::new("boundary")
        .param("a", [n], DataType::F64, AccessType::Input)
        .param("y", [n], DataType::F64, AccessType::Output)
        .body(for_(
            "i",
            0,
            n,
            var_def(
                "t",
                scalar(),
                DataType::F64,
                MemType::CpuStack,
                block([
                    store("t", scalar(), acc),
                    store("y", [var("i")], load("t", scalar()) * load("t", scalar())),
                ]),
            ),
        ))
}

#[test]
fn selective_boundary_decisions_give_bit_identical_gradients() {
    // At the default threshold (16) the cost-16 definition is *recomputed*;
    // one below it is *stored*. The two gradient programs must differ
    // structurally (tape vs replay) yet produce bit-identical gradients.
    let f = boundary_cost_func(5);
    let at = grad_with(&f, &GradOptions::default()).expect("threshold 16 grad");
    let below = grad_with(
        &f,
        &GradOptions {
            recompute_threshold: 15,
            ..Default::default()
        },
    )
    .expect("threshold 15 grad");
    let at_txt = format!("{at}");
    let below_txt = format!("{below}");
    assert!(
        !at_txt.contains("t.tape"),
        "def_cost == threshold must recompute, found a tape:\n{at_txt}"
    );
    assert!(
        below_txt.contains("t.tape"),
        "def_cost just above threshold must store:\n{below_txt}"
    );
    let mut inputs = [("a".to_string(), tensor(&[5], 11))]
        .into_iter()
        .collect::<Inputs>();
    inputs.insert("y.grad".to_string(), TensorVal::from_f64(&[5], vec![1.0; 5]));
    let sizes = HashMap::new();
    let ra = Runtime::new().run(&at, &inputs, &sizes).expect("recompute runs");
    let rb = Runtime::new().run(&below, &inputs, &sizes).expect("store runs");
    assert_eq!(
        ra.output("a.grad"),
        rb.output("a.grad"),
        "store vs recompute must be bit-identical"
    );
}
