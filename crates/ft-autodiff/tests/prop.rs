//! Property test: reverse-mode AD matches central finite differences on
//! randomly generated differentiable elementwise chains.

use ft_autodiff::{grad_with, GradOptions, TapePolicy};
use ft_ir::prelude::*;
use ft_runtime::{Runtime, Scalar, TensorVal};
use proptest::prelude::*;
use std::collections::HashMap;

const N: usize = 4;

/// Random smooth expressions of `x[i]` (kept numerically tame).
fn arb_smooth_expr() -> impl Strategy<Value = Expr> {
    let x = || load("x", [var("i")]);
    let leaf = prop_oneof![
        Just(x()),
        (-1.5f64..1.5).prop_map(Expr::FloatConst),
    ];
    leaf.prop_recursive(3, 16, 2, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            inner.clone().prop_map(intrin::sigmoid),
            inner.clone().prop_map(intrin::tanh),
            inner.clone().prop_map(|a| intrin::exp(a * 0.25f64)),
            inner.clone().prop_map(|a| intrin::sqrt(intrin::abs(a) + 1.0f64)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
        ]
    })
}

fn build(expr: Expr, via_local: bool) -> Func {
    // Optionally route through a local intermediate so the tape/recompute
    // machinery participates.
    let body = if via_local {
        var_def(
            "t",
            scalar(),
            DataType::F64,
            MemType::CpuStack,
            block([
                store("t", scalar(), expr),
                store(
                    "y",
                    [var("i")],
                    load("t", scalar()) * load("t", scalar()) + load("t", scalar()),
                ),
            ]),
        )
    } else {
        store("y", [var("i")], expr)
    };
    Func::new("p")
        .param("x", [N], DataType::F64, AccessType::Input)
        .param("y", [N], DataType::F64, AccessType::Output)
        .body(for_("i", 0, N, body))
}

fn loss(func: &Func, x: &TensorVal) -> f64 {
    let inputs: HashMap<String, TensorVal> =
        [("x".to_string(), x.clone())].into_iter().collect();
    Runtime::new()
        .run(func, &inputs, &HashMap::new())
        .expect("fwd runs")
        .output("y")
        .to_f64_vec()
        .iter()
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_chain_gradcheck(
        e in arb_smooth_expr(),
        via_local in proptest::bool::ANY,
        policy in prop_oneof![Just(TapePolicy::All), Just(TapePolicy::Selective)],
        seed in 0u64..1000,
    ) {
        let func = build(e, via_local);
        let opts = GradOptions { policy, ..Default::default() };
        let g = grad_with(&func, &opts).expect("grad transform");
        let x = TensorVal::from_f64(
            &[N],
            (0..N).map(|k| ((k as f64 + seed as f64) * 0.61).sin() * 0.8).collect(),
        );
        let ones = TensorVal::from_f64(&[N], vec![1.0; N]);
        let inputs: HashMap<String, TensorVal> = [
            ("x".to_string(), x.clone()),
            ("y.grad".to_string(), ones),
        ]
        .into_iter()
        .collect();
        let analytic = Runtime::new()
            .run(&g, &inputs, &HashMap::new())
            .expect("grad runs");
        let gx = analytic.output("x.grad");
        let eps = 1e-5;
        for i in 0..N {
            let mut plus = x.clone();
            plus.set_flat(i, Scalar::Float(x.get_flat(i).as_f64() + eps));
            let mut minus = x.clone();
            minus.set_flat(i, Scalar::Float(x.get_flat(i).as_f64() - eps));
            let fd = (loss(&func, &plus) - loss(&func, &minus)) / (2.0 * eps);
            let an = gx.get_flat(i).as_f64();
            // `max` and `abs` kinks can make FD unreliable exactly at the
            // kink; allow a slightly loose tolerance.
            prop_assert!(
                (fd - an).abs() <= 2e-3 * (1.0 + fd.abs()),
                "x[{i}]: analytic {an} vs fd {fd}\n{func}"
            );
        }
    }
}
