//! # ft-autoschedule — the rule-based auto-transforming strategy
//!
//! The paper's §4.3: six heuristic passes that *try* transformations,
//! relying on the dependence-checked primitives of `ft-schedule` to reject
//! anything unsafe — "we can aggressively try transformations without
//! worrying about their correctness":
//!
//! 1. [`auto_fuse`] — fuse adjacent equal-extent loops for locality;
//! 2. [`auto_vectorize`] — vectorize innermost dependence-free loops;
//! 3. [`auto_parallelize`] — bind outer loops to OpenMP threads or the CUDA
//!    grid/block hierarchy (splitting when a single loop must feed both);
//! 4. [`auto_mem_type`] — move small tensors toward the processor
//!    (registers ≻ scratch-pad ≻ main memory);
//! 5. [`auto_use_lib`] — replace compute-intensive nests with vendor-library
//!    calls (`as_lib`);
//! 6. [`auto_unroll`] — unroll very short loops.
//!
//! [`auto_schedule`] runs all six in the paper's order for a target device.
//!
//! The [`search`] module is the alternative strategy: evolutionary search
//! over schedule traces scored by the deterministic cost model, warm-started
//! from (and required to beat) the rule-based result.

pub mod search;

use ft_ir::{Device, Func, MemType, ParallelScope, Stmt, StmtId, StmtKind};
use ft_schedule::Schedule;
use ft_trace::{Span, TraceSink};

/// Open a timed span for one `auto_*` pass and label subsequent schedule
/// decisions with the pass name. No-op (and allocation-free) without a sink.
fn begin_pass(sched: &mut Schedule, name: &str) -> Option<Span> {
    let sink = sched.sink()?.clone();
    sched.set_phase(Some(name.to_string()));
    Some(sink.span("autoschedule", name))
}

/// Close a pass span, annotating how many transformations were applied.
fn end_pass(sched: &mut Schedule, span: Option<Span>, applied: usize) {
    if let Some(mut s) = span {
        s.arg("applied", applied);
        sched.set_phase(None);
    }
}

/// Auto-scheduling target description.
#[derive(Debug, Clone)]
pub struct Target {
    /// CPU or (simulated) GPU.
    pub device: Device,
    /// Elements threshold for register-class placement.
    pub reg_elems: i64,
    /// Elements threshold for shared-memory placement (GPU).
    pub shared_elems: i64,
    /// Trip-count threshold for unrolling.
    pub unroll_trip: i64,
    /// Split factor when one loop must feed both grid and block parallelism.
    pub gpu_block_size: i64,
}

impl Target {
    /// Default CPU target.
    pub fn cpu() -> Target {
        Target {
            device: Device::Cpu,
            reg_elems: 64,
            shared_elems: 4096,
            unroll_trip: 8,
            gpu_block_size: 128,
        }
    }

    /// Default (simulated) GPU target.
    pub fn gpu() -> Target {
        Target {
            device: Device::Gpu,
            ..Target::cpu()
        }
    }
}

fn all_loops(func: &Func) -> Vec<StmtId> {
    ft_ir::find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::For { .. }))
        .into_iter()
        .map(|s| s.id)
        .collect()
}

fn loop_extent_const(func: &Func, id: StmtId) -> Option<i64> {
    let s = ft_ir::find::find_by_id(&func.body, id)?;
    let StmtKind::For { begin, end, .. } = &s.kind else {
        return None;
    };
    let e = ft_passes::const_fold_expr(end.clone() - begin.clone());
    e.as_int()
}

fn is_innermost(func: &Func, id: StmtId) -> bool {
    let Some(s) = ft_ir::find::find_by_id(&func.body, id) else {
        return false;
    };
    let mut inner = 0;
    s.walk(&mut |st| {
        if matches!(st.kind, StmtKind::For { .. }) {
            inner += 1;
        }
    });
    inner == 1 // only itself
}

fn loop_parallel(func: &Func, id: StmtId) -> ParallelScope {
    match ft_ir::find::find_by_id(&func.body, id) {
        Some(Stmt {
            kind: StmtKind::For { property, .. },
            ..
        }) => property.parallel,
        _ => ParallelScope::Serial,
    }
}

/// Whether the loop is (transitively) inside another loop.
fn has_loop_parent(func: &Func, id: StmtId) -> bool {
    ft_ir::find::loop_nest_of(&func.body, id)
        .map(|n| !n.loops.is_empty())
        .unwrap_or(false)
}

/// Pass 1: fuse adjacent equal-extent sibling loops (locality).
pub fn auto_fuse(sched: &mut Schedule) -> usize {
    let span = begin_pass(sched, "auto_fuse");
    let mut fused = 0;
    // Fixpoint: each successful fusion changes the sibling structure.
    for _ in 0..16 {
        let mut candidate: Option<(StmtId, StmtId)> = None;
        let func = sched.func();
        ft_ir::find::find_stmts(&func.body, &|s| {
            matches!(s.kind, StmtKind::Block(_))
        })
        .iter()
        .for_each(|blk| {
            let StmtKind::Block(items) = &blk.kind else {
                return;
            };
            for w in items.windows(2) {
                if candidate.is_some() {
                    return;
                }
                if matches!(w[0].kind, StmtKind::For { .. })
                    && matches!(w[1].kind, StmtKind::For { .. })
                {
                    candidate = Some((w[0].id, w[1].id));
                }
            }
        });
        // Try every adjacent pair until one fuses.
        let mut progressed = false;
        let pairs = adjacent_loop_pairs(sched.func());
        for (a, b) in pairs {
            if sched.fuse(a, b).is_ok() {
                fused += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    end_pass(sched, span, fused);
    fused
}

fn adjacent_loop_pairs(func: &Func) -> Vec<(StmtId, StmtId)> {
    let mut out = Vec::new();
    func.body.walk(&mut |s| {
        if let StmtKind::Block(items) = &s.kind {
            for w in items.windows(2) {
                if matches!(w[0].kind, StmtKind::For { .. })
                    && matches!(w[1].kind, StmtKind::For { .. })
                {
                    out.push((w[0].id, w[1].id));
                }
            }
        }
    });
    out
}

/// Pass 2: vectorize innermost serial loops (dependence-permitting).
pub fn auto_vectorize(sched: &mut Schedule) -> usize {
    let span = begin_pass(sched, "auto_vectorize");
    let mut n = 0;
    for id in all_loops(sched.func()) {
        if loop_parallel(sched.func(), id) == ParallelScope::Serial
            && is_innermost(sched.func(), id)
            && has_loop_parent(sched.func(), id)
            && loop_extent_const(sched.func(), id).is_none_or(|e| e >= 4)
            && sched.vectorize(id).is_ok()
        {
            n += 1;
        }
    }
    end_pass(sched, span, n);
    n
}

/// Pass 3: bind outer loops to hardware parallelism.
///
/// CPU: parallelize every outermost loop over OpenMP threads. GPU: the
/// outermost loop becomes `blockIdx.x`; a perfectly nested second loop
/// becomes `threadIdx.x`; a lone loop is `split` so both levels are fed.
pub fn auto_parallelize(sched: &mut Schedule, target: &Target) -> usize {
    let span = begin_pass(sched, "auto_parallelize");
    let mut n = 0;
    let outer: Vec<StmtId> = all_loops(sched.func())
        .into_iter()
        .filter(|id| !has_loop_parent(sched.func(), *id))
        .collect();
    match target.device {
        Device::Cpu => {
            for id in outer {
                if sched.parallelize(id, ParallelScope::OpenMp).is_ok() {
                    n += 1;
                }
            }
        }
        Device::Gpu => {
            for id in outer {
                // Find a directly nested loop for the thread dimension.
                let inner = ft_ir::find::find_by_id(&sched.func().body, id)
                    .and_then(|s| match &s.kind {
                        StmtKind::For { body, .. } => {
                            let peeled = ft_schedule::util::peel(body);
                            matches!(peeled.kind, StmtKind::For { .. }).then(|| peeled.id)
                        }
                        _ => None,
                    });
                match inner {
                    Some(tid) => {
                        let ok_b = sched.parallelize(id, ParallelScope::CudaBlockX).is_ok();
                        let ok_t = sched.parallelize(tid, ParallelScope::CudaThreadX).is_ok();
                        if ok_b || ok_t {
                            n += 1;
                        }
                    }
                    None => {
                        // Lone loop: split to feed both levels.
                        let extent = loop_extent_const(sched.func(), id).unwrap_or(i64::MAX);
                        if extent > target.gpu_block_size {
                            if let Ok((b, t)) = sched.split(id, target.gpu_block_size) {
                                let ok_b = sched.parallelize(b, ParallelScope::CudaBlockX).is_ok();
                                let ok_t =
                                    sched.parallelize(t, ParallelScope::CudaThreadX).is_ok();
                                if ok_b || ok_t {
                                    n += 1;
                                }
                            }
                        } else if sched.parallelize(id, ParallelScope::CudaBlockX).is_ok() {
                            n += 1;
                        }
                    }
                }
            }
        }
    }
    end_pass(sched, span, n);
    n
}

/// Pass 4: put small tensors as near to the processor as possible.
pub fn auto_mem_type(sched: &mut Schedule, target: &Target) -> usize {
    let span = begin_pass(sched, "auto_mem_type");
    let mut n = 0;
    let mut defs: Vec<(String, Option<i64>)> = Vec::new();
    sched.func().body.walk(&mut |s| {
        if let StmtKind::VarDef { name, shape, .. } = &s.kind {
            let elems = shape
                .iter()
                .map(|e| ft_passes::const_fold_expr(e.clone()).as_int())
                .try_fold(1i64, |acc, e| e.map(|v| acc * v));
            defs.push((name.clone(), elems));
        }
    });
    for (name, elems) in defs {
        let Some(elems) = elems else { continue };
        let new_mtype = match target.device {
            Device::Cpu if elems <= target.reg_elems => Some(MemType::CpuStack),
            Device::Gpu if elems <= target.reg_elems => Some(MemType::GpuLocal),
            Device::Gpu if elems <= target.shared_elems => Some(MemType::GpuShared),
            Device::Gpu => Some(MemType::GpuGlobal),
            _ => None,
        };
        if let Some(mt) = new_mtype {
            if sched.set_mtype(&name, mt).is_ok() {
                n += 1;
            }
        }
    }
    end_pass(sched, span, n);
    n
}

/// Pass 5: replace matmul-shaped nests with vendor-library calls.
pub fn auto_use_lib(sched: &mut Schedule) -> usize {
    let span = begin_pass(sched, "auto_use_lib");
    let mut n = 0;
    for id in all_loops(sched.func()) {
        if sched.as_lib(id).is_ok() {
            n += 1;
        }
    }
    end_pass(sched, span, n);
    n
}

/// Pass 6: unroll very short innermost loops.
pub fn auto_unroll(sched: &mut Schedule, target: &Target) -> usize {
    let span = begin_pass(sched, "auto_unroll");
    let mut n = 0;
    for id in all_loops(sched.func()) {
        if loop_parallel(sched.func(), id) == ParallelScope::Serial
            && is_innermost(sched.func(), id)
            && loop_extent_const(sched.func(), id).is_some_and(|e| e <= target.unroll_trip)
            && sched.unroll(id).is_ok()
        {
            n += 1;
        }
    }
    end_pass(sched, span, n);
    n
}

/// Run all six passes in the paper's order and return the scheduled function.
pub fn auto_schedule(func: &Func, target: &Target) -> Func {
    auto_schedule_traced(func, target, None)
}

/// [`auto_schedule`] with observability: when `sink` is `Some`, every pass
/// reports a timed span and every primitive attempt (applied or rejected,
/// with structured violated dependences) lands in the sink's decision log.
pub fn auto_schedule_traced(func: &Func, target: &Target, sink: Option<TraceSink>) -> Func {
    let mut sched = Schedule::new(func.clone());
    sched.set_sink(sink);
    auto_fuse(&mut sched);
    auto_use_lib(&mut sched);
    auto_parallelize(&mut sched, target);
    auto_vectorize(&mut sched);
    auto_mem_type(&mut sched, target);
    auto_unroll(&mut sched, target);
    sched.into_func()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_runtime::{Runtime, TensorVal};
    use std::collections::HashMap;

    fn elementwise_two_loops() -> Func {
        Func::new("f")
            .param("x", [64], DataType::F32, AccessType::Input)
            .param("t", [64], DataType::F32, AccessType::Output)
            .param("y", [64], DataType::F32, AccessType::Output)
            .body(block([
                for_("i", 0, 64, store("t", [var("i")], load("x", [var("i")]) * 2.0f32)),
                for_("j", 0, 64, store("y", [var("j")], load("t", [var("j")]) + 1.0f32)),
            ]))
    }

    #[test]
    fn auto_fuse_merges_elementwise_pipeline() {
        let mut s = Schedule::new(elementwise_two_loops());
        assert_eq!(auto_fuse(&mut s), 1);
        let loops = ft_ir::find::find_stmts(&s.func().body, &|st| {
            matches!(st.kind, StmtKind::For { .. })
        });
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn auto_parallelize_cpu_marks_outer() {
        let mut s = Schedule::new(elementwise_two_loops());
        assert_eq!(auto_parallelize(&mut s, &Target::cpu()), 2);
        for l in ft_ir::find::find_stmts(&s.func().body, &|st| {
            matches!(st.kind, StmtKind::For { .. })
        }) {
            let StmtKind::For { property, .. } = &l.kind else {
                unreachable!()
            };
            assert_eq!(property.parallel, ParallelScope::OpenMp);
        }
    }

    #[test]
    fn auto_parallelize_gpu_splits_lone_loop() {
        let f = Func::new("f")
            .param("y", [1024], DataType::F32, AccessType::Output)
            .body(for_("i", 0, 1024, store("y", [var("i")], 1.0f32)));
        let mut s = Schedule::new(f);
        assert_eq!(auto_parallelize(&mut s, &Target::gpu()), 1);
        let mut scopes = Vec::new();
        s.func().body.walk(&mut |st| {
            if let StmtKind::For { property, .. } = &st.kind {
                scopes.push(property.parallel);
            }
        });
        assert!(scopes.contains(&ParallelScope::CudaBlockX));
        assert!(scopes.contains(&ParallelScope::CudaThreadX));
    }

    #[test]
    fn auto_mem_type_promotes_small_locals() {
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [8],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    store("t", [0], 1.0f32),
                    store("y", [0], load("t", [0])),
                ]),
            ));
        let mut s = Schedule::new(f);
        assert_eq!(auto_mem_type(&mut s, &Target::cpu()), 1);
        let def = ft_ir::find::find_stmt(&s.func().body, &|st| {
            matches!(st.kind, StmtKind::VarDef { .. })
        })
        .unwrap();
        let StmtKind::VarDef { mtype, .. } = &def.kind else {
            unreachable!()
        };
        assert_eq!(*mtype, MemType::CpuStack);
    }

    #[test]
    fn auto_use_lib_finds_matmul() {
        let f = ft_libop::compile_with_libop(
            "def e(a: f32[8, 8] in, b: f32[8, 8] in, c: f32[8, 8] out):\n  matmul(a, b, c, 8, 8, 8)\n",
            "e",
        )
        .unwrap();
        let mut s = Schedule::new(f);
        assert_eq!(auto_use_lib(&mut s), 1);
    }

    #[test]
    fn auto_unroll_expands_short_loops() {
        let f = Func::new("f")
            .param("y", [32, 3], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                32,
                for_("j", 0, 3, store("y", [var("i"), var("j")], 1.0f32)),
            ));
        let mut s = Schedule::new(f);
        assert_eq!(auto_unroll(&mut s, &Target::cpu()), 1);
        let loops = ft_ir::find::find_stmts(&s.func().body, &|st| {
            matches!(st.kind, StmtKind::For { .. })
        });
        assert_eq!(loops.len(), 1); // the j loop is gone
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let f = elementwise_two_loops();
        let x = TensorVal::from_f32(&[64], (0..64).map(|v| (v as f32).cos()).collect());
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x)].into_iter().collect();
        let before = Runtime::new().run(&f, &inputs, &HashMap::new()).unwrap();
        for target in [Target::cpu(), Target::gpu()] {
            let tuned = auto_schedule(&f, &target);
            let after = Runtime::new().run(&tuned, &inputs, &HashMap::new()).unwrap();
            assert!(
                before.output("y").allclose(after.output("y"), 1e-6),
                "auto-schedule changed semantics on {:?}:\n{tuned}",
                target.device
            );
        }
    }

    #[test]
    fn gpu_schedule_launches_fewer_kernels_after_fuse() {
        let f = elementwise_two_loops();
        let tuned = auto_schedule(&f, &Target::gpu());
        let x = TensorVal::from_f32(&[64], vec![1.0; 64]);
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x)].into_iter().collect();
        let r = Runtime::new().run(&tuned, &inputs, &HashMap::new()).unwrap();
        assert_eq!(r.counters.kernel_launches, 1, "{tuned}");
    }
}
