//! Search-based auto-scheduling: evolutionary search over [`ScheduleOp`]
//! traces, scored by the deterministic cost model.
//!
//! Where the rule-based [`auto_schedule`](crate::auto_schedule) commits to
//! one fixed pass order, this module *searches* the legal-schedule space the
//! way Ansor/TensorIR-class autotuners do — but with two properties those
//! systems don't have for free:
//!
//! 1. **Legality is a rejection, not a crash.** Every candidate trace is
//!    applied through `ft-schedule`'s dependence-checked primitives
//!    ([`ft_schedule::trace::apply_trace`]); an illegal mutation is simply
//!    a no-op in the trace, so the neighborhood generator never needs its
//!    own legality model.
//! 2. **Scoring is deterministic.** Candidates are ranked by the
//!    instrumented cost model's `modeled_cycles` (with `dram_bytes` as
//!    tiebreak), quantized into a total order by
//!    [`ft_runtime::ScheduleScore`] — so the same seed and budget produce
//!    the identical best trace on any machine, at any worker count, and the
//!    result can be gated in CI without wall-clock noise.
//!
//! The engine is workload-agnostic: the caller supplies an *evaluator*
//! closure that runs a scheduled function on real inputs and returns its
//! [`PerfCounters`] (the bench crate's driver runs the instrumented VM).
//! Candidate programs are memoized on [`canonical_key`] — the printed,
//! simplified function — so two traces that produce the same program are
//! never evaluated twice.

use crate::Target;
use ft_ir::{Device, Func, MemType};
use ft_metrics::Metrics;
use ft_runtime::{PerfCounters, ScheduleScore};
use ft_schedule::trace::{
    apply_trace, canonical_key, loops_of, op_from_json, op_to_json, vardefs_of, ScheduleOp,
};
use ft_schedule::Schedule;
use ft_trace::{JsonVal, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Knobs of one search run. Everything that affects the outcome is in here
/// (plus the base function and target): two runs with equal configs are
/// bit-identical.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum evaluator invocations (memo hits are free).
    pub budget: usize,
    /// RNG seed; the single source of randomness.
    pub seed: u64,
    /// Survivors kept between generations.
    pub population: usize,
    /// Candidates proposed per generation.
    pub generation_size: usize,
    /// Hard cap on trace length (crossover and append respect it).
    pub max_trace_len: usize,
    /// Evaluation worker threads. **Does not affect the result**, only
    /// wall-clock: candidates are generated and ranked sequentially, and
    /// parallel evaluation writes into per-candidate slots.
    pub workers: usize,
    /// Warm-start per-op payoff statistics from a previous run
    /// ([`SavedSchedule::payoff`]); `None` starts uniform.
    pub warm_payoff: Option<PayoffTable>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            budget: 256,
            seed: 2022,
            population: 8,
            generation_size: 16,
            max_trace_len: 24,
            workers: 1,
            warm_payoff: None,
        }
    }
}

/// Per-op-kind win/trial statistics, Laplace-smoothed into mutation weights.
///
/// Every proposed candidate credits the op kinds its mutation introduced
/// ("trials"); kinds whose candidates improved on their parent also count a
/// "win". The neighborhood generator multiplies each kind's base weight by
/// `(wins + 1) / (trials + 2)`, so kinds that keep paying off get sampled
/// more and kinds that never help decay toward (but never reach) zero —
/// the table is a prior, not a filter. Tables persist in
/// [`SavedSchedule`] JSON so later runs warm-start from earlier evidence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PayoffTable {
    entries: BTreeMap<String, (u64, u64)>,
}

impl PayoffTable {
    /// `(wins, trials)` recorded for an op kind.
    pub fn get(&self, op: &str) -> (u64, u64) {
        self.entries.get(op).copied().unwrap_or((0, 0))
    }

    /// Record one trial (and, when the child beat its parent, one win).
    pub fn credit(&mut self, op: &str, improved: bool) {
        let e = self.entries.entry(op.to_string()).or_insert((0, 0));
        e.1 += 1;
        if improved {
            e.0 += 1;
        }
    }

    /// Smoothed sampling weight of an op kind in 1/1024 units, scaled by
    /// its base weight. Integer arithmetic keeps sampling deterministic.
    fn weight_millis(&self, op: &str, base: u64) -> u64 {
        let (wins, trials) = self.get(op);
        // Laplace smoothing: an untried op weighs base * 512/1024.
        (base * 1024 * (wins + 1) / (trials + 2)).max(1)
    }

    /// Iterate entries in deterministic (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.entries.iter().map(|(k, (w, t))| (k.as_str(), *w, *t))
    }

    /// Serialize as `{"op": [wins, trials], ...}`.
    pub fn to_json(&self) -> JsonVal {
        JsonVal::Obj(
            self.entries
                .iter()
                .map(|(k, (w, t))| {
                    (
                        k.clone(),
                        JsonVal::Arr(vec![JsonVal::Num(*w as f64), JsonVal::Num(*t as f64)]),
                    )
                })
                .collect(),
        )
    }

    /// Parse [`PayoffTable::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes the first malformed entry.
    pub fn from_json(v: &JsonVal) -> Result<PayoffTable, String> {
        let JsonVal::Obj(fields) = v else {
            return Err("payoff table is not an object".to_string());
        };
        let mut entries = BTreeMap::new();
        for (k, v) in fields {
            let arr = v.as_arr().ok_or_else(|| format!("payoff `{k}` not an array"))?;
            let n = |i: usize| -> Result<u64, String> {
                arr.get(i)
                    .and_then(JsonVal::as_u64)
                    .ok_or_else(|| format!("payoff `{k}` missing element {i}"))
            };
            entries.insert(k.clone(), (n(0)?, n(1)?));
        }
        Ok(PayoffTable { entries })
    }
}

/// Summary of one generation, for the search history artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GenStat {
    /// Generation number (0 = warm-start seeds).
    pub generation: u64,
    /// Cumulative evaluator invocations after this generation.
    pub evaluations: u64,
    /// Cumulative memoization hits after this generation.
    pub memo_hits: u64,
    /// Best modeled cycles seen so far.
    pub best_cycles: f64,
    /// `dram_bytes` of the best candidate so far.
    pub best_dram: u64,
}

/// Everything a search run produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best trace found (accepted ops only — replays deterministically).
    pub best_trace: Vec<ScheduleOp>,
    /// Its score.
    pub best_score: ScheduleScore,
    /// Its full counters (from the evaluation that discovered it).
    pub best_counters: PerfCounters,
    /// The rule-mirroring warm-start trace ([`rule_trace`]).
    pub rule_trace: Vec<ScheduleOp>,
    /// The warm-start trace's score (what search has to beat).
    pub rule_score: ScheduleScore,
    /// Evaluator invocations actually spent (≤ budget).
    pub evaluations: u64,
    /// Candidates answered from the memo table.
    pub memo_hits: u64,
    /// Ops rejected by the legality checks across all candidates.
    pub illegal_rejected: u64,
    /// Generations run (excluding the seed generation).
    pub generations: u64,
    /// Per-generation progress.
    pub history: Vec<GenStat>,
    /// Final payoff statistics (persist for warm starts).
    pub payoff: PayoffTable,
}

/// A prepared candidate: the trace applied and simplified, exactly the way
/// `Program::optimize` prepares the rule-based schedule — so scores
/// recorded here reproduce on the bench replay path.
struct Prepared {
    func: Func,
    key: u64,
    accepted: Vec<ScheduleOp>,
    rejected: u64,
}

/// Apply `trace` to `base` for `device` and simplify, mirroring
/// `freetensor_core::Program::optimize` (param placement → schedule →
/// simplify). Public because the bench replay path must build candidate
/// programs identically to how the search scored them.
pub fn prepare_candidate(base: &Func, device: Device, trace: &[ScheduleOp]) -> (Func, Vec<ScheduleOp>) {
    let mut f = base.clone();
    for p in &mut f.params {
        p.mtype = MemType::default_for(device);
    }
    let (scheduled, accepted) = apply_trace(&f, trace);
    (ft_passes::simplify(&scheduled), accepted)
}

fn prepare(base: &Func, device: Device, trace: &[ScheduleOp]) -> Prepared {
    let (func, accepted) = prepare_candidate(base, device, trace);
    let key = canonical_key(&func);
    let rejected = (trace.len() - accepted.len()) as u64;
    Prepared {
        func,
        key,
        accepted,
        rejected,
    }
}

/// Deterministic chunked parallel map: output order is input order and the
/// result is independent of thread scheduling (each worker owns a disjoint
/// contiguous slice of the output).
fn par_map<T: Sync, R: Send>(items: &[T], workers: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (inp, outp) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(|| {
                for (i, o) in inp.iter().zip(outp.iter_mut()) {
                    *o = Some(f(i));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("par_map slot filled")).collect()
}

/// Mirror the six rule-based passes in the positional trace vocabulary:
/// greedy, deterministic, and cheap (no evaluator calls). The result seeds
/// the search population so generation 0 already contains a rule-class
/// schedule; search then has to *improve* on it.
///
/// CPU-only, like the search itself (the trace vocabulary's `parallelize`
/// is OpenMP).
pub fn rule_trace(base: &Func, target: &Target) -> Vec<ScheduleOp> {
    let mut f = base.clone();
    for p in &mut f.params {
        p.mtype = MemType::default_for(target.device);
    }
    let mut sched = Schedule::new(f);
    let mut trace: Vec<ScheduleOp> = Vec::new();
    let try_op = |sched: &mut Schedule, trace: &mut Vec<ScheduleOp>, op: ScheduleOp| -> bool {
        let ok = op.apply(sched).is_ok();
        if ok {
            trace.push(op);
        }
        ok
    };
    // Pass 1 (auto_fuse): fuse sibling loops to a fixpoint. Positional
    // pairs are legality-gated, so trying all pairs is safe.
    'fuse: for _ in 0..16 {
        let n = loops_of(sched.func()).len();
        for i in 0..n.saturating_sub(1) {
            for j in (i + 1)..n {
                if try_op(
                    &mut sched,
                    &mut trace,
                    ScheduleOp::Fuse {
                        first_idx: i,
                        second_idx: j,
                    },
                ) {
                    continue 'fuse;
                }
            }
        }
        break;
    }
    // Pass 2 (auto_use_lib): offer every loop to the library matcher.
    for i in 0..loops_of(sched.func()).len() {
        try_op(&mut sched, &mut trace, ScheduleOp::AsLib { loop_idx: i });
    }
    // Pass 3 (auto_parallelize, CPU): outermost loops onto OpenMP threads.
    {
        let loops = loops_of(sched.func());
        for (i, id) in loops.iter().enumerate() {
            if !crate::has_loop_parent(sched.func(), *id) {
                try_op(&mut sched, &mut trace, ScheduleOp::Parallelize { loop_idx: i });
            }
        }
    }
    // Pass 4 (auto_vectorize): innermost nested serial loops.
    {
        let loops = loops_of(sched.func());
        for (i, id) in loops.iter().enumerate() {
            if crate::is_innermost(sched.func(), *id)
                && crate::has_loop_parent(sched.func(), *id)
                && crate::loop_extent_const(sched.func(), *id).is_none_or(|e| e >= 4)
            {
                try_op(&mut sched, &mut trace, ScheduleOp::Vectorize { loop_idx: i });
            }
        }
    }
    // Pass 5 (auto_mem_type): promote small locals to the stack.
    for d in 0..vardefs_of(sched.func()).len() {
        try_op(&mut sched, &mut trace, ScheduleOp::SetMtype { def_idx: d });
    }
    // Pass 6 (auto_unroll): unroll very short innermost loops.
    {
        let loops = loops_of(sched.func());
        for (i, id) in loops.iter().enumerate() {
            if crate::is_innermost(sched.func(), *id)
                && crate::loop_extent_const(sched.func(), *id)
                    .is_some_and(|e| e <= target.unroll_trip)
            {
                try_op(&mut sched, &mut trace, ScheduleOp::Unroll { loop_idx: i });
            }
        }
    }
    trace
}

/// Op kinds the neighborhood generator samples, with base weights.
/// (`parallelize_unchecked` is fault injection and is never proposed.)
const OP_KINDS: &[(&str, u64)] = &[
    ("split", 3),
    ("merge", 1),
    ("reorder", 1),
    ("fuse", 2),
    ("parallelize", 3),
    ("vectorize", 2),
    ("unroll", 1),
    ("cache", 2),
    ("separate_tail", 1),
    ("set_mtype", 2),
    ("as_lib", 1),
];

/// Positional index space (taken modulo the live loop/def/param count at
/// application time, matching the conformance sampler).
const IDX_SPACE: usize = 64;

fn random_op(rng: &mut StdRng, payoff: &PayoffTable) -> ScheduleOp {
    let weights: Vec<u64> = OP_KINDS
        .iter()
        .map(|(k, base)| payoff.weight_millis(k, *base))
        .collect();
    let total: u64 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    let mut idx = 0;
    for (i, w) in weights.iter().enumerate() {
        if roll < *w {
            idx = i;
            break;
        }
        roll -= *w;
    }
    let l = rng.gen_range(0..IDX_SPACE);
    match OP_KINDS[idx].0 {
        "split" => ScheduleOp::Split {
            loop_idx: l,
            factor: [2i64, 3, 4, 8][rng.gen_range(0..4usize)],
        },
        "merge" => ScheduleOp::Merge { loop_idx: l },
        "reorder" => ScheduleOp::Reorder { loop_idx: l },
        "fuse" => ScheduleOp::Fuse {
            first_idx: l,
            second_idx: rng.gen_range(0..IDX_SPACE),
        },
        "parallelize" => ScheduleOp::Parallelize { loop_idx: l },
        "vectorize" => ScheduleOp::Vectorize { loop_idx: l },
        "unroll" => ScheduleOp::Unroll { loop_idx: l },
        "cache" => ScheduleOp::Cache {
            loop_idx: l,
            param_idx: rng.gen_range(0..8usize),
        },
        "separate_tail" => ScheduleOp::SeparateTail { loop_idx: l },
        "set_mtype" => ScheduleOp::SetMtype {
            def_idx: rng.gen_range(0..8usize),
        },
        _ => ScheduleOp::AsLib { loop_idx: l },
    }
}

/// One member of the population.
#[derive(Debug, Clone)]
struct Indiv {
    key: u64,
    trace: Vec<ScheduleOp>,
    score: ScheduleScore,
}

/// A proposed candidate: the trace, the op kinds its mutation introduced
/// (for payoff credit), and the parent score it must beat to count a win.
struct Proposal {
    trace: Vec<ScheduleOp>,
    credited: Vec<&'static str>,
    parent_score: ScheduleScore,
}

/// Tournament selection: the better of two uniform draws.
fn select<'a>(rng: &mut StdRng, pop: &'a [Indiv]) -> &'a Indiv {
    let a = &pop[rng.gen_range(0..pop.len())];
    let b = &pop[rng.gen_range(0..pop.len())];
    if a.score <= b.score {
        a
    } else {
        b
    }
}

fn propose(rng: &mut StdRng, pop: &[Indiv], payoff: &PayoffTable, max_len: usize) -> Proposal {
    let parent = select(rng, pop);
    let mut trace = parent.trace.clone();
    // Kinds: mutate 3, append 3, truncate 2, crossover 2.
    let roll = rng.gen_range(0..10u32);
    let mut credited = Vec::new();
    if roll < 3 && !trace.is_empty() {
        // Mutate: replace one op with a fresh draw.
        let pos = rng.gen_range(0..trace.len());
        let op = random_op(rng, payoff);
        credited.push(op_kind_name(&op));
        trace[pos] = op;
    } else if roll < 6 || trace.is_empty() {
        // Append/insert a fresh op.
        let op = random_op(rng, payoff);
        credited.push(op_kind_name(&op));
        let pos = rng.gen_range(0..=trace.len());
        trace.insert(pos, op);
        trace.truncate(max_len);
    } else if roll < 8 {
        // Truncate: drop one op.
        let pos = rng.gen_range(0..trace.len());
        trace.remove(pos);
    } else {
        // Crossover: parent prefix + other parent's suffix.
        let other = select(rng, pop);
        let a = rng.gen_range(0..=trace.len());
        let b = rng.gen_range(0..=other.trace.len());
        trace.truncate(a);
        trace.extend_from_slice(&other.trace[b..]);
        trace.truncate(max_len);
    }
    Proposal {
        trace,
        credited,
        parent_score: parent.score,
    }
}

/// The static name of an op's kind (identical to [`ScheduleOp::op_name`]
/// but returning the `OP_KINDS` interned str for payoff credit).
fn op_kind_name(op: &ScheduleOp) -> &'static str {
    OP_KINDS
        .iter()
        .map(|(k, _)| *k)
        .find(|k| *k == op.op_name())
        .unwrap_or("split")
}

/// Score of a failed (or budget-starved) candidate: ranks strictly last.
fn worst_score() -> ScheduleScore {
    ScheduleScore::new(f64::INFINITY, u64::MAX)
}

/// Run the evolutionary search. See the module docs for the model; the
/// short version:
///
/// - generation 0 evaluates the empty trace and [`rule_trace`];
/// - each generation proposes [`SearchConfig::generation_size`] candidates
///   by payoff-weighted mutate/append/truncate/crossover, prepares them in
///   parallel, answers duplicates from the memo table, evaluates the rest
///   in parallel (never exceeding [`SearchConfig::budget`] evaluator
///   calls), then updates population/payoff/best sequentially in proposal
///   order — which is what makes the outcome worker-count-invariant;
/// - the search stops when the budget is spent.
///
/// `evaluator` returns `None` for candidates that fail to run; they rank
/// strictly last and can never become the best.
pub fn search(
    base: &Func,
    target: &Target,
    config: &SearchConfig,
    evaluator: &(dyn Fn(&Func) -> Option<PerfCounters> + Sync),
    sink: Option<&TraceSink>,
    metrics: Option<&Metrics>,
) -> SearchOutcome {
    assert_eq!(
        target.device,
        Device::Cpu,
        "trace search is CPU-only (the trace vocabulary parallelizes onto OpenMP)"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut payoff = config.warm_payoff.clone().unwrap_or_default();
    let mut memo: BTreeMap<u64, ScheduleScore> = BTreeMap::new();
    let mut best: Option<(Vec<ScheduleOp>, ScheduleScore, PerfCounters)> = None;
    let mut pop: Vec<Indiv> = Vec::new();
    let mut evals: u64 = 0;
    let mut memo_hits: u64 = 0;
    let mut illegal: u64 = 0;
    let mut history: Vec<GenStat> = Vec::new();
    let budget = config.budget as u64;
    let workers = config.workers.max(1);

    // One batch: prepare in parallel, dedupe against the memo, evaluate
    // misses in parallel, then fold results sequentially in batch order.
    let run_batch = |traces: &[Vec<ScheduleOp>],
                         evals: &mut u64,
                         memo_hits: &mut u64,
                         illegal: &mut u64,
                         memo: &mut BTreeMap<u64, ScheduleScore>,
                         best: &mut Option<(Vec<ScheduleOp>, ScheduleScore, PerfCounters)>|
     -> Vec<(u64, Vec<ScheduleOp>, ScheduleScore)> {
        let prepared: Vec<Prepared> =
            par_map(traces, workers, |t| prepare(base, target.device, t));
        // Sequential dedup: first occurrence of each unseen key becomes a
        // miss, capped by the remaining budget (deterministically: later
        // candidates in the batch are the ones starved).
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut batch_new: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (i, p) in prepared.iter().enumerate() {
            *illegal += p.rejected;
            if memo.contains_key(&p.key) || batch_new.contains(&p.key) {
                *memo_hits += 1;
            } else if (*evals + miss_idx.len() as u64) < budget {
                batch_new.insert(p.key);
                miss_idx.push(i);
            }
        }
        let miss_funcs: Vec<&Func> = miss_idx.iter().map(|&i| &prepared[i].func).collect();
        let fresh: Vec<Option<PerfCounters>> =
            par_map(&miss_funcs, workers, |f| evaluator(f));
        for (&i, counters) in miss_idx.iter().zip(fresh) {
            *evals += 1;
            let score = counters
                .as_ref()
                .map_or_else(worst_score, PerfCounters::score);
            memo.insert(prepared[i].key, score);
            if let Some(c) = counters {
                let better = best.as_ref().is_none_or(|(_, bs, _)| score < *bs);
                if better {
                    *best = Some((prepared[i].accepted.clone(), score, c));
                }
            }
        }
        prepared
            .into_iter()
            .map(|p| {
                let score = memo.get(&p.key).copied().unwrap_or_else(worst_score);
                (p.key, p.accepted, score)
            })
            .collect()
    };

    // Generation 0: warm-start seeds (empty trace + rule-mirroring trace).
    let rtrace = rule_trace(base, target);
    let seeds = vec![Vec::new(), rtrace.clone()];
    let mut span0 = sink.map(|s| s.span("search", "generation"));
    let seeded = run_batch(
        &seeds, &mut evals, &mut memo_hits, &mut illegal, &mut memo, &mut best,
    );
    let rule_score = seeded[1].2;
    for (key, trace, score) in seeded {
        pop.push(Indiv { key, trace, score });
    }
    if let Some(s) = &mut span0 {
        s.arg("gen", 0);
        s.arg("evaluations", evals);
    }
    drop(span0);
    if let Some(m) = metrics {
        m.gauge("search.best_cycles")
            .set(best.as_ref().map_or(i64::MAX, |(_, s, _)| s.cycles() as i64));
    }
    history.push(GenStat {
        generation: 0,
        evaluations: evals,
        memo_hits,
        best_cycles: best.as_ref().map_or(f64::INFINITY, |(_, s, _)| s.cycles()),
        best_dram: best.as_ref().map_or(u64::MAX, |(_, s, _)| s.dram_bytes),
    });

    let mut generations: u64 = 0;
    while evals < budget && !pop.is_empty() {
        generations += 1;
        let mut span = sink.map(|s| s.span("search", "generation"));
        // Propose sequentially (single RNG stream → deterministic).
        let proposals: Vec<Proposal> = (0..config.generation_size)
            .map(|_| propose(&mut rng, &pop, &payoff, config.max_trace_len))
            .collect();
        let traces: Vec<Vec<ScheduleOp>> = proposals.iter().map(|p| p.trace.clone()).collect();
        let evals_before = evals;
        let scored = run_batch(
            &traces, &mut evals, &mut memo_hits, &mut illegal, &mut memo, &mut best,
        );
        // Sequential fold in proposal order: payoff credit + population.
        for (prop, (key, accepted, score)) in proposals.iter().zip(scored) {
            let improved = score < prop.parent_score;
            for kind in &prop.credited {
                payoff.credit(kind, improved);
            }
            pop.push(Indiv {
                key,
                trace: accepted,
                score,
            });
        }
        // Survivor selection: best-first, deduped by canonical key so the
        // population can't collapse into copies of one schedule.
        pop.sort_by(|a, b| a.score.cmp(&b.score).then(a.key.cmp(&b.key)));
        pop.dedup_by_key(|i| i.key);
        pop.truncate(config.population.max(1));
        if let Some(s) = &mut span {
            s.arg("gen", generations);
            s.arg("evaluations", evals - evals_before);
            s.arg(
                "best_cycles",
                best.as_ref().map_or(f64::INFINITY, |(_, sc, _)| sc.cycles()),
            );
        }
        if let Some(m) = metrics {
            m.gauge("search.best_cycles")
                .set(best.as_ref().map_or(i64::MAX, |(_, s, _)| s.cycles() as i64));
            m.counter("search.generations").inc();
        }
        history.push(GenStat {
            generation: generations,
            evaluations: evals,
            memo_hits,
            best_cycles: best.as_ref().map_or(f64::INFINITY, |(_, s, _)| s.cycles()),
            best_dram: best.as_ref().map_or(u64::MAX, |(_, s, _)| s.dram_bytes),
        });
    }

    if let Some(m) = metrics {
        m.counter("search.evaluations").add(evals);
        m.counter("search.memo.hit").add(memo_hits);
        m.counter("search.illegal_rejected").add(illegal);
    }
    let (best_trace, best_score, best_counters) = best.unwrap_or_else(|| {
        // Every evaluation failed (evaluator returned None throughout):
        // surface the rule trace with a worst score rather than panicking.
        (rtrace.clone(), worst_score(), PerfCounters::default())
    });
    SearchOutcome {
        best_trace,
        best_score,
        best_counters,
        rule_trace: rtrace,
        rule_score,
        evaluations: evals,
        memo_hits,
        illegal_rejected: illegal,
        generations,
        history,
        payoff,
    }
}

/// A persisted best-of-search schedule: everything needed to replay the
/// searched schedule deterministically and to verify the win that justified
/// committing it. Stored as one JSON file per (workload, device,
/// shape-class) under `results/schedules/`.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedSchedule {
    /// Workload name (bench naming: `subdivnet`, `longformer`, ...).
    pub workload: String,
    /// Device name (`cpu`).
    pub device: String,
    /// Shape class (bench scale key: `full` or `small`).
    pub scale: String,
    /// Search seed that produced this trace.
    pub seed: u64,
    /// Evaluation budget of the producing run.
    pub budget: u64,
    /// Wall-clock milliseconds the producing search spent (the cost of the
    /// tuning, reported alongside the replayed benefit).
    pub search_wall_ms: f64,
    /// Searched schedule's deterministic score.
    pub searched_cycles: f64,
    /// Searched schedule's DRAM traffic.
    pub searched_dram: u64,
    /// Rule-based (warm-start) score the search had to beat.
    pub rule_cycles: f64,
    /// Rule-based DRAM traffic.
    pub rule_dram: u64,
    /// The winning trace (accepted ops only).
    pub trace: Vec<ScheduleOp>,
    /// Final payoff table, for warm-starting future searches.
    pub payoff: PayoffTable,
}

impl SavedSchedule {
    /// Canonical file name under `results/schedules/`.
    pub fn file_name(workload: &str, device: &str, scale: &str) -> String {
        format!("{workload}-{device}-{scale}.json")
    }

    /// Serialize as a JSON document.
    pub fn to_json(&self) -> String {
        JsonVal::Obj(vec![
            ("workload".to_string(), JsonVal::Str(self.workload.clone())),
            ("device".to_string(), JsonVal::Str(self.device.clone())),
            ("scale".to_string(), JsonVal::Str(self.scale.clone())),
            ("seed".to_string(), JsonVal::Num(self.seed as f64)),
            ("budget".to_string(), JsonVal::Num(self.budget as f64)),
            ("search_wall_ms".to_string(), JsonVal::Num(self.search_wall_ms)),
            ("searched_cycles".to_string(), JsonVal::Num(self.searched_cycles)),
            ("searched_dram".to_string(), JsonVal::Num(self.searched_dram as f64)),
            ("rule_cycles".to_string(), JsonVal::Num(self.rule_cycles)),
            ("rule_dram".to_string(), JsonVal::Num(self.rule_dram as f64)),
            (
                "trace".to_string(),
                JsonVal::Arr(self.trace.iter().map(op_to_json).collect()),
            ),
            ("payoff".to_string(), self.payoff.to_json()),
        ])
        .to_string()
    }

    /// Parse [`SavedSchedule::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<SavedSchedule, String> {
        let v = JsonVal::parse(s)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonVal::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonVal::as_f64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let trace = v
            .get("trace")
            .and_then(JsonVal::as_arr)
            .ok_or("missing `trace` array")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let payoff = match v.get("payoff") {
            Some(p) => PayoffTable::from_json(p)?,
            None => PayoffTable::default(),
        };
        Ok(SavedSchedule {
            workload: str_field("workload")?,
            device: str_field("device")?,
            scale: str_field("scale")?,
            seed: num_field("seed")? as u64,
            budget: num_field("budget")? as u64,
            // Absent in schedules saved before the wall-clock axis existed.
            search_wall_ms: v
                .get("search_wall_ms")
                .and_then(JsonVal::as_f64)
                .unwrap_or(0.0),
            searched_cycles: num_field("searched_cycles")?,
            searched_dram: num_field("searched_dram")? as u64,
            rule_cycles: num_field("rule_cycles")?,
            rule_dram: num_field("rule_dram")? as u64,
            trace,
            payoff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_runtime::{Runtime, TensorVal};
    use std::collections::HashMap;

    /// A SubdivNet-shaped toy: two fusable elementwise loops over a
    /// parallelizable index.
    fn toy() -> Func {
        Func::new("toy")
            .param("x", [256], DataType::F32, AccessType::Input)
            .param("t", [256], DataType::F32, AccessType::Output)
            .param("y", [256], DataType::F32, AccessType::Output)
            .body(block([
                for_("i", 0, 256, store("t", [var("i")], load("x", [var("i")]) * 2.0f32)),
                for_("j", 0, 256, store("y", [var("j")], load("t", [var("j")]) + 1.0f32)),
            ]))
    }

    fn toy_inputs() -> HashMap<String, TensorVal> {
        [(
            "x".to_string(),
            TensorVal::from_f32(&[256], (0..256).map(|v| (v as f32).sin()).collect()),
        )]
        .into_iter()
        .collect()
    }

    fn toy_eval(f: &Func) -> Option<PerfCounters> {
        Runtime::new()
            .run(f, &toy_inputs(), &HashMap::new())
            .ok()
            .map(|r| r.counters)
    }

    #[test]
    fn rule_trace_mirrors_the_rule_passes() {
        let f = toy();
        let t = Target::cpu();
        let trace = rule_trace(&f, &t);
        assert!(!trace.is_empty());
        // The trace must at least fuse the two loops and parallelize.
        assert!(trace.iter().any(|o| matches!(o, ScheduleOp::Fuse { .. })));
        assert!(trace.iter().any(|o| matches!(o, ScheduleOp::Parallelize { .. })));
        // And its schedule must actually beat the unscheduled program.
        let (scheduled, _) = prepare_candidate(&f, Device::Cpu, &trace);
        let base_score = toy_eval(&f).unwrap().score();
        let rule_score = toy_eval(&scheduled).unwrap().score();
        assert!(rule_score < base_score, "{rule_score:?} vs {base_score:?}");
    }

    #[test]
    fn search_is_deterministic_across_runs_and_worker_counts() {
        let f = toy();
        let t = Target::cpu();
        let run = |workers: usize| {
            let config = SearchConfig {
                budget: 24,
                seed: 7,
                workers,
                ..SearchConfig::default()
            };
            search(&f, &t, &config, &toy_eval, None, None)
        };
        let a = run(1);
        let b = run(1);
        let c = run(4);
        assert_eq!(a.best_trace, b.best_trace);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_trace, c.best_trace, "worker count changed the result");
        assert_eq!(a.best_score, c.best_score);
        assert_eq!(a.memo_hits, c.memo_hits);
        assert_eq!(a.history, c.history);
    }

    #[test]
    fn search_beats_or_matches_rule_trace_and_respects_budget() {
        let f = toy();
        let t = Target::cpu();
        let metrics = Metrics::new();
        let config = SearchConfig {
            budget: 32,
            seed: 2022,
            ..SearchConfig::default()
        };
        let out = search(&f, &t, &config, &toy_eval, None, Some(&metrics));
        assert!(out.best_score <= out.rule_score);
        assert!(out.evaluations <= 32);
        // The winner must replay to the same score it was recorded with.
        let (replayed, _) = prepare_candidate(&f, Device::Cpu, &out.best_trace);
        let rc = toy_eval(&replayed).unwrap();
        assert!(rc.score_eq(&out.best_counters), "replay diverged");
        assert_eq!(rc.score(), out.best_score);
        // Metrics surfaced through the standard registry.
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("search.evaluations"), out.evaluations);
        assert_eq!(snap.counter("search.memo.hit"), out.memo_hits);
        assert!(snap.counter("search.illegal_rejected") == out.illegal_rejected);
        assert!(snap.gauges.contains_key("search.best_cycles"));
    }

    #[test]
    fn saved_schedule_roundtrips() {
        let mut payoff = PayoffTable::default();
        payoff.credit("split", true);
        payoff.credit("split", false);
        payoff.credit("parallelize", true);
        let s = SavedSchedule {
            workload: "subdivnet".to_string(),
            device: "cpu".to_string(),
            scale: "small".to_string(),
            seed: 2022,
            budget: 256,
            search_wall_ms: 321.5,
            searched_cycles: 12345.5,
            searched_dram: 1 << 20,
            rule_cycles: 23456.0,
            rule_dram: 1 << 21,
            trace: vec![
                ScheduleOp::Fuse {
                    first_idx: 0,
                    second_idx: 1,
                },
                ScheduleOp::Parallelize { loop_idx: 0 },
                ScheduleOp::SetMtype { def_idx: 0 },
            ],
            payoff,
        };
        let back = SavedSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert_eq!(
            SavedSchedule::file_name("subdivnet", "cpu", "small"),
            "subdivnet-cpu-small.json"
        );
        assert!(SavedSchedule::from_json("{}").is_err());
    }

    #[test]
    fn payoff_table_shifts_weights_toward_winners() {
        let mut p = PayoffTable::default();
        let base = p.weight_millis("split", 3);
        for _ in 0..10 {
            p.credit("split", true);
        }
        assert!(p.weight_millis("split", 3) > base);
        for _ in 0..20 {
            p.credit("merge", false);
        }
        assert!(p.weight_millis("merge", 1) < PayoffTable::default().weight_millis("merge", 1));
        // Weights never hit zero: every kind stays reachable.
        assert!(p.weight_millis("merge", 1) >= 1);
        // Round-trips through JSON.
        let back = PayoffTable::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }
}
