//! C99 + OpenMP emission for CPU schedules.

use ft_ir::{
    AccessType, BinaryOp, DataType, Expr, Func, MemType, ReduceOp, Stmt, StmtKind, UnaryOp,
};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Static preamble: headers and the tiny support library every generated
/// translation unit relies on.
pub const PREAMBLE: &str = r#"#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <stdbool.h>
#include <math.h>

static inline int64_t ft_fdiv(int64_t a, int64_t b) {
    int64_t q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline int64_t ft_fmod(int64_t a, int64_t b) {
    int64_t r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
static inline double ft_sigmoid(double x) { return 1.0 / (1.0 + exp(-x)); }
static inline void ft_lib_matmul(const float* A, const float* B, float* C,
                                 int64_t m, int64_t k, int64_t n) {
    for (int64_t i = 0; i < m; ++i)
        for (int64_t p = 0; p < k; ++p)
            for (int64_t j = 0; j < n; ++j)
                C[i * n + j] += A[i * k + p] * B[p * n + j];
}
"#;

/// Extra headers a *profiled* translation unit needs (`clock_gettime`).
/// Appended to [`PREAMBLE`] by [`emit_c_profiled`] only, so the unprofiled
/// source — and therefore its artifact-cache key — is byte-identical to
/// what [`emit_c`] always produced.
pub const PROF_PREAMBLE: &str = "#include <time.h>\n";

fn ctype(dt: DataType) -> &'static str {
    match dt {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::I32 => "int32_t",
        DataType::I64 => "int64_t",
        DataType::Bool => "bool",
    }
}

/// Coarse C-side type of an expression (for operator selection).
#[derive(Debug, Clone, Copy, PartialEq)]
enum CTy {
    Int,
    Float,
    Bool,
}

/// C identifiers every generated translation unit already uses (the
/// preamble's support library) plus the C99 keywords — IR names must never
/// mangle onto these.
const RESERVED: &[&str] = &[
    "ft_fdiv", "ft_fmod", "ft_sigmoid", "ft_lib_matmul", "ft_entry", "__ft_prof", "__ft_t0",
    "__ft_t1", "__ft_arena", "__ft_arena_base", "__ft_arena_owned", "auto", "break", "case", "char",
    "const", "continue", "default", "do", "double", "else", "enum", "extern", "float", "for",
    "goto", "if", "inline", "int", "long", "register", "restrict", "return", "short", "signed",
    "sizeof", "static", "struct", "switch", "typedef", "union", "unsigned", "void", "volatile",
    "while", "bool", "true", "false", "int32_t", "int64_t", "main",
];

/// Scope-aware mapping from IR names to *distinct* C identifiers.
///
/// `sanitize` alone maps every non-alphanumeric character to `_`, so
/// distinct IR names like `x.y` and `x_y` collapse onto one C identifier
/// and silently shadow each other (the same bug class as the
/// `{var}.cache` def collision fixed in the schedule layer). The mangler
/// keeps a used-set per translation unit and disambiguates collisions with
/// a numeric suffix, while a scope stack resolves IR shadowing (nested
/// `VarDef`s reusing a name) to whichever binding is innermost.
#[derive(Debug, Default)]
pub struct Mangler {
    used: HashSet<String>,
    scopes: HashMap<String, Vec<String>>,
}

impl Mangler {
    /// A mangler with the preamble's support identifiers and C keywords
    /// pre-reserved.
    pub fn new() -> Mangler {
        Mangler {
            used: RESERVED.iter().map(|s| s.to_string()).collect(),
            scopes: HashMap::new(),
        }
    }

    /// Bind an IR name in the current scope, returning its unique C
    /// identifier (stable for the lifetime of the translation unit).
    pub fn bind(&mut self, name: &str) -> String {
        let base = sanitize(name);
        let mut ident = base.clone();
        let mut n = 1usize;
        while self.used.contains(&ident) {
            n += 1;
            ident = format!("{base}_{n}");
        }
        self.used.insert(ident.clone());
        self.scopes
            .entry(name.to_string())
            .or_default()
            .push(ident.clone());
        ident
    }

    /// Leave the innermost binding of `name` (its identifier stays
    /// reserved, so a later re-binding of a colliding name cannot reuse it).
    pub fn unbind(&mut self, name: &str) {
        if let Some(stack) = self.scopes.get_mut(name) {
            stack.pop();
        }
    }

    /// The C identifier of the innermost binding of `name`. Falls back to
    /// plain sanitization for names never bound (callers emitting
    /// references to externally-declared identifiers).
    pub fn resolve(&self, name: &str) -> String {
        self.scopes
            .get(name)
            .and_then(|v| v.last().cloned())
            .unwrap_or_else(|| sanitize(name))
    }
}

/// The C identifiers a generated translation unit exposes at its ABI
/// boundary, in declaration order — what a driver needs to call the emitted
/// function (or wrap it in a `main`/`dlsym` entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CSymbols {
    /// Identifier of the emitted function.
    pub func: String,
    /// One identifier per tensor parameter, in declaration order.
    pub params: Vec<String>,
    /// One identifier per size parameter, in declaration order.
    pub size_params: Vec<String>,
}

/// The ABI identifiers [`emit_c`] will choose for `func` — computed by the
/// same mangler in the same order, so drivers stay in sync with the emitted
/// signature even when parameter names collide after sanitization.
pub fn c_symbols(func: &Func) -> CSymbols {
    let mut m = Mangler::new();
    bind_signature(&mut m, func)
}

/// Bind the function name and parameters in signature order (shared between
/// [`emit_c`] and [`c_symbols`] so both sides of the ABI agree).
fn bind_signature(m: &mut Mangler, func: &Func) -> CSymbols {
    CSymbols {
        func: m.bind(&func.name),
        params: func.params.iter().map(|p| m.bind(&p.name)).collect(),
        size_params: func.size_params.iter().map(|sp| m.bind(sp)).collect(),
    }
}

/// One per-loop-nest timing slot in a profiled translation unit.
///
/// Slot `k` of the `uint64_t *__ft_prof` array passed to the profiled
/// function accumulates the wall nanoseconds spent in this outermost loop
/// nest. `stmt`/`desc` use the same identity and label scheme as the
/// interpreter's profile nodes (`for {iter}` with the For's [`ft_ir::StmtId`]),
/// so compiled attribution is directly comparable to interpreted attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSite {
    /// Stable id of the profiled (outermost) For statement.
    pub stmt: ft_ir::StmtId,
    /// Interpreter-compatible label, e.g. `for i`.
    pub desc: String,
}

/// Arena placement of one planned `VarDef`, precomputed from a
/// [`ft_analysis::MemPlan`] and consumed by the emitter in def pre-order.
#[derive(Debug, Clone)]
struct ArenaSlot {
    /// IR name of the def this slot was planned for; a mismatch (emitter
    /// and planner walking different trees) falls back to `calloc`.
    name: String,
    /// Byte offset inside the arena.
    offset: u64,
    /// Class size in bytes — the `memset` extent when zeroing is required.
    bytes: u64,
    /// Whether liveness failed to prove write-before-read, so the buffer
    /// must be zero-filled on (re-)entry.
    must_zero: bool,
}

struct Emitter {
    dtypes: HashMap<String, DataType>,
    shapes: HashMap<String, Vec<Expr>>,
    names: Mangler,
    out: String,
    indent: usize,
    tmp: usize,
    /// `Some` when emitting a profiled unit: the sites allocated so far.
    prof: Option<Vec<ProfSite>>,
    /// For-nesting depth; only depth-0 loops get a profiling site.
    loop_depth: usize,
    /// Arena placements indexed by def pre-order number (the planner's
    /// `def_idx`); empty when emitting without a memory plan.
    arena: Vec<Option<ArenaSlot>>,
    /// Pre-order counter of `VarDef`s encountered so far.
    def_idx: usize,
    /// Number of enclosing parallel (`omp parallel for`) loops. Defs inside
    /// a parallel body must stay thread-private (`calloc` per iteration);
    /// a shared arena offset would race across the team.
    parallel_depth: usize,
}

impl Emitter {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn ty(&self, e: &Expr) -> CTy {
        match e {
            Expr::IntConst(_) | Expr::Var(_) => CTy::Int,
            Expr::FloatConst(_) => CTy::Float,
            Expr::BoolConst(_) => CTy::Bool,
            Expr::Load { var, .. } => match self.dtypes.get(var) {
                Some(d) if d.is_float() => CTy::Float,
                Some(DataType::Bool) => CTy::Bool,
                _ => CTy::Int,
            },
            Expr::Unary { op, a } => match op {
                UnaryOp::Not => CTy::Bool,
                UnaryOp::Neg | UnaryOp::Abs | UnaryOp::Sign => self.ty(a),
                _ => CTy::Float,
            },
            Expr::Binary { op, a, b } => {
                if op.is_comparison() {
                    CTy::Bool
                } else if self.ty(a) == CTy::Float || self.ty(b) == CTy::Float {
                    CTy::Float
                } else {
                    CTy::Int
                }
            }
            Expr::Select { then, .. } => self.ty(then),
            Expr::Cast { dtype, .. } => {
                if dtype.is_float() {
                    CTy::Float
                } else if *dtype == DataType::Bool {
                    CTy::Bool
                } else {
                    CTy::Int
                }
            }
        }
    }

    fn index_expr(&self, var: &str, indices: &[Expr]) -> String {
        let shape = self.shapes.get(var).cloned().unwrap_or_default();
        if indices.is_empty() {
            return format!("{}[0]", self.names.resolve(var));
        }
        let mut s = String::new();
        for (d, idx) in indices.iter().enumerate() {
            if d == 0 {
                s = self.expr(idx);
            } else {
                let extent = self.expr(&shape[d]);
                s = format!("({s}) * ({extent}) + ({})", self.expr(idx));
            }
        }
        format!("{}[{s}]", self.names.resolve(var))
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::IntConst(v) => format!("{v}"),
            Expr::FloatConst(v) => {
                if *v == f64::INFINITY {
                    "INFINITY".to_string()
                } else if *v == f64::NEG_INFINITY {
                    "-INFINITY".to_string()
                } else {
                    format!("{v:?}")
                }
            }
            Expr::BoolConst(v) => format!("{v}"),
            Expr::Var(n) => self.names.resolve(n),
            Expr::Load { var, indices } => self.index_expr(var, indices),
            Expr::Unary { op, a } => {
                let x = self.expr(a);
                match op {
                    UnaryOp::Neg => format!("(-{x})"),
                    UnaryOp::Not => format!("(!{x})"),
                    UnaryOp::Abs => {
                        if self.ty(a) == CTy::Float {
                            format!("fabs({x})")
                        } else {
                            format!("llabs({x})")
                        }
                    }
                    UnaryOp::Sqrt => format!("sqrt({x})"),
                    UnaryOp::Exp => format!("exp({x})"),
                    UnaryOp::Ln => format!("log({x})"),
                    UnaryOp::Sigmoid => format!("ft_sigmoid({x})"),
                    UnaryOp::Tanh => format!("tanh({x})"),
                    UnaryOp::Sign => format!("(({x} > 0) - ({x} < 0))"),
                }
            }
            Expr::Binary { op, a, b } => {
                let x = self.expr(a);
                let y = self.expr(b);
                let float = self.ty(a) == CTy::Float || self.ty(b) == CTy::Float;
                match op {
                    BinaryOp::Add => format!("({x} + {y})"),
                    BinaryOp::Sub => format!("({x} - {y})"),
                    BinaryOp::Mul => format!("({x} * {y})"),
                    BinaryOp::Div => {
                        if float {
                            format!("({x} / {y})")
                        } else {
                            format!("ft_fdiv({x}, {y})")
                        }
                    }
                    BinaryOp::Mod => {
                        if float {
                            format!("fmod({x}, {y})")
                        } else {
                            format!("ft_fmod({x}, {y})")
                        }
                    }
                    BinaryOp::Min => {
                        if float {
                            format!("fmin({x}, {y})")
                        } else {
                            format!("(({x}) < ({y}) ? ({x}) : ({y}))")
                        }
                    }
                    BinaryOp::Max => {
                        if float {
                            format!("fmax({x}, {y})")
                        } else {
                            format!("(({x}) > ({y}) ? ({x}) : ({y}))")
                        }
                    }
                    BinaryOp::Pow => format!("pow({x}, {y})"),
                    BinaryOp::Eq => format!("({x} == {y})"),
                    BinaryOp::Ne => format!("({x} != {y})"),
                    BinaryOp::Lt => format!("({x} < {y})"),
                    BinaryOp::Le => format!("({x} <= {y})"),
                    BinaryOp::Gt => format!("({x} > {y})"),
                    BinaryOp::Ge => format!("({x} >= {y})"),
                    BinaryOp::And => format!("({x} && {y})"),
                    BinaryOp::Or => format!("({x} || {y})"),
                }
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => format!(
                "({} ? {} : {})",
                self.expr(cond),
                self.expr(then),
                self.expr(otherwise)
            ),
            Expr::Cast { dtype, a } => format!("(({}){})", ctype(*dtype), self.expr(a)),
        }
    }

    fn numel(&self, shape: &[Expr]) -> String {
        if shape.is_empty() {
            return "1".to_string();
        }
        shape
            .iter()
            .map(|e| format!("({})", self.expr(e)))
            .collect::<Vec<_>>()
            .join(" * ")
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Block(v) => {
                for st in v {
                    self.stmt(st);
                }
            }
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                body,
                ..
            } => {
                self.dtypes.insert(name.clone(), *dtype);
                self.shapes.insert(name.clone(), shape.clone());
                let ty = ctype(*dtype);
                // Extents are evaluated in the enclosing scope, before the
                // new name is bound.
                let n = self.numel(shape);
                let const_n: Option<i64> = shape
                    .iter()
                    .map(|e| ft_passes::const_fold_expr(e.clone()).as_int())
                    .try_fold(1i64, |a, b| b.map(|v| a * v));
                let slot = self.arena.get(self.def_idx).cloned().flatten();
                self.def_idx += 1;
                let ident = self.names.bind(name);
                self.line("{");
                self.indent += 1;
                let heap = match (mtype, const_n) {
                    // Small constant-extent stack defs beat any arena: no
                    // pointer chase, no shared cache lines.
                    (MemType::CpuStack, Some(n)) if n <= 4096 => {
                        self.line(&format!("{ty} {ident}[{n}] = {{0}};"));
                        false
                    }
                    _ => match slot {
                        Some(a) if a.name == *name && self.parallel_depth == 0 => {
                            self.line(&format!(
                                "{ty}* {ident} = ({ty}*)(__ft_arena_base + {});",
                                a.offset
                            ));
                            if a.must_zero {
                                self.line(&format!("memset({ident}, 0, {});", a.bytes));
                            }
                            false
                        }
                        _ => {
                            self.line(&format!(
                                "{ty}* {ident} = ({ty}*)calloc({n}, sizeof({ty}));"
                            ));
                            true
                        }
                    },
                };
                self.stmt(body);
                if heap {
                    self.line(&format!("free({ident});"));
                }
                self.indent -= 1;
                self.line("}");
                self.names.unbind(name);
            }
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                // Outermost loop nests in a profiled unit are bracketed with
                // clock_gettime pairs accumulating into their __ft_prof slot.
                let site = if self.loop_depth == 0 {
                    if let Some(sites) = &mut self.prof {
                        let k = sites.len();
                        sites.push(ProfSite {
                            stmt: s.id,
                            desc: format!("for {iter}"),
                        });
                        self.line("{");
                        self.indent += 1;
                        self.line("struct timespec __ft_t0, __ft_t1;");
                        self.line("clock_gettime(CLOCK_MONOTONIC, &__ft_t0);");
                        Some(k)
                    } else {
                        None
                    }
                } else {
                    None
                };
                if property.parallel.is_parallel() {
                    self.line("#pragma omp parallel for");
                } else if property.vectorize {
                    self.line("#pragma omp simd");
                }
                // Bounds are evaluated in the enclosing scope; the iterator
                // is only in scope inside the loop.
                let begin = self.expr(begin);
                let end = self.expr(end);
                let i = self.names.bind(iter);
                self.line(&format!("for (int64_t {i} = {begin}; {i} < {end}; ++{i}) {{"));
                self.indent += 1;
                self.loop_depth += 1;
                if property.parallel.is_parallel() {
                    self.parallel_depth += 1;
                }
                self.stmt(body);
                if property.parallel.is_parallel() {
                    self.parallel_depth -= 1;
                }
                self.loop_depth -= 1;
                self.indent -= 1;
                self.line("}");
                self.names.unbind(iter);
                if let Some(k) = site {
                    self.line("clock_gettime(CLOCK_MONOTONIC, &__ft_t1);");
                    self.line(&format!(
                        "if (__ft_prof) __ft_prof[{k}] += \
                         (uint64_t)(__ft_t1.tv_sec - __ft_t0.tv_sec) * 1000000000u \
                         + (uint64_t)__ft_t1.tv_nsec - (uint64_t)__ft_t0.tv_nsec;"
                    ));
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                self.line(&format!("if ({}) {{", self.expr(cond)));
                self.indent += 1;
                self.stmt(then);
                self.indent -= 1;
                if let Some(o) = otherwise {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmt(o);
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                let lhs = self.index_expr(var, indices);
                let rhs = self.expr(value);
                self.line(&format!("{lhs} = {rhs};"));
            }
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } => {
                let lhs = self.index_expr(var, indices);
                let rhs = self.expr(value);
                match op {
                    ReduceOp::Add | ReduceOp::Mul => {
                        if *atomic {
                            self.line("#pragma omp atomic");
                        }
                        let o = if *op == ReduceOp::Add { "+" } else { "*" };
                        self.line(&format!("{lhs} {o}= {rhs};"));
                    }
                    ReduceOp::Min | ReduceOp::Max => {
                        if *atomic {
                            self.line("#pragma omp critical");
                        }
                        self.tmp += 1;
                        let raw = format!("ft_r{}", self.tmp);
                        let t = self.names.bind(&raw);
                        let f = if *op == ReduceOp::Min { "fmin" } else { "fmax" };
                        self.line("{");
                        self.indent += 1;
                        self.line(&format!("double {t} = {rhs};"));
                        self.line(&format!("{lhs} = {f}({lhs}, {t});"));
                        self.indent -= 1;
                        self.line("}");
                        self.names.unbind(&raw);
                    }
                }
            }
            StmtKind::LibCall {
                kernel,
                inputs,
                outputs,
                attrs,
            } => {
                if kernel == "matmul" {
                    self.line(&format!(
                        "ft_lib_matmul({}, {}, {}, {}, {}, {});",
                        self.names.resolve(&inputs[0]),
                        self.names.resolve(&inputs[1]),
                        self.names.resolve(&outputs[0]),
                        attrs[0],
                        attrs[1],
                        attrs[2]
                    ));
                } else {
                    self.line(&format!("/* unknown library kernel: {kernel} */"));
                }
            }
        }
    }
}

/// Make a tensor/iterator name a valid C identifier.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

/// Emit a complete C translation unit (preamble + one function) for a
/// CPU-scheduled function.
pub fn emit_c(func: &Func) -> String {
    emit_unit(func, None, false).0
}

/// Emit a *profiled* translation unit: the function gains a trailing
/// `uint64_t *__ft_prof` parameter and every outermost loop nest is
/// bracketed with `clock_gettime(CLOCK_MONOTONIC)` pairs accumulating wall
/// nanoseconds into its slot. Passing a NULL `__ft_prof` skips recording,
/// so one profiled artifact serves both timed and untimed calls. Returns
/// the source and the site table (slot `k` ↔ `sites[k]`).
pub fn emit_c_profiled(func: &Func) -> (String, Vec<ProfSite>) {
    emit_unit(func, None, true)
}

/// Emit a translation unit with *planned* `VarDef` storage: the function
/// gains a trailing `unsigned char* __ft_arena` parameter (before
/// `__ft_prof` when `profile` is set) and every def the plan placed becomes
/// a pointer at a static offset into that arena — one allocation for the
/// whole call instead of one `calloc` per def entry, zero-filled via
/// `memset` only where the plan's liveness analysis could not prove
/// write-before-read. Callers passing a NULL arena get a function-local
/// `malloc`/`free` of the planned peak, so the kernel stays self-contained.
/// Small constant-extent `CpuStack` defs keep their stack-array emission;
/// defs the plan could not size fall back to `calloc` as before.
///
/// The plan must have been computed for this exact `func` (same `VarDef`
/// pre-order); a per-def name mismatch degrades that def to `calloc` rather
/// than aliasing the wrong storage.
pub fn emit_c_planned(
    func: &Func,
    plan: &ft_analysis::MemPlan,
    profile: bool,
) -> (String, Vec<ProfSite>) {
    emit_unit(func, Some(plan), profile)
}

fn emit_unit(
    func: &Func,
    plan: Option<&ft_analysis::MemPlan>,
    profile: bool,
) -> (String, Vec<ProfSite>) {
    let mut names = Mangler::new();
    let syms = bind_signature(&mut names, func);
    let arena: Vec<Option<ArenaSlot>> = plan.map_or_else(Vec::new, |pl| {
        let n_defs = pl.entries.iter().map(|e| e.def_idx + 1).max().unwrap_or(0);
        let mut v = vec![None; n_defs];
        for e in &pl.entries {
            if let (Some(offset), Some(bytes)) = (e.offset, e.bytes) {
                v[e.def_idx] = Some(ArenaSlot {
                    name: e.name.clone(),
                    offset,
                    bytes,
                    must_zero: e.must_zero,
                });
            }
        }
        v
    });
    let any_planned = arena.iter().any(Option::is_some);
    let mut em = Emitter {
        dtypes: HashMap::new(),
        shapes: HashMap::new(),
        names,
        out: String::new(),
        indent: 0,
        tmp: 0,
        prof: profile.then(Vec::new),
        loop_depth: 0,
        arena,
        def_idx: 0,
        parallel_depth: 0,
    };
    for p in &func.params {
        em.dtypes.insert(p.name.clone(), p.dtype);
        em.shapes.insert(p.name.clone(), p.shape.clone());
    }
    let mut sig: Vec<String> = Vec::new();
    for (p, ident) in func.params.iter().zip(&syms.params) {
        let c = ctype(p.dtype);
        let qual = if p.atype == AccessType::Input {
            "const "
        } else {
            ""
        };
        sig.push(format!("{qual}{c}* {ident}"));
    }
    for ident in &syms.size_params {
        sig.push(format!("int64_t {ident}"));
    }
    if plan.is_some() {
        sig.push("unsigned char* __ft_arena".to_string());
    }
    if profile {
        sig.push("uint64_t *__ft_prof".to_string());
    }
    let mut out = String::from(PREAMBLE);
    if profile {
        out.push_str(PROF_PREAMBLE);
    }
    let _ = writeln!(out, "\nvoid {}({}) {{", syms.func, sig.join(", "));
    if any_planned {
        // A NULL arena means the caller did not preallocate: own a
        // planned-peak-sized block for the duration of the call.
        let peak = plan.map_or(0, |pl| pl.planned_peak_bytes);
        out.push_str("    unsigned char* __ft_arena_base = __ft_arena;\n");
        out.push_str("    int __ft_arena_owned = 0;\n");
        let _ = writeln!(
            out,
            "    if (!__ft_arena_base) {{ __ft_arena_base = \
             (unsigned char*)malloc({peak}); __ft_arena_owned = 1; }}"
        );
    } else if plan.is_some() {
        out.push_str("    (void)__ft_arena;\n");
    }
    em.indent = 1;
    em.stmt(&func.body);
    out.push_str(&em.out);
    if any_planned {
        out.push_str("    if (__ft_arena_owned) free(__ft_arena_base);\n");
    }
    out.push_str("}\n");
    (out, em.prof.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::ForProperty;

    fn sample() -> Func {
        Func::new("axpy")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::InOut)
            .size_param("n")
            .body(for_with(
                "i",
                0,
                var("n"),
                ForProperty::parallel(ParallelScope::OpenMp),
                store(
                    "y",
                    [var("i")],
                    load("y", [var("i")]) + load("x", [var("i")]) * 2.0f32,
                ),
            ))
    }

    #[test]
    fn emits_signature_and_pragma() {
        let c = emit_c(&sample());
        assert!(c.contains("void axpy(const float* x, float* y, int64_t n)"), "{c}");
        assert!(c.contains("#pragma omp parallel for"), "{c}");
        assert!(c.contains("y[i] = (y[i] + (x[i] * 2.0))"), "{c}");
    }

    #[test]
    fn emits_locals_and_atomics() {
        let f = Func::new("f")
            .param("h", [4], DataType::F32, AccessType::Output)
            .param("idx", [64], DataType::I32, AccessType::Input)
            .body(for_with(
                "i",
                0,
                64,
                ForProperty::parallel(ParallelScope::OpenMp),
                Stmt::new(StmtKind::ReduceTo {
                    var: "h".to_string(),
                    indices: vec![Expr::cast(DataType::I64, load("idx", [var("i")]))],
                    op: ReduceOp::Add,
                    value: Expr::FloatConst(1.0),
                    atomic: true,
                }),
            ));
        let c = emit_c(&f);
        assert!(c.contains("#pragma omp atomic"), "{c}");
        let f2 = Func::new("g")
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [8],
                DataType::F32,
                MemType::CpuStack,
                store("y", [0], load("t", [0])),
            ));
        let c2 = emit_c(&f2);
        assert!(c2.contains("float t[8] = {0};"), "{c2}");
    }

    #[test]
    fn multi_dim_indexing_linearizes() {
        let f = Func::new("f")
            .param("a", [var("n"), var("m")], DataType::F64, AccessType::Output)
            .size_param("n")
            .size_param("m")
            .body(store("a", ft_ir::idx![var("n") - 1, 0], 1.0f64));
        let c = emit_c(&f);
        assert!(c.contains("a[((n - 1)) * (m) + (0)] = 1.0;"), "{c}");
    }

    #[test]
    fn names_are_sanitized() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t.cache",
                [2],
                DataType::F32,
                MemType::CpuStack,
                store("y", [0], load("t.cache", [0])),
            ));
        let c = emit_c(&f);
        assert!(c.contains("t_cache"), "{c}");
        assert!(!c.contains("t.cache["), "{c}");
    }

    #[test]
    fn colliding_param_names_get_distinct_identifiers() {
        // `x.y` and `x_y` both sanitize to `x_y`; the mangler must keep
        // them apart and `c_symbols` must agree with the emitted signature.
        let f = Func::new("f")
            .param("x.y", [1], DataType::F32, AccessType::Input)
            .param("x_y", [1], DataType::F32, AccessType::Output)
            .body(store("x_y", [0], load("x.y", [0]) + 1.0f32));
        let syms = c_symbols(&f);
        assert_eq!(syms.params.len(), 2);
        assert_ne!(syms.params[0], syms.params[1], "{syms:?}");
        let c = emit_c(&f);
        let sig = format!(
            "void {}(const float* {}, float* {})",
            syms.func, syms.params[0], syms.params[1]
        );
        assert!(c.contains(&sig), "expected `{sig}` in:\n{c}");
        // The store targets the second param, the load reads the first.
        assert!(
            c.contains(&format!(
                "{}[0] = ({}[0] + 1.0);",
                syms.params[1], syms.params[0]
            )),
            "{c}"
        );
    }

    #[test]
    fn local_colliding_with_param_is_suffixed() {
        // A local IR name `t.` sanitizes to `t_`; so does a sibling `t_`
        // param — and a local literally named `t` shadows the param. Both
        // cases must produce distinct identifiers with stores still routed
        // to the right buffer.
        let f = Func::new("f")
            .param("t", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [2],
                DataType::F32,
                MemType::CpuStack,
                store("t", [0], load("t", [1])),
            ));
        let c = emit_c(&f);
        assert!(c.contains("float t_2[2] = {0};"), "{c}");
        // Inside the VarDef, `t` resolves to the inner binding.
        assert!(c.contains("t_2[0] = t_2[1];"), "{c}");
    }

    #[test]
    fn reserved_names_are_avoided() {
        // A function literally named `main` must not clash with a driver's
        // `main`, and a param named like a preamble helper must be renamed.
        let f = Func::new("main")
            .param("ft_fdiv", [1], DataType::F32, AccessType::Output)
            .body(store("ft_fdiv", [0], 1.0f32));
        let syms = c_symbols(&f);
        assert_ne!(syms.func, "main");
        assert_ne!(syms.params[0], "ft_fdiv");
        let c = emit_c(&f);
        assert!(c.contains(&format!("void {}(", syms.func)), "{c}");
    }

    #[test]
    fn profiled_unit_brackets_outermost_loops_only() {
        // Two top-level nests, one with an inner loop: exactly two sites,
        // labelled like the interpreter's profile nodes, and the inner loop
        // is not bracketed.
        let inner = for_("j", 0, var("n"), store("y", [var("j")], 1.0f32));
        let f = Func::new("two_nests")
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(Stmt::new(StmtKind::Block(vec![
                for_("i", 0, var("n"), inner),
                for_("k", 0, var("n"), store("y", [var("k")], 2.0f32)),
            ])));
        let (c, sites) = emit_c_profiled(&f);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].desc, "for i");
        assert_eq!(sites[1].desc, "for k");
        assert!(c.contains("uint64_t *__ft_prof"), "{c}");
        assert!(c.contains("#include <time.h>"), "{c}");
        assert!(c.contains("if (__ft_prof) __ft_prof[0] +="), "{c}");
        assert!(c.contains("if (__ft_prof) __ft_prof[1] +="), "{c}");
        assert_eq!(c.matches("clock_gettime").count(), 4, "{c}");
        // The unprofiled emission is untouched by the profiling machinery.
        let plain = emit_c(&f);
        assert!(!plain.contains("__ft_prof"), "{plain}");
        assert!(!plain.contains("clock_gettime"), "{plain}");
    }

    #[test]
    fn planned_unit_places_defs_in_the_arena() {
        // A heap-sized local (CpuHeap, so the stack path does not claim it)
        // written before read: the planned unit must address it at a static
        // arena offset with no memset, no calloc, and a NULL-arena malloc
        // fallback sized to the planned peak.
        let f = Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(var_def(
                "t",
                [var("n")],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    for_("i", 0, var("n"), store("t", [var("i")], load("x", [var("i")]))),
                    for_("i", 0, var("n"), store("y", [var("i")], load("t", [var("i")]))),
                ]),
            ));
        let sizes = HashMap::from([("n".to_string(), 256i64)]);
        let plan = ft_analysis::MemPlan::plan(&f, &sizes);
        assert!(plan.planned_peak_bytes > 0, "{plan:?}");
        let (c, sites) = emit_c_planned(&f, &plan, false);
        assert!(sites.is_empty());
        assert!(c.contains("unsigned char* __ft_arena"), "{c}");
        assert!(c.contains("float* t = (float*)(__ft_arena_base + 0);"), "{c}");
        assert!(!c.contains("calloc"), "{c}");
        assert!(
            c.contains(&format!("malloc({})", plan.planned_peak_bytes)),
            "{c}"
        );
        assert!(c.contains("if (__ft_arena_owned) free(__ft_arena_base);"), "{c}");
        // Write-before-read was proven, so no memset for `t`.
        assert!(!c.contains("memset(t"), "{c}");
        // The unplanned emission is byte-identical to what emit_c always
        // produced: no arena symbols anywhere.
        assert!(!emit_c(&f).contains("__ft_arena"));
    }

    #[test]
    fn profiled_c_compiles_if_cc_available() {
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let (c, _) = emit_c_profiled(&sample());
        let Ok(mut child) = Command::new("cc")
            .args(["-fsyntax-only", "-fopenmp", "-xc", "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
        else {
            eprintln!("cc unavailable; skipping compile check");
            return;
        };
        child
            .stdin
            .as_mut()
            .expect("piped stdin")
            .write_all(c.as_bytes())
            .expect("write source");
        let out = child.wait_with_output().expect("cc runs");
        assert!(
            out.status.success(),
            "cc rejected the profiled C:\n{}\n--- source ---\n{c}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    #[test]
    fn generated_c_compiles_if_cc_available() {
        use std::io::Write as _;
        use std::process::{Command, Stdio};
        let c = emit_c(&sample());
        let Ok(mut child) = Command::new("cc")
            .args(["-fsyntax-only", "-fopenmp", "-xc", "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
        else {
            eprintln!("cc unavailable; skipping compile check");
            return;
        };
        child
            .stdin
            .as_mut()
            .expect("piped stdin")
            .write_all(c.as_bytes())
            .expect("write source");
        let out = child.wait_with_output().expect("cc runs");
        assert!(
            out.status.success(),
            "cc rejected the generated C:\n{}\n--- source ---\n{c}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
