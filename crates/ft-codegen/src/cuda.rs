//! CUDA-flavoured source emission for GPU schedules.
//!
//! Each outermost GPU-parallel loop nest becomes one `__global__` kernel; a
//! host function launches them in order. Block/thread-scope loops map to
//! `blockIdx.*` / `threadIdx.*` with bound guards; `GpuShared` definitions
//! become `__shared__` arrays; atomic reductions become `atomicAdd`.

use ft_ir::{
    AccessType, BinaryOp, DataType, Expr, Func, MemType, ParallelScope, ReduceOp, Stmt, StmtKind,
    UnaryOp,
};
use std::collections::HashMap;
use std::fmt::Write as _;

fn ctype(dt: DataType) -> &'static str {
    match dt {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::I32 => "int",
        DataType::I64 => "long long",
        DataType::Bool => "bool",
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

struct Cuda {
    shapes: HashMap<String, Vec<Expr>>,
    shared: std::collections::HashSet<String>,
    in_kernel: bool,
    out: String,
    indent: usize,
}

impl Cuda {
    /// Whether a sub-tree writes any `__shared__` tensor (which requires a
    /// barrier before other threads read it — paper §4.3's "inserting
    /// thread synchronizing statements").
    fn writes_shared(&self, s: &Stmt) -> bool {
        let mut hit = false;
        s.walk(&mut |st| match &st.kind {
            StmtKind::Store { var, .. } | StmtKind::ReduceTo { var, .. } => {
                hit |= self.shared.contains(var);
            }
            _ => {}
        });
        hit
    }
}

impl Cuda {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::IntConst(v) => format!("{v}"),
            Expr::FloatConst(v) => {
                if *v == f64::INFINITY {
                    "INFINITY".into()
                } else if *v == f64::NEG_INFINITY {
                    "-INFINITY".into()
                } else {
                    format!("{v:?}f")
                }
            }
            Expr::BoolConst(v) => format!("{v}"),
            Expr::Var(n) => sanitize(n),
            Expr::Load { var, indices } => self.index_expr(var, indices),
            Expr::Unary { op, a } => {
                let x = self.expr(a);
                match op {
                    UnaryOp::Neg => format!("(-{x})"),
                    UnaryOp::Not => format!("(!{x})"),
                    UnaryOp::Abs => format!("fabsf({x})"),
                    UnaryOp::Sqrt => format!("sqrtf({x})"),
                    UnaryOp::Exp => format!("expf({x})"),
                    UnaryOp::Ln => format!("logf({x})"),
                    UnaryOp::Sigmoid => format!("(1.0f / (1.0f + expf(-({x}))))"),
                    UnaryOp::Tanh => format!("tanhf({x})"),
                    UnaryOp::Sign => format!("(({x} > 0) - ({x} < 0))"),
                }
            }
            Expr::Binary { op, a, b } => {
                let x = self.expr(a);
                let y = self.expr(b);
                match op {
                    BinaryOp::Add => format!("({x} + {y})"),
                    BinaryOp::Sub => format!("({x} - {y})"),
                    BinaryOp::Mul => format!("({x} * {y})"),
                    BinaryOp::Div => format!("({x} / {y})"),
                    BinaryOp::Mod => format!("(((({x}) % ({y})) + ({y})) % ({y}))"),
                    BinaryOp::Min => format!("min({x}, {y})"),
                    BinaryOp::Max => format!("max({x}, {y})"),
                    BinaryOp::Pow => format!("powf({x}, {y})"),
                    BinaryOp::Eq => format!("({x} == {y})"),
                    BinaryOp::Ne => format!("({x} != {y})"),
                    BinaryOp::Lt => format!("({x} < {y})"),
                    BinaryOp::Le => format!("({x} <= {y})"),
                    BinaryOp::Gt => format!("({x} > {y})"),
                    BinaryOp::Ge => format!("({x} >= {y})"),
                    BinaryOp::And => format!("({x} && {y})"),
                    BinaryOp::Or => format!("({x} || {y})"),
                }
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => format!(
                "({} ? {} : {})",
                self.expr(cond),
                self.expr(then),
                self.expr(otherwise)
            ),
            Expr::Cast { dtype, a } => format!("(({}){})", ctype(*dtype), self.expr(a)),
        }
    }

    fn index_expr(&self, var: &str, indices: &[Expr]) -> String {
        if indices.is_empty() {
            return format!("{}[0]", sanitize(var));
        }
        let shape = self.shapes.get(var).cloned().unwrap_or_default();
        let mut s = String::new();
        for (d, idx) in indices.iter().enumerate() {
            if d == 0 {
                s = self.expr(idx);
            } else {
                s = format!("({s}) * ({}) + ({})", self.expr(&shape[d]), self.expr(idx));
            }
        }
        format!("{}[{s}]", sanitize(var))
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Block(v) => {
                let live: Vec<&Stmt> = v.iter().filter(|st| !st.is_empty()).collect();
                for (i, st) in live.iter().enumerate() {
                    self.stmt(st);
                    if self.in_kernel && i + 1 < live.len() && self.writes_shared(st) {
                        self.line("__syncthreads();");
                    }
                }
            }
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                body,
                ..
            } => {
                self.shapes.insert(name.clone(), shape.clone());
                if *mtype == MemType::GpuShared {
                    self.shared.insert(name.clone());
                }
                let n: i64 = shape
                    .iter()
                    .map(|e| {
                        ft_passes::const_fold_expr(e.clone())
                            .as_int()
                            .unwrap_or(1)
                    })
                    .product::<i64>()
                    .max(1);
                let prefix = match mtype {
                    MemType::GpuShared => "__shared__ ",
                    _ => "",
                };
                self.line(&format!(
                    "{prefix}{} {}[{n}];",
                    ctype(*dtype),
                    sanitize(name)
                ));
                self.stmt(body);
            }
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                let i = sanitize(iter);
                match property.parallel {
                    ParallelScope::CudaBlockX
                    | ParallelScope::CudaBlockY
                    | ParallelScope::CudaThreadX
                    | ParallelScope::CudaThreadY => {
                        let hw = match property.parallel {
                            ParallelScope::CudaBlockX => "blockIdx.x",
                            ParallelScope::CudaBlockY => "blockIdx.y",
                            ParallelScope::CudaThreadX => "threadIdx.x",
                            _ => "threadIdx.y",
                        };
                        self.line(&format!(
                            "long long {i} = {} + (long long){hw};",
                            self.expr(begin)
                        ));
                        self.line(&format!("if ({i} < {}) {{", self.expr(end)));
                        self.indent += 1;
                        self.stmt(body);
                        self.indent -= 1;
                        self.line("}");
                    }
                    _ => {
                        self.line(&format!(
                            "for (long long {i} = {}; {i} < {}; ++{i}) {{",
                            self.expr(begin),
                            self.expr(end)
                        ));
                        self.indent += 1;
                        self.stmt(body);
                        self.indent -= 1;
                        self.line("}");
                    }
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                self.line(&format!("if ({}) {{", self.expr(cond)));
                self.indent += 1;
                self.stmt(then);
                self.indent -= 1;
                if let Some(o) = otherwise {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmt(o);
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Store {
                var,
                indices,
                value,
            } => {
                let lhs = self.index_expr(var, indices);
                let rhs = self.expr(value);
                self.line(&format!("{lhs} = {rhs};"));
            }
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } => {
                let lhs = self.index_expr(var, indices);
                let rhs = self.expr(value);
                match (op, atomic) {
                    (ReduceOp::Add, true) => {
                        self.line(&format!("atomicAdd(&{lhs}, {rhs});"));
                    }
                    (ReduceOp::Add, false) => self.line(&format!("{lhs} += {rhs};")),
                    (ReduceOp::Mul, _) => self.line(&format!("{lhs} *= {rhs};")),
                    (ReduceOp::Min, _) => self.line(&format!("{lhs} = min({lhs}, {rhs});")),
                    (ReduceOp::Max, _) => self.line(&format!("{lhs} = max({lhs}, {rhs});")),
                }
            }
            StmtKind::LibCall { kernel, .. } => {
                self.line(&format!("/* library call: {kernel} (cuBLAS in deployment) */"));
            }
        }
    }
}

/// Extent of a GPU-parallel loop, printed for the launch configuration.
fn launch_extent(e: &Expr, b: &Expr, shapes: &Cuda) -> String {
    let ext = ft_passes::const_fold_expr(e.clone() - b.clone());
    shapes.expr(&ext)
}

/// Emit CUDA-flavoured source: one `__global__` kernel per outermost
/// GPU-parallel region, plus a host launcher function.
pub fn emit_cuda(func: &Func) -> String {
    let mut shapes = HashMap::new();
    for p in &func.params {
        shapes.insert(p.name.clone(), p.shape.clone());
    }
    // Parameters of every kernel: all tensors + size params.
    let mut params: Vec<String> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    for p in &func.params {
        let qual = if p.atype == AccessType::Input {
            "const "
        } else {
            ""
        };
        params.push(format!("{qual}{}* {}", ctype(p.dtype), sanitize(&p.name)));
        args.push(sanitize(&p.name));
    }
    for sp in &func.size_params {
        params.push(format!("long long {}", sanitize(sp)));
        args.push(sanitize(sp));
    }

    let mut kernels = String::new();
    let mut host = String::new();
    let mut k = 0usize;
    // Outermost GPU-parallel loops become kernels; everything else runs on
    // the host (sequentially, in order).
    let mut host_emit = Cuda {
        shapes: shapes.clone(),
        shared: Default::default(),
        in_kernel: false,
        out: String::new(),
        indent: 1,
    };
    #[allow(clippy::too_many_arguments)] // one-shot recursive splitter
    fn walk(
        s: &Stmt,
        k: &mut usize,
        kernels: &mut String,
        host: &mut Cuda,
        params: &[String],
        args: &[String],
        shapes: &HashMap<String, Vec<Expr>>,
        func_name: &str,
    ) {
        match &s.kind {
            StmtKind::For {
                begin,
                end,
                property,
                body,
                ..
            } if property.parallel.is_gpu() => {
                let name = format!("{}_kernel{k}", sanitize(func_name));
                *k += 1;
                let mut em = Cuda {
                    shapes: shapes.clone(),
                    shared: Default::default(),
                    in_kernel: true,
                    out: String::new(),
                    indent: 1,
                };
                // Grid/block sizes: this loop plus an inner thread loop.
                let grid = launch_extent(end, begin, &em);
                let mut block = "1".to_string();
                if let StmtKind::For {
                    begin: b2,
                    end: e2,
                    property: p2,
                    ..
                } = &ft_schedule::util::peel(body).kind
                {
                    if p2.parallel.is_gpu_thread() {
                        block = launch_extent(e2, b2, &em);
                    }
                }
                em.stmt(s);
                let _ = writeln!(
                    kernels,
                    "__global__ void {name}({}) {{\n{}}}\n",
                    params.join(", "),
                    em.out
                );
                host.line(&format!(
                    "{name}<<<dim3({grid}), dim3({block})>>>({});",
                    args.join(", ")
                ));
                host.line("cudaDeviceSynchronize();");
            }
            StmtKind::Block(v) => {
                for st in v {
                    walk(st, k, kernels, host, params, args, shapes, func_name);
                }
            }
            StmtKind::VarDef { name, shape, .. } => {
                host.shapes.insert(name.clone(), shape.clone());
                // Host-side buffers for locals spanning kernels.
                host.line(&format!(
                    "/* device buffer `{}` allocated via cudaMalloc in deployment */",
                    sanitize(name)
                ));
                let StmtKind::VarDef { body, .. } = &s.kind else {
                    unreachable!()
                };
                walk(body, k, kernels, host, params, args, shapes, func_name);
            }
            _ => {
                host.stmt(s);
            }
        }
    }
    walk(
        &func.body,
        &mut k,
        &mut kernels,
        &mut host_emit,
        &params,
        &args,
        &shapes,
        &func.name,
    );
    let _ = writeln!(host, "void {}({}) {{", sanitize(&func.name), params.join(", "));
    host.push_str(&host_emit.out);
    host.push_str("}\n");
    format!("#include <cuda_runtime.h>\n#include <math.h>\n\n{kernels}\n{host}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::ForProperty;

    fn gpu_func() -> Func {
        Func::new("saxpy")
            .param_on("x", [4096], DataType::F32, MemType::GpuGlobal, AccessType::Input)
            .param_on("y", [4096], DataType::F32, MemType::GpuGlobal, AccessType::InOut)
            .body(for_with(
                "b",
                0,
                32,
                ForProperty::parallel(ParallelScope::CudaBlockX),
                for_with(
                    "t",
                    0,
                    128,
                    ForProperty::parallel(ParallelScope::CudaThreadX),
                    store(
                        "y",
                        [var("b") * 128 + var("t")],
                        load("y", [var("b") * 128 + var("t")])
                            + load("x", [var("b") * 128 + var("t")]),
                    ),
                ),
            ))
    }

    #[test]
    fn emits_kernel_and_launch() {
        let cu = emit_cuda(&gpu_func());
        assert!(cu.contains("__global__ void saxpy_kernel0"), "{cu}");
        assert!(cu.contains("blockIdx.x"), "{cu}");
        assert!(cu.contains("threadIdx.x"), "{cu}");
        assert!(cu.contains("<<<dim3(32), dim3(128)>>>"), "{cu}");
        assert!(cu.contains("cudaDeviceSynchronize();"), "{cu}");
    }

    #[test]
    fn shared_memory_and_atomics() {
        let body = for_with(
            "b",
            0,
            8,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            var_def(
                "t",
                [32],
                DataType::F32,
                MemType::GpuShared,
                Stmt::new(StmtKind::ReduceTo {
                    var: "y".to_string(),
                    indices: vec![Expr::IntConst(0)],
                    op: ReduceOp::Add,
                    value: load("t", [0]),
                    atomic: true,
                }),
            ),
        );
        let f = Func::new("f")
            .param_on("y", [1], DataType::F32, MemType::GpuGlobal, AccessType::Output)
            .body(body);
        let cu = emit_cuda(&f);
        assert!(cu.contains("__shared__ float t[32];"), "{cu}");
        assert!(cu.contains("atomicAdd(&y[0]"), "{cu}");
    }

    #[test]
    fn shared_writes_get_barriers() {
        // Fill shared memory in a thread loop, then read it: a
        // __syncthreads() must separate the two phases.
        let body = for_with(
            "b",
            0,
            8,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            var_def(
                "t",
                [32],
                DataType::F32,
                MemType::GpuShared,
                block([
                    for_with(
                        "tx",
                        0,
                        32,
                        ForProperty::parallel(ParallelScope::CudaThreadX),
                        store("t", [var("tx")], load("x", [var("b") * 32 + var("tx")])),
                    ),
                    for_with(
                        "tx2",
                        0,
                        32,
                        ForProperty::parallel(ParallelScope::CudaThreadX),
                        store("y", [var("b") * 32 + var("tx2")], load("t", ft_ir::idx![Expr::IntConst(31) - var("tx2")])),
                    ),
                ]),
            ),
        );
        let f = Func::new("rev")
            .param_on("x", [256], DataType::F32, MemType::GpuGlobal, AccessType::Input)
            .param_on("y", [256], DataType::F32, MemType::GpuGlobal, AccessType::Output)
            .body(body);
        let cu = emit_cuda(&f);
        assert!(cu.contains("__syncthreads();"), "{cu}");
        // The barrier sits between the fill and the read.
        let sync_pos = cu.find("__syncthreads();").unwrap();
        let read_pos = cu.find("y[").unwrap();
        assert!(sync_pos < read_pos, "{cu}");
    }

    #[test]
    fn two_parallel_regions_two_kernels() {
        let k1 = for_with(
            "b",
            0,
            8,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            store("y", [var("b")], 1.0f32),
        );
        let k2 = for_with(
            "b2",
            0,
            8,
            ForProperty::parallel(ParallelScope::CudaBlockX),
            store("y", [var("b2")], 2.0f32),
        );
        let f = Func::new("f")
            .param_on("y", [8], DataType::F32, MemType::GpuGlobal, AccessType::Output)
            .body(block([k1, k2]));
        let cu = emit_cuda(&f);
        assert!(cu.contains("f_kernel0"), "{cu}");
        assert!(cu.contains("f_kernel1"), "{cu}");
    }
}
