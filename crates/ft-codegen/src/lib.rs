//! # ft-codegen — source emission for native backends
//!
//! FreeTensor "generates OpenMP or CUDA code from the AST and invokes
//! dedicated backend compilers like gcc or nvcc" (paper §4.3). This crate
//! reproduces the source-emission half:
//!
//! * [`c::emit_c`] — C99 with OpenMP pragmas (`parallel for`, `simd`,
//!   `atomic`) for CPU schedules; compile-checked against the host C
//!   compiler in the test suite;
//! * [`cuda::emit_cuda`] — CUDA-flavoured source: one `__global__` kernel per
//!   outermost GPU-parallel nest plus a host launcher.
//!
//! In this repository the measured substrate is the instrumented interpreter
//! (`ft-runtime`), per the substitution rules in `DESIGN.md`; the emitters
//! exist to close the pipeline the way the paper describes and are validated
//! for syntactic well-formedness.

pub mod c;
pub mod cuda;

pub use c::{c_symbols, emit_c, emit_c_planned, emit_c_profiled, CSymbols, Mangler, ProfSite};
pub use cuda::emit_cuda;

use ft_ir::Func;
use ft_trace::TraceSink;

/// [`emit_c`] with a provenance span on the compile track of `sink`.
pub fn emit_c_traced(func: &Func, sink: Option<&TraceSink>) -> String {
    emit_traced("emit_c", func, sink, emit_c)
}

/// [`emit_cuda`] with a provenance span on the compile track of `sink`.
pub fn emit_cuda_traced(func: &Func, sink: Option<&TraceSink>) -> String {
    emit_traced("emit_cuda", func, sink, emit_cuda)
}

fn emit_traced(
    name: &str,
    func: &Func,
    sink: Option<&TraceSink>,
    emit: fn(&Func) -> String,
) -> String {
    let mut span = sink.map(|s| s.span("codegen", name));
    let src = emit(func);
    if let Some(sp) = span.as_mut() {
        sp.arg("func", &func.name);
        sp.arg("bytes", src.len());
    }
    src
}
