//! The execution backends a variant is pushed through.
//!
//! Every backend is driven through the common
//! [`ExecutionEngine`](ft_runtime::ExecutionEngine) trait — the harness no
//! longer special-cases how each one is invoked, only which one to
//! construct.

use ft_ir::{AccessType, Func};
use ft_runtime::{
    CompiledEngine, ExecutionEngine, RunContext, Runtime, TensorVal, ThreadedEngine, VmRuntime,
};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Worker threads used by the thread-parallel backend.
pub const THREADS: usize = 4;

/// One way of executing a scheduled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Sequential instrumented interpreter ([`Runtime::run`]).
    Interp,
    /// Real-thread parallel runtime ([`ThreadedEngine`]).
    Threaded,
    /// C codegen, compiled with the system compiler and executed as a child
    /// process (stdout protocol).
    Codegen,
    /// Fast-mode bytecode VM ([`VmRuntime`]) — a wall-clock engine, with an
    /// automatic interpreter fallback for statically untypable programs.
    Vm,
    /// Native compiled engine ([`CompiledEngine`]): C → `cc` → shared
    /// object, loaded and called in-process through the artifact cache.
    Compiled,
}

/// All backend variants, in sweep order.
const ALL: [Backend; 5] = [
    Backend::Interp,
    Backend::Threaded,
    Backend::Codegen,
    Backend::Vm,
    Backend::Compiled,
];

impl Backend {
    /// Stable lower-case name (used in repro files).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Threaded => "threaded",
            Backend::Codegen => "codegen",
            Backend::Vm => "vm",
            Backend::Compiled => "compiled",
        }
    }

    /// Inverse of [`Backend::name`].
    pub fn from_name(name: &str) -> Option<Backend> {
        ALL.into_iter().find(|b| b.name() == name)
    }

    /// All backends usable in this environment: the two compiler-based
    /// backends are included only when a C compiler is on `PATH`.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Interp, Backend::Threaded, Backend::Vm];
        if crate::cjit::cc_available() {
            v.push(Backend::Codegen);
            v.push(Backend::Compiled);
        }
        v
    }
}

/// The process-wide compiled engine: sharing one instance lets every
/// variant in a sweep reuse the in-memory kernel memo on top of the on-disk
/// artifact cache.
pub fn shared_compiled_engine() -> &'static CompiledEngine {
    static ENGINE: OnceLock<CompiledEngine> = OnceLock::new();
    ENGINE.get_or_init(CompiledEngine::new)
}

/// Construct the engine behind a backend.
pub fn engine_for(backend: Backend) -> Box<dyn ExecutionEngine> {
    match backend {
        Backend::Interp => Box::new(Runtime::new()),
        Backend::Threaded => Box::new(ThreadedEngine::new(THREADS)),
        Backend::Codegen => Box::new(crate::cjit::CjitEngine),
        Backend::Vm => Box::new(VmRuntime::new()),
        Backend::Compiled => Box::new(shared_compiled_engine().clone()),
    }
}

/// Names of the function's output (and in-out) tensors.
pub fn output_names(func: &Func) -> Vec<String> {
    func.params
        .iter()
        .filter(|p| matches!(p.atype, AccessType::Output | AccessType::InOut))
        .map(|p| p.name.clone())
        .collect()
}

/// Execute `func` on `backend`, returning its output tensors by name.
///
/// # Errors
///
/// A human-readable description of whatever failed — runtime error, C
/// compilation failure, child timeout, or malformed child output. Errors
/// are treated as divergences by the differential checker.
pub fn run_backend(
    backend: Backend,
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
) -> Result<HashMap<String, TensorVal>, String> {
    let engine = engine_for(backend);
    engine
        .run(func, inputs, &HashMap::new())
        .map(|r| r.outputs)
        .map_err(|e| format!("{}: {e}", engine.name()))
}

/// Execute `func` on `backend` through the *arena-planned* path: the engine
/// runs with a reusable [`RunContext`] (memory-planned buffer pools, staging
/// reuse), and the codegen backend emits through `emit_c_planned`. The
/// context is warmed with one recycled run first, so the returned outputs
/// come from the buffer-*reuse* steady state — the riskiest path, where a
/// stale or mis-packed buffer would surface.
///
/// # Errors
///
/// As [`run_backend`].
pub fn run_backend_planned(
    backend: Backend,
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
) -> Result<HashMap<String, TensorVal>, String> {
    if backend == Backend::Codegen {
        return crate::cjit::run_c_planned(func, inputs, &HashMap::new());
    }
    let engine = engine_for(backend);
    let mut ctx = RunContext::new();
    if let Ok(warm) = engine.run_with(func, inputs, &HashMap::new(), &mut ctx) {
        ctx.recycle(warm).expect("recycle into bound context");
    }
    engine
        .run_with(func, inputs, &HashMap::new(), &mut ctx)
        .map(|r| r.outputs)
        .map_err(|e| format!("{} (planned): {e}", engine.name()))
}

/// Re-run `func` on `backend` with a fresh metrics registry installed and
/// return the frozen telemetry of exactly that run (run/kernel wall
/// histograms, cache and compile counters, pool stats). The run's outputs
/// are discarded and failures are tolerated — a failing run still produces
/// the telemetry that led up to the failure, which is precisely what a
/// miscompile repro wants to carry.
pub fn run_backend_telemetry(
    backend: Backend,
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
) -> ft_metrics::MetricsSnapshot {
    let mut engine = engine_for(backend);
    let metrics = ft_metrics::Metrics::new();
    engine.set_metrics(Some(metrics.clone()));
    let _ = engine.run(func, inputs, &HashMap::new());
    metrics.snapshot()
}
