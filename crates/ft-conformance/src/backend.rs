//! The execution backends a variant is pushed through.

use ft_ir::{AccessType, Func};
use ft_runtime::{run_threaded, run_vm, Runtime, TensorVal};
use std::collections::HashMap;

/// Worker threads used by the thread-parallel backend.
pub const THREADS: usize = 4;

/// One way of executing a scheduled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Sequential instrumented interpreter ([`Runtime::run`]).
    Interp,
    /// Real-thread parallel runtime ([`run_threaded`]).
    Threaded,
    /// C codegen, compiled with the system compiler and executed.
    Codegen,
    /// Fast-mode bytecode VM ([`run_vm`]) — the wall-clock engine, with an
    /// automatic interpreter fallback for statically untypable programs.
    Vm,
}

impl Backend {
    /// Stable lower-case name (used in repro files).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Threaded => "threaded",
            Backend::Codegen => "codegen",
            Backend::Vm => "vm",
        }
    }

    /// Inverse of [`Backend::name`].
    pub fn from_name(name: &str) -> Option<Backend> {
        [Backend::Interp, Backend::Threaded, Backend::Codegen, Backend::Vm]
            .into_iter()
            .find(|b| b.name() == name)
    }

    /// All backends usable in this environment: the codegen backend is
    /// included only when a C compiler is on `PATH`.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Interp, Backend::Threaded, Backend::Vm];
        if crate::cjit::cc_available() {
            v.push(Backend::Codegen);
        }
        v
    }
}

/// Names of the function's output (and in-out) tensors.
pub fn output_names(func: &Func) -> Vec<String> {
    func.params
        .iter()
        .filter(|p| matches!(p.atype, AccessType::Output | AccessType::InOut))
        .map(|p| p.name.clone())
        .collect()
}

/// Execute `func` on `backend`, returning its output tensors by name.
///
/// # Errors
///
/// A human-readable description of whatever failed — runtime error, C
/// compilation failure, or malformed child output. Errors are treated as
/// divergences by the differential checker.
pub fn run_backend(
    backend: Backend,
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
) -> Result<HashMap<String, TensorVal>, String> {
    match backend {
        Backend::Interp => Runtime::new()
            .run(func, inputs, &HashMap::new())
            .map(|r| r.outputs)
            .map_err(|e| format!("interp: {e:?}")),
        Backend::Threaded => run_threaded(func, inputs, &HashMap::new(), THREADS)
            .map_err(|e| format!("threaded: {e:?}")),
        Backend::Codegen => crate::cjit::run_c(func, inputs, &HashMap::new()),
        Backend::Vm => run_vm(func, inputs, &HashMap::new()).map_err(|e| format!("vm: {e:?}")),
    }
}
