//! The codegen backend: wrap `ft_codegen::emit_c` output in a generated
//! `main()`, compile it with the system C compiler, run the binary, and
//! parse the printed outputs back into tensors.
//!
//! Input data is embedded in the generated translation unit as static array
//! initializers (test-scale tensors are small), so the child process needs
//! no I/O protocol beyond printing its outputs.

use ft_ir::{AccessType, DataType, Expr, Func};
use ft_runtime::{
    output_with_timeout, ExecutionEngine, PerfCounters, RunResult, RuntimeError, TensorVal,
};
use ft_trace::TraceSink;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Whether a C compiler (`cc`) is available on `PATH`.
pub use ft_runtime::cc_available;

/// Deadline for one `cc` invocation.
const CC_TIMEOUT: Duration = Duration::from_secs(120);
/// Deadline for one run of the generated binary. A miscompiled infinite
/// loop must not hang a 128-variant sweep; the child is killed and the
/// variant reports a structured `child_timeout` error instead.
const RUN_TIMEOUT: Duration = Duration::from_secs(60);

fn child_timeout_err(what: &str, timeout: Duration) -> String {
    format!(
        "child_timeout: `{what}` exceeded {} ms and was killed",
        timeout.as_millis()
    )
}

/// The process-based codegen backend behind the common
/// [`ExecutionEngine`] trait: compile to a standalone binary, run it as a
/// child, parse its printed outputs. Slower and more isolated than
/// `ft_runtime::CompiledEngine` — useful precisely because a miscompile
/// can only take down the child, not the harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct CjitEngine;

impl ExecutionEngine for CjitEngine {
    fn name(&self) -> &'static str {
        "codegen"
    }

    fn run(
        &self,
        func: &Func,
        inputs: &HashMap<String, TensorVal>,
        sizes: &HashMap<String, i64>,
    ) -> Result<RunResult, RuntimeError> {
        let outputs = run_c(func, inputs, sizes).map_err(RuntimeError::Native)?;
        Ok(RunResult {
            outputs,
            counters: PerfCounters::default(),
        })
    }

    fn set_sink(&mut self, _sink: Option<TraceSink>) {}

    fn sink(&self) -> Option<&TraceSink> {
        None
    }
}

fn ctype(dt: DataType) -> &'static str {
    match dt {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::I32 => "int32_t",
        DataType::I64 => "int64_t",
        DataType::Bool => "bool",
    }
}

/// Evaluate a (constant or size-parameter) shape extent.
fn eval_extent(e: &Expr, sizes: &HashMap<String, i64>) -> Result<i64, String> {
    use ft_ir::BinaryOp::*;
    match e {
        Expr::IntConst(v) => Ok(*v),
        Expr::Var(n) => sizes
            .get(n)
            .copied()
            .ok_or_else(|| format!("unresolved size `{n}` in shape")),
        Expr::Binary { op, a, b } => {
            let x = eval_extent(a, sizes)?;
            let y = eval_extent(b, sizes)?;
            Ok(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                // A zero size-parameter must surface as a shrinkable error,
                // not a div_euclid panic that aborts the whole harness.
                Div if y == 0 => return Err("division by zero in shape extent".to_string()),
                Div => x.div_euclid(y),
                Mod if y == 0 => return Err("division by zero in shape extent".to_string()),
                Mod => x.rem_euclid(y),
                Min => x.min(y),
                Max => x.max(y),
                _ => return Err(format!("unsupported shape operator {op:?}")),
            })
        }
        other => Err(format!("non-constant shape expression {other:?}")),
    }
}

fn literal(dt: DataType, v: f64) -> String {
    if dt.is_float() {
        // `{:e}` keeps full f64 precision via the round-trip guarantee of
        // Rust's float formatting; the C compiler rounds back to float for
        // f32 arrays, recovering the original value exactly.
        format!("{v:e}")
    } else {
        format!("{}", v as i64)
    }
}

/// Compile and run `func`, returning its output tensors.
///
/// # Errors
///
/// Describes the failing stage: shape evaluation, C compilation, child
/// execution, or output parsing.
pub fn run_c(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
) -> Result<HashMap<String, TensorVal>, String> {
    run_c_impl(func, inputs, sizes, false)
}

/// As [`run_c`], but emit the kernel through the memory planner
/// ([`ft_codegen::emit_c_planned`]): planned `VarDef`s live at static
/// offsets in one arena allocation instead of per-def `calloc`s. The driver
/// passes a NULL arena, exercising the kernel's own malloc-fallback path —
/// the same code shape the in-process compiled engine runs cold.
pub fn run_c_planned(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
) -> Result<HashMap<String, TensorVal>, String> {
    run_c_impl(func, inputs, sizes, true)
}

fn run_c_impl(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
    planned: bool,
) -> Result<HashMap<String, TensorVal>, String> {
    if !cc_available() {
        return Err("no C compiler on PATH".to_string());
    }
    // The emitter disambiguates colliding names (`x.y` vs `x_y`) with
    // suffixes; `c_symbols` re-runs the same mangler so the driver's array
    // declarations line up with the emitted signature, param by param.
    let syms = ft_codegen::c_symbols(func);
    // Resolve every parameter's concrete shape, carrying its C identifier.
    let mut shapes: Vec<(String, String, Vec<usize>, DataType, AccessType)> = Vec::new();
    for (p, ident) in func.params.iter().zip(&syms.params) {
        let sh: Vec<usize> = p
            .shape
            .iter()
            .map(|e| eval_extent(e, sizes).map(|v| v.max(0) as usize))
            .collect::<Result<_, _>>()?;
        shapes.push((p.name.clone(), ident.clone(), sh, p.dtype, p.atype));
    }

    // Generate the translation unit: emitted kernel + main() driver.
    let mut src = if planned {
        let plan = ft_analysis::MemPlan::plan(func, sizes);
        ft_codegen::emit_c_planned(func, &plan, false).0
    } else {
        ft_codegen::emit_c(func)
    };
    src.push_str("\n#include <stdio.h>\n\nint main(void) {\n");
    for (name, c, shape, dtype, atype) in &shapes {
        let n = shape.iter().product::<usize>().max(1);
        match atype {
            AccessType::Input | AccessType::InOut => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| format!("missing input `{name}`"))?;
                if t.numel() != shape.iter().product::<usize>() {
                    return Err(format!("input `{name}` has wrong element count"));
                }
                let vals: Vec<String> = t
                    .to_f64_vec()
                    .into_iter()
                    .map(|v| literal(*dtype, v))
                    .collect();
                let _ = writeln!(
                    src,
                    "    static {} {c}[{n}] = {{{}}};",
                    ctype(*dtype),
                    vals.join(", ")
                );
            }
            _ => {
                let _ = writeln!(src, "    static {} {c}[{n}];", ctype(*dtype));
            }
        }
    }
    let mut args: Vec<String> = shapes.iter().map(|(_, c, ..)| c.clone()).collect();
    for sp in &func.size_params {
        let v = sizes
            .get(sp)
            .copied()
            .ok_or_else(|| format!("unresolved size `{sp}`"))?;
        args.push(format!("(int64_t){v}"));
    }
    if planned {
        // Planned signatures take the arena pointer last; NULL selects the
        // kernel's internal malloc fallback.
        args.push("(unsigned char*)0".to_string());
    }
    let _ = writeln!(src, "    {}({});", syms.func, args.join(", "));
    for (i, (_, c, shape, dtype, atype)) in shapes.iter().enumerate() {
        if !matches!(atype, AccessType::Output | AccessType::InOut) {
            continue;
        }
        let n = shape.iter().product::<usize>().max(1);
        // Key the output protocol by parameter *position*, not name: two
        // IR names may print identically after C string escaping, while the
        // index is always unambiguous.
        let _ = writeln!(src, "    printf(\"OUT %d %d\\n\", {i}, {n});");
        if dtype.is_float() {
            let _ = writeln!(
                src,
                "    for (int64_t i = 0; i < {n}; ++i) printf(\"%.17g\\n\", (double){c}[i]);"
            );
        } else {
            let _ = writeln!(
                src,
                "    for (int64_t i = 0; i < {n}; ++i) printf(\"%lld\\n\", (long long){c}[i]);"
            );
        }
    }
    src.push_str("    return 0;\n}\n");

    // Unique scratch paths per (process, invocation).
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "ftconf-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir();
    let src_path: PathBuf = dir.join(format!("{tag}.c"));
    let bin_path: PathBuf = dir.join(format!("{tag}.bin"));
    std::fs::write(&src_path, &src).map_err(|e| format!("write {}: {e}", src_path.display()))?;
    let cleanup = || {
        let _ = std::fs::remove_file(&src_path);
        let _ = std::fs::remove_file(&bin_path);
    };

    // OpenMP when the toolchain supports it; the pragmas degrade to warnings
    // (sequential execution — still a valid semantics check) otherwise.
    let mut compiled = false;
    let mut last_err = String::new();
    for extra in [&["-fopenmp"][..], &[][..]] {
        let out = output_with_timeout(
            Command::new("cc")
                .arg("-O1")
                .args(extra)
                .arg(&src_path)
                .arg("-o")
                .arg(&bin_path)
                .arg("-lm"),
            CC_TIMEOUT,
        )
        .map_err(|e| {
            cleanup();
            format!("spawn cc: {e}")
        })?;
        if out.timed_out {
            cleanup();
            return Err(child_timeout_err("cc", CC_TIMEOUT));
        }
        if out.status.success() {
            compiled = true;
            break;
        }
        last_err = String::from_utf8_lossy(&out.stderr).into_owned();
    }
    if !compiled {
        cleanup();
        return Err(format!("cc failed:\n{last_err}"));
    }
    let out = output_with_timeout(&mut Command::new(&bin_path), RUN_TIMEOUT).map_err(|e| {
        cleanup();
        format!("run generated binary: {e}")
    })?;
    cleanup();
    if out.timed_out {
        return Err(child_timeout_err(&bin_path.display().to_string(), RUN_TIMEOUT));
    }
    if !out.status.success() {
        return Err(format!("generated binary exited with {:?}", out.status));
    }

    // Parse the "OUT <param-index> <n>" / value-per-line protocol.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let mut outputs = HashMap::new();
    while let Some(header) = lines.next() {
        let mut parts = header.split_whitespace();
        if parts.next() != Some("OUT") {
            return Err(format!("unexpected output line `{header}`"));
        }
        let idx: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "missing output index".to_string())?;
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "missing output count".to_string())?;
        let (name, _, shape, ..) = shapes
            .get(idx)
            .ok_or_else(|| format!("output index {idx} out of range"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated output for `{name}`"))?;
            data.push(
                line.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad value `{line}` for `{name}`: {e}"))?,
            );
        }
        outputs.insert(name.clone(), TensorVal::from_f64(shape, data));
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn tiny_kernel_roundtrips_through_cc() {
        if !cc_available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let f = Func::new("scale2")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                store("y", [var("i")], load("x", [var("i")]) * 2.0f32),
            ));
        let x = TensorVal::from_f32(&[4], vec![1.0, -2.5, 3.25, 0.0]);
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x)].into_iter().collect();
        let out = run_c(&f, &inputs, &HashMap::new()).unwrap();
        assert_eq!(out["y"].to_f64_vec(), vec![2.0, -5.0, 6.5, 0.0]);
    }

    #[test]
    fn zero_size_divisor_is_an_error_not_a_panic() {
        let sizes = HashMap::from([("n".to_string(), 4i64), ("z".to_string(), 0i64)]);
        let e = eval_extent(&(var("n") / var("z")), &sizes).unwrap_err();
        assert!(e.contains("division by zero"), "{e}");
        let e = eval_extent(&(var("n") % var("z")), &sizes).unwrap_err();
        assert!(e.contains("division by zero"), "{e}");
    }

    #[test]
    fn colliding_param_names_do_not_shadow() {
        if !cc_available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        // `x.y` and `x_y` sanitize to the same C identifier; before the
        // mangler the driver declared two `static float x_y[...]` arrays
        // and the kernel read whichever shadowed. Each must round-trip its
        // own values.
        let f = Func::new("pick")
            .param("x.y", [2], DataType::F32, AccessType::Input)
            .param("x_y", [2], DataType::F32, AccessType::Input)
            .param("o", [2], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                2,
                store(
                    "o",
                    [var("i")],
                    load("x.y", [var("i")]) - load("x_y", [var("i")]),
                ),
            ));
        let inputs: HashMap<String, TensorVal> = [
            ("x.y".to_string(), TensorVal::from_f32(&[2], vec![10.0, 20.0])),
            ("x_y".to_string(), TensorVal::from_f32(&[2], vec![1.0, 2.0])),
        ]
        .into_iter()
        .collect();
        let out = run_c(&f, &inputs, &HashMap::new()).unwrap();
        assert_eq!(out["o"].to_f64_vec(), vec![9.0, 18.0]);
    }
}
