//! The codegen backend: wrap `ft_codegen::emit_c` output in a generated
//! `main()`, compile it with the system C compiler, run the binary, and
//! parse the printed outputs back into tensors.
//!
//! Input data is embedded in the generated translation unit as static array
//! initializers (test-scale tensors are small), so the child process needs
//! no I/O protocol beyond printing its outputs.

use ft_ir::{AccessType, DataType, Expr, Func};
use ft_runtime::TensorVal;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Whether a C compiler (`cc`) is available on `PATH`.
pub fn cc_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        Command::new("cc")
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

/// Same identifier mangling as `ft_codegen::c`.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

fn ctype(dt: DataType) -> &'static str {
    match dt {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::I32 => "int32_t",
        DataType::I64 => "int64_t",
        DataType::Bool => "bool",
    }
}

/// Evaluate a (constant or size-parameter) shape extent.
fn eval_extent(e: &Expr, sizes: &HashMap<String, i64>) -> Result<i64, String> {
    use ft_ir::BinaryOp::*;
    match e {
        Expr::IntConst(v) => Ok(*v),
        Expr::Var(n) => sizes
            .get(n)
            .copied()
            .ok_or_else(|| format!("unresolved size `{n}` in shape")),
        Expr::Binary { op, a, b } => {
            let x = eval_extent(a, sizes)?;
            let y = eval_extent(b, sizes)?;
            Ok(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x.div_euclid(y),
                Mod => x.rem_euclid(y),
                Min => x.min(y),
                Max => x.max(y),
                _ => return Err(format!("unsupported shape operator {op:?}")),
            })
        }
        other => Err(format!("non-constant shape expression {other:?}")),
    }
}

fn literal(dt: DataType, v: f64) -> String {
    if dt.is_float() {
        // `{:e}` keeps full f64 precision via the round-trip guarantee of
        // Rust's float formatting; the C compiler rounds back to float for
        // f32 arrays, recovering the original value exactly.
        format!("{v:e}")
    } else {
        format!("{}", v as i64)
    }
}

/// Compile and run `func`, returning its output tensors.
///
/// # Errors
///
/// Describes the failing stage: shape evaluation, C compilation, child
/// execution, or output parsing.
pub fn run_c(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    sizes: &HashMap<String, i64>,
) -> Result<HashMap<String, TensorVal>, String> {
    if !cc_available() {
        return Err("no C compiler on PATH".to_string());
    }
    // Resolve every parameter's concrete shape.
    let mut shapes: Vec<(String, Vec<usize>, DataType, AccessType)> = Vec::new();
    for p in &func.params {
        let sh: Vec<usize> = p
            .shape
            .iter()
            .map(|e| eval_extent(e, sizes).map(|v| v.max(0) as usize))
            .collect::<Result<_, _>>()?;
        shapes.push((p.name.clone(), sh, p.dtype, p.atype));
    }

    // Generate the translation unit: emitted kernel + main() driver.
    let mut src = ft_codegen::emit_c(func);
    src.push_str("\n#include <stdio.h>\n\nint main(void) {\n");
    for (name, shape, dtype, atype) in &shapes {
        let n = shape.iter().product::<usize>().max(1);
        let c = sanitize(name);
        match atype {
            AccessType::Input | AccessType::InOut => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| format!("missing input `{name}`"))?;
                if t.numel() != shape.iter().product::<usize>() {
                    return Err(format!("input `{name}` has wrong element count"));
                }
                let vals: Vec<String> = t
                    .to_f64_vec()
                    .into_iter()
                    .map(|v| literal(*dtype, v))
                    .collect();
                let _ = writeln!(
                    src,
                    "    static {} {c}[{n}] = {{{}}};",
                    ctype(*dtype),
                    vals.join(", ")
                );
            }
            _ => {
                let _ = writeln!(src, "    static {} {c}[{n}];", ctype(*dtype));
            }
        }
    }
    let mut args: Vec<String> = shapes.iter().map(|(n, ..)| sanitize(n)).collect();
    for sp in &func.size_params {
        let v = sizes
            .get(sp)
            .copied()
            .ok_or_else(|| format!("unresolved size `{sp}`"))?;
        args.push(format!("(int64_t){v}"));
    }
    let _ = writeln!(src, "    {}({});", sanitize(&func.name), args.join(", "));
    for (name, shape, dtype, atype) in &shapes {
        if !matches!(atype, AccessType::Output | AccessType::InOut) {
            continue;
        }
        let n = shape.iter().product::<usize>().max(1);
        let c = sanitize(name);
        let _ = writeln!(src, "    printf(\"OUT %s %d\\n\", \"{name}\", {n});");
        if dtype.is_float() {
            let _ = writeln!(
                src,
                "    for (int64_t i = 0; i < {n}; ++i) printf(\"%.17g\\n\", (double){c}[i]);"
            );
        } else {
            let _ = writeln!(
                src,
                "    for (int64_t i = 0; i < {n}; ++i) printf(\"%lld\\n\", (long long){c}[i]);"
            );
        }
    }
    src.push_str("    return 0;\n}\n");

    // Unique scratch paths per (process, invocation).
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "ftconf-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = std::env::temp_dir();
    let src_path: PathBuf = dir.join(format!("{tag}.c"));
    let bin_path: PathBuf = dir.join(format!("{tag}.bin"));
    std::fs::write(&src_path, &src).map_err(|e| format!("write {}: {e}", src_path.display()))?;
    let cleanup = || {
        let _ = std::fs::remove_file(&src_path);
        let _ = std::fs::remove_file(&bin_path);
    };

    // OpenMP when the toolchain supports it; the pragmas degrade to warnings
    // (sequential execution — still a valid semantics check) otherwise.
    let mut compiled = false;
    let mut last_err = String::new();
    for extra in [&["-fopenmp"][..], &[][..]] {
        let out = Command::new("cc")
            .arg("-O1")
            .args(extra)
            .arg(&src_path)
            .arg("-o")
            .arg(&bin_path)
            .arg("-lm")
            .output()
            .map_err(|e| {
                cleanup();
                format!("spawn cc: {e}")
            })?;
        if out.status.success() {
            compiled = true;
            break;
        }
        last_err = String::from_utf8_lossy(&out.stderr).into_owned();
    }
    if !compiled {
        cleanup();
        return Err(format!("cc failed:\n{last_err}"));
    }
    let out = Command::new(&bin_path).output().map_err(|e| {
        cleanup();
        format!("run generated binary: {e}")
    })?;
    cleanup();
    if !out.status.success() {
        return Err(format!("generated binary exited with {:?}", out.status));
    }

    // Parse the "OUT name n" / value-per-line protocol.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let mut outputs = HashMap::new();
    while let Some(header) = lines.next() {
        let mut parts = header.split_whitespace();
        if parts.next() != Some("OUT") {
            return Err(format!("unexpected output line `{header}`"));
        }
        let name = parts
            .next()
            .ok_or_else(|| "missing output name".to_string())?;
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "missing output count".to_string())?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("truncated output for `{name}`"))?;
            data.push(
                line.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad value `{line}` for `{name}`: {e}"))?,
            );
        }
        let shape = shapes
            .iter()
            .find(|(p, ..)| p == name)
            .map(|(_, s, ..)| s.clone())
            .ok_or_else(|| format!("unknown output `{name}`"))?;
        outputs.insert(name.to_string(), TensorVal::from_f64(&shape, data));
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn tiny_kernel_roundtrips_through_cc() {
        if !cc_available() {
            eprintln!("skipping: no C compiler");
            return;
        }
        let f = Func::new("scale2")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                store("y", [var("i")], load("x", [var("i")]) * 2.0f32),
            ));
        let x = TensorVal::from_f32(&[4], vec![1.0, -2.5, 3.25, 0.0]);
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x)].into_iter().collect();
        let out = run_c(&f, &inputs, &HashMap::new()).unwrap();
        assert_eq!(out["y"].to_f64_vec(), vec![2.0, -5.0, 6.5, 0.0]);
    }
}
