//! Differential comparison of one scheduled variant across backends.

use crate::backend::{output_names, run_backend, Backend};
use crate::workload::Case;
use ft_ir::Func;

/// One observed disagreement between a backend and the oracle (or a backend
/// failure, which counts as a disagreement).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The backend that disagreed.
    pub backend: Backend,
    /// Output tensor the disagreement was observed on (empty on a backend
    /// execution failure).
    pub output: String,
    /// Maximum element-wise absolute difference (infinite on failure).
    pub max_abs_err: f64,
    /// Human-readable description.
    pub message: String,
}

fn diverge(backend: Backend, output: &str, err: f64, what: &str) -> Divergence {
    Divergence {
        backend,
        output: output.to_string(),
        max_abs_err: err,
        message: format!(
            "backend {} disagrees on `{output}`: {what} (max_abs_err {err:.6e})",
            backend.name()
        ),
    }
}

/// Run `func` through every backend in `backends` and compare:
///
/// * each backend's main output against the plain-Rust oracle
///   (`case.oracle`), element-wise within `tol`;
/// * each non-interpreter backend's *other* outputs against the
///   interpreter's, so secondary outputs are covered too.
///
/// Returns the first divergence found, or `None` when all agree.
pub fn check_variant(
    case: &Case,
    func: &Func,
    backends: &[Backend],
    tol: f64,
) -> Option<Divergence> {
    // The interpreter doubles as the baseline for non-oracle outputs; run it
    // unconditionally (it is also the cheapest backend).
    let base = match run_backend(Backend::Interp, func, &case.inputs) {
        Ok(o) => o,
        Err(e) => {
            return Some(Divergence {
                backend: Backend::Interp,
                output: String::new(),
                max_abs_err: f64::INFINITY,
                message: e,
            })
        }
    };
    for b in backends {
        let outs = if *b == Backend::Interp {
            base.clone()
        } else {
            match run_backend(*b, func, &case.inputs) {
                Ok(o) => o,
                Err(e) => {
                    return Some(Divergence {
                        backend: *b,
                        output: String::new(),
                        max_abs_err: f64::INFINITY,
                        message: e,
                    })
                }
            }
        };
        for name in output_names(func) {
            let Some(got) = outs.get(&name) else {
                return Some(diverge(*b, &name, f64::INFINITY, "output missing"));
            };
            // Main output: judged against the plain-Rust oracle. Others:
            // against the interpreter baseline.
            let expect = if name == case.oracle_output {
                &case.oracle
            } else if *b == Backend::Interp {
                continue;
            } else {
                &base[&name]
            };
            if got.shape() != expect.shape() {
                return Some(diverge(*b, &name, f64::INFINITY, "shape mismatch"));
            }
            // NaN (from a NaN element on either side) must count as a
            // divergence, hence the explicit is_nan arm.
            let d = got.max_abs_diff(expect);
            if d.is_nan() || d > tol {
                return Some(diverge(*b, &name, d, "values differ from oracle"));
            }
        }
    }
    None
}
