//! Differential comparison of one scheduled variant across backends.

use crate::backend::{output_names, run_backend, run_backend_planned, Backend};
use crate::workload::Case;
use ft_ir::{Func, StmtKind};
use ft_runtime::TensorVal;
use std::collections::HashMap;

/// Tolerance contract for *gradient* comparisons.
///
/// Forward outputs are judged by the flat absolute bound of
/// [`check_variant`]; gradients must not reuse it. A backward pass is a
/// chain of `+=` accumulations whose rounding error grows with both the
/// magnitude of the accumulated value and the nesting depth of the
/// reduction loops, so a flat absolute epsilon either rejects correct
/// large-magnitude gradients or accepts wrong small-magnitude ones. The
/// gradient contract is therefore element-wise
///
/// ```text
/// |got − want| <= scale · (abs + rel · |want|)
/// ```
///
/// with `scale = 1 + reduction_depth(func)` ([`reduction_depth`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradTol {
    /// Absolute floor (covers want ≈ 0).
    pub abs: f64,
    /// Relative term (covers large accumulated magnitudes).
    pub rel: f64,
}

impl Default for GradTol {
    fn default() -> GradTol {
        // f32 accumulation over test-scale reductions: ~1e-6 relative noise
        // per step, two orders of margin.
        GradTol {
            abs: 1e-5,
            rel: 1e-3,
        }
    }
}

/// Maximum number of `For` loops enclosing any `ReduceTo` statement — a
/// structural proxy for how deeply nested the longest accumulation chain
/// is. Backward passes turn every forward read into a gradient `+=`, so
/// grad functions typically have depth ≥ 1; the depth scales [`GradTol`].
pub fn reduction_depth(func: &Func) -> usize {
    fn rec(s: &ft_ir::Stmt, depth: usize, max: &mut usize) {
        match &s.kind {
            StmtKind::For { body, .. } => rec(body, depth + 1, max),
            StmtKind::ReduceTo { .. } => *max = (*max).max(depth),
            _ => {
                for c in s.children() {
                    rec(c, depth, max);
                }
            }
        }
    }
    let mut max = 0;
    rec(&func.body, 0, &mut max);
    max
}

/// Element-wise check of `got` against `want` under the gradient contract.
/// Returns `Ok(())` when every element passes, `Err(max_abs_err)` with the
/// worst absolute error otherwise. NaN on either side fails.
pub fn grad_close(got: &TensorVal, want: &TensorVal, tol: &GradTol, scale: f64) -> Result<(), f64> {
    let mut worst = 0.0f64;
    let mut ok = true;
    for i in 0..want.numel() {
        let g = got.get_flat(i).as_f64();
        let w = want.get_flat(i).as_f64();
        let d = (g - w).abs();
        if d.is_nan() {
            return Err(f64::NAN);
        }
        if d > worst {
            worst = d;
        }
        if d > scale * (tol.abs + tol.rel * w.abs()) {
            ok = false;
        }
    }
    if ok {
        Ok(())
    } else {
        Err(worst)
    }
}

/// One observed disagreement between a backend and the oracle (or a backend
/// failure, which counts as a disagreement).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The backend that disagreed.
    pub backend: Backend,
    /// Output tensor the disagreement was observed on (empty on a backend
    /// execution failure).
    pub output: String,
    /// Maximum element-wise absolute difference (infinite on failure).
    pub max_abs_err: f64,
    /// Human-readable description.
    pub message: String,
}

fn diverge(backend: Backend, output: &str, err: f64, what: &str) -> Divergence {
    Divergence {
        backend,
        output: output.to_string(),
        max_abs_err: err,
        message: format!(
            "backend {} disagrees on `{output}`: {what} (max_abs_err {err:.6e})",
            backend.name()
        ),
    }
}

/// Re-run `func` on `b` through the arena-planned path
/// ([`run_backend_planned`]: memory-planned pools, warmed `RunContext`,
/// planned C emission) and compare every output against the
/// fresh-allocation outputs `plain` under `close` (`Ok` = agree, `Err` =
/// worst element-wise error). The planner only moves buffers; it must never
/// change what is computed, so deterministic backends are held to exact
/// equality — callers relax `close` only for the threaded backend, whose
/// lock-ordered reductions are not run-to-run reproducible to the bit.
fn check_planned_path(
    b: Backend,
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    plain: &HashMap<String, TensorVal>,
    close: impl Fn(&TensorVal, &TensorVal) -> Result<(), f64>,
) -> Option<Divergence> {
    let planned = match run_backend_planned(b, func, inputs) {
        Ok(o) => o,
        Err(e) => {
            return Some(Divergence {
                backend: b,
                output: String::new(),
                max_abs_err: f64::INFINITY,
                message: e,
            })
        }
    };
    for name in output_names(func) {
        let Some(got) = planned.get(&name) else {
            return Some(diverge(b, &name, f64::INFINITY, "planned run lost output"));
        };
        let want = &plain[&name];
        if got.shape() != want.shape() {
            return Some(diverge(b, &name, f64::INFINITY, "planned run shape mismatch"));
        }
        if let Err(d) = close(got, want) {
            return Some(diverge(
                b,
                &name,
                d,
                "arena-planned run differs from fresh-allocation run",
            ));
        }
    }
    None
}

/// Run `func` through every backend in `backends` and compare:
///
/// * each backend's main output against the plain-Rust oracle
///   (`case.oracle`), element-wise within `tol`;
/// * each non-interpreter backend's *other* outputs against the
///   interpreter's, so secondary outputs are covered too;
/// * each backend's *arena-planned* run (memory-planned pools through a
///   warmed `RunContext`, planned C emission) against its fresh-allocation
///   run — bit-identical on deterministic backends, within `tol` on the
///   threaded backend ([`check_planned_path`]).
///
/// Returns the first divergence found, or `None` when all agree.
pub fn check_variant(
    case: &Case,
    func: &Func,
    backends: &[Backend],
    tol: f64,
) -> Option<Divergence> {
    // The interpreter doubles as the baseline for non-oracle outputs; run it
    // unconditionally (it is also the cheapest backend).
    let base = match run_backend(Backend::Interp, func, &case.inputs) {
        Ok(o) => o,
        Err(e) => {
            return Some(Divergence {
                backend: Backend::Interp,
                output: String::new(),
                max_abs_err: f64::INFINITY,
                message: e,
            })
        }
    };
    for b in backends {
        let outs = if *b == Backend::Interp {
            base.clone()
        } else {
            match run_backend(*b, func, &case.inputs) {
                Ok(o) => o,
                Err(e) => {
                    return Some(Divergence {
                        backend: *b,
                        output: String::new(),
                        max_abs_err: f64::INFINITY,
                        message: e,
                    })
                }
            }
        };
        for name in output_names(func) {
            let Some(got) = outs.get(&name) else {
                return Some(diverge(*b, &name, f64::INFINITY, "output missing"));
            };
            // Main output: judged against the plain-Rust oracle. Others:
            // against the interpreter baseline.
            let expect = if name == case.oracle_output {
                &case.oracle
            } else if *b == Backend::Interp {
                continue;
            } else {
                &base[&name]
            };
            if got.shape() != expect.shape() {
                return Some(diverge(*b, &name, f64::INFINITY, "shape mismatch"));
            }
            // NaN (from a NaN element on either side) must count as a
            // divergence, hence the explicit is_nan arm.
            let d = got.max_abs_diff(expect);
            if d.is_nan() || d > tol {
                return Some(diverge(*b, &name, d, "values differ from oracle"));
            }
        }
        let bound = if *b == Backend::Threaded { tol } else { 0.0 };
        if let Some(d) = check_planned_path(*b, func, &case.inputs, &outs, |g, w| {
            let d = g.max_abs_diff(w);
            if d.is_nan() || d > bound {
                Err(d)
            } else {
                Ok(())
            }
        }) {
            return Some(d);
        }
    }
    None
}

/// Differential check of a *gradient* function across backends.
///
/// `inputs` must already contain the seed gradient (`{output}.grad` ones);
/// `oracle_grads` maps `.grad` output names to the plain-Rust oracle
/// gradient. Each backend's `.grad` outputs are judged against the oracle
/// under the [`GradTol`] contract (scaled by the function's reduction
/// depth); every other output of the grad function — the recomputed forward
/// outputs and consumed seeds — is judged against the interpreter baseline
/// under the same contract, so taped-vs-recomputed forward replay is
/// covered too. Each backend's arena-planned run is additionally diffed
/// against its fresh-allocation run, exactly as in [`check_variant`].
///
/// Returns the first divergence found, or `None` when all agree.
pub fn check_grad_variant(
    func: &Func,
    inputs: &HashMap<String, TensorVal>,
    oracle_grads: &HashMap<String, TensorVal>,
    backends: &[Backend],
    tol: &GradTol,
) -> Option<Divergence> {
    let scale = (1 + reduction_depth(func)) as f64;
    let base = match run_backend(Backend::Interp, func, inputs) {
        Ok(o) => o,
        Err(e) => {
            return Some(Divergence {
                backend: Backend::Interp,
                output: String::new(),
                max_abs_err: f64::INFINITY,
                message: e,
            })
        }
    };
    for b in backends {
        let outs = if *b == Backend::Interp {
            base.clone()
        } else {
            match run_backend(*b, func, inputs) {
                Ok(o) => o,
                Err(e) => {
                    return Some(Divergence {
                        backend: *b,
                        output: String::new(),
                        max_abs_err: f64::INFINITY,
                        message: e,
                    })
                }
            }
        };
        for name in output_names(func) {
            let Some(got) = outs.get(&name) else {
                return Some(diverge(*b, &name, f64::INFINITY, "gradient output missing"));
            };
            let (expect, what) = if let Some(oracle) = oracle_grads.get(&name) {
                (oracle, "gradient differs from oracle")
            } else if *b == Backend::Interp {
                continue;
            } else {
                (&base[&name], "gradient-function output differs from interp")
            };
            if got.shape() != expect.shape() {
                return Some(diverge(*b, &name, f64::INFINITY, "shape mismatch"));
            }
            if let Err(d) = grad_close(got, expect, tol, scale) {
                return Some(diverge(*b, &name, d, what));
            }
        }
        if let Some(d) = check_planned_path(*b, func, inputs, &outs, |g, w| {
            if *b == Backend::Threaded {
                grad_close(g, w, tol, scale)
            } else {
                let d = g.max_abs_diff(w);
                if d.is_nan() || d > 0.0 {
                    Err(d)
                } else {
                    Ok(())
                }
            }
        }) {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gradient contract differs from the forward contract in *both*
    /// directions: it accepts proportionally-noisy large gradients the old
    /// flat epsilon rejected, and rejects absolutely-small-but-relatively-
    /// wrong values the old epsilon let through. This test fails if
    /// gradient comparison is ever reverted to the forward `d > tol`
    /// contract.
    #[test]
    fn grad_tolerance_is_relative_not_forward_absolute() {
        let tol = GradTol::default();
        let forward_tol = crate::Config::default().tol;

        // Large magnitude, 5e-4 relative error: correct accumulation noise.
        let want = TensorVal::from_f64(&[1], vec![100.0]);
        let got = TensorVal::from_f64(&[1], vec![100.05]);
        let abs_err = got.max_abs_diff(&want);
        assert!(
            abs_err > forward_tol,
            "the old absolute contract would have rejected this ({abs_err:.1e} > {forward_tol:.1e})"
        );
        assert!(
            grad_close(&got, &want, &tol, 1.0).is_ok(),
            "the gradient contract must accept relative noise on large gradients"
        );

        // Small magnitude, error inside the old epsilon but far outside the
        // gradient floor: a genuinely wrong near-zero gradient.
        let want = TensorVal::from_f64(&[1], vec![0.0]);
        let got = TensorVal::from_f64(&[1], vec![3e-4]);
        assert!(got.max_abs_diff(&want) < forward_tol, "old contract accepted this");
        assert!(
            grad_close(&got, &want, &tol, 1.0).is_err(),
            "the gradient contract must reject wrong near-zero gradients"
        );

        // NaN always fails.
        let got = TensorVal::from_f64(&[1], vec![f64::NAN]);
        assert!(grad_close(&got, &want, &tol, 1.0).is_err());
    }

    #[test]
    fn reduction_depth_counts_enclosing_loops() {
        use ft_ir::prelude::*;
        let f = Func::new("f")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                4,
                for_(
                    "j",
                    0,
                    4,
                    reduce("y", [var("i")], ReduceOp::Add, load("x", [var("j")])),
                ),
            ));
        assert_eq!(reduction_depth(&f), 2);
        let g = Func::new("g")
            .param("x", [4], DataType::F32, AccessType::Input)
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(for_("i", 0, 4, store("y", [var("i")], load("x", [var("i")]))));
        assert_eq!(reduction_depth(&g), 0, "no ReduceTo, no accumulation depth");
    }
}
