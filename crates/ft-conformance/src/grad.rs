//! Gradient differential conformance: fuzz the AD pipeline (paper §5)
//! across backends the same way [`crate::run_conformance`] fuzzes the
//! forward scheduler.
//!
//! For every sampled schedule trace the sweep differentiates the workload
//! under both tape policies ([`TapePolicy::All`] and
//! [`TapePolicy::Selective`], sweeping `recompute_threshold` across the
//! def-cost boundary), in both composition orders ([`GradOrder`]), executes
//! the backward pass on every backend, and judges the `.grad` outputs
//! against (a) a plain-Rust oracle gradient per workload and (b) central
//! finite differences through the forward oracle — both under the
//! reduction-depth-scaled tolerance contract of [`crate::diff::GradTol`].
//! Divergences shrink to a minimal trace and are written as JSON repros
//! that capture the full `GradOptions` alongside the schedule.

use crate::backend::Backend;
use crate::diff::{check_grad_variant, reduction_depth, Divergence, GradTol};
use crate::ops::{self, ScheduleOp};
use crate::repro::Repro;
use crate::shrink::minimize;
use crate::workload::{Case, Workload};
use ft_autodiff::{grad_with, AdError, AdFault, GradOptions, TapePolicy};
use ft_ir::Func;
use ft_runtime::{Scalar, TensorVal};
use ft_workloads::Inputs;
use proptest::test_runner::TestRng;
use std::path::PathBuf;

/// Composition order of differentiation and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradOrder {
    /// Differentiate the user program, then apply the schedule trace to the
    /// gradient function (the paper's default pipeline: AD before
    /// optimization, §5).
    GradThenOpt,
    /// Apply the schedule trace to the forward program, then differentiate
    /// the scheduled function.
    OptThenGrad,
}

impl GradOrder {
    /// Both orders, in sweep order.
    pub const ALL: [GradOrder; 2] = [GradOrder::GradThenOpt, GradOrder::OptThenGrad];

    /// Stable name (used in repro files).
    pub fn name(&self) -> &'static str {
        match self {
            GradOrder::GradThenOpt => "grad-then-opt",
            GradOrder::OptThenGrad => "opt-then-grad",
        }
    }

    /// Inverse of [`GradOrder::name`].
    pub fn from_name(name: &str) -> Option<GradOrder> {
        GradOrder::ALL.iter().copied().find(|o| o.name() == name)
    }
}

/// Stable name of a tape policy (used in repro files).
pub fn policy_name(p: TapePolicy) -> &'static str {
    match p {
        TapePolicy::All => "all",
        TapePolicy::Selective => "selective",
        TapePolicy::None => "none",
    }
}

/// Inverse of [`policy_name`].
pub fn policy_from_name(name: &str) -> Option<TapePolicy> {
    [TapePolicy::All, TapePolicy::Selective, TapePolicy::None]
        .into_iter()
        .find(|p| policy_name(*p) == name)
}

/// Stable name of an injected AD fault (used in repro files).
pub fn fault_name(f: AdFault) -> &'static str {
    match f {
        AdFault::DropTapeVersionBump => "drop-tape-version-bump",
    }
}

/// Inverse of [`fault_name`].
pub fn fault_from_name(name: &str) -> Option<AdFault> {
    [AdFault::DropTapeVersionBump]
        .into_iter()
        .find(|f| fault_name(*f) == name)
}

/// One point of the gradient sweep: how the grad function of a variant was
/// built. Serialized into repro files so a divergence replays with the
/// exact `GradOptions` that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradSpec {
    /// Store-vs-recompute strategy.
    pub policy: TapePolicy,
    /// `Selective`'s def-cost threshold.
    pub recompute_threshold: usize,
    /// Differentiate-then-schedule or schedule-then-differentiate.
    pub order: GradOrder,
    /// Deliberate AD miscompilation (harness-validation runs only).
    pub fault: Option<AdFault>,
}

impl Default for GradSpec {
    fn default() -> GradSpec {
        GradSpec {
            policy: TapePolicy::Selective,
            recompute_threshold: GradOptions::default().recompute_threshold,
            order: GradOrder::GradThenOpt,
            fault: None,
        }
    }
}

impl GradSpec {
    fn options(&self) -> GradOptions {
        GradOptions {
            policy: self.policy,
            recompute_threshold: self.recompute_threshold,
            wrt: None,
            fault: self.fault,
        }
    }

    /// Compact human-readable label (`selective@16/grad-then-opt`).
    pub fn label(&self) -> String {
        let fault = self
            .fault
            .map(|f| format!("+fault:{}", fault_name(f)))
            .unwrap_or_default();
        format!(
            "{}@{}/{}{}",
            policy_name(self.policy),
            self.recompute_threshold,
            self.order.name(),
            fault
        )
    }
}

/// Build the gradient function of `func` for one sweep point, applying the
/// schedule trace on the side of AD that `spec.order` dictates. Returns the
/// function together with the legality-accepted subsequence of `trace`.
///
/// # Errors
///
/// [`AdError`] when the (possibly scheduled) program falls outside the
/// differentiable fragment — a structured skip for the sweep, not a
/// divergence.
pub fn build_grad_func(
    func: &Func,
    trace: &[ScheduleOp],
    spec: &GradSpec,
) -> Result<(Func, Vec<ScheduleOp>), AdError> {
    build_grad_func_traced(func, trace, spec, None)
}

/// [`build_grad_func`] with an optional trace sink capturing the schedule
/// decision log (used when writing repros).
pub fn build_grad_func_traced(
    func: &Func,
    trace: &[ScheduleOp],
    spec: &GradSpec,
    sink: Option<&ft_trace::TraceSink>,
) -> Result<(Func, Vec<ScheduleOp>), AdError> {
    let opts = spec.options();
    match spec.order {
        GradOrder::GradThenOpt => {
            let g = grad_with(func, &opts)?;
            Ok(ops::apply_trace_traced(&g, trace, sink))
        }
        GradOrder::OptThenGrad => {
            let (f, accepted) = ops::apply_trace_traced(func, trace, sink);
            let g = grad_with(&f, &opts)?;
            Ok((g, accepted))
        }
    }
}

/// The all-ones seed gradient `∂L/∂output` for a case (the loss is the sum
/// of the main output's elements).
pub fn ones_seed(case: &Case) -> TensorVal {
    TensorVal::from_f32(case.oracle.shape(), vec![1.0; case.oracle.numel()])
}

/// The inputs a grad function of `case` runs with: the case inputs plus the
/// consumed in-out seed `{output}.grad`.
pub fn grad_run_inputs(case: &Case, seed: &TensorVal) -> Inputs {
    let mut m = case.inputs.clone();
    m.insert(format!("{}.grad", case.oracle_output), seed.clone());
    m
}

/// Central-difference probes per differentiable input when validating the
/// analytic oracle gradient.
const FD_PROBES: usize = 6;

/// Validate the analytic oracle gradient of one case against central finite
/// differences through the plain-Rust forward oracle, probing a handful of
/// elements per input. Returns one message per input whose probes disagree.
///
/// Tolerances are scaled by the forward function's reduction depth, and an
/// input only counts as disagreeing when more than a third of its probes
/// mismatch: a single bad probe is almost always a kink (`abs`, `max`)
/// inside the `±h` interval, while a wrong gradient formula breaks nearly
/// every probe.
pub fn fd_disagreements(w: Workload, case: &Case, oracle_grads: &Inputs) -> Vec<String> {
    let scale = (1 + reduction_depth(&case.func)) as f64;
    let h = 1e-3f64;
    let mut names: Vec<&String> = oracle_grads.keys().collect();
    names.sort();
    let mut out = Vec::new();
    for gname in names {
        let Some(xname) = gname.strip_suffix(".grad") else {
            continue;
        };
        let gval = &oracle_grads[gname];
        let xt = &case.inputs[xname];
        let n = xt.numel();
        let probes = FD_PROBES.min(n);
        let mut bad = 0usize;
        let mut worst = 0.0f64;
        for t in 0..probes {
            let i = t * n / probes;
            let x0 = xt.get_flat(i).as_f64();
            // Write then read back so `h` is exact after f32 rounding.
            let mut plus = case.inputs.clone();
            let mut minus = case.inputs.clone();
            plus.get_mut(xname).unwrap().set_flat(i, Scalar::Float(x0 + h));
            minus.get_mut(xname).unwrap().set_flat(i, Scalar::Float(x0 - h));
            let xp = plus[xname].get_flat(i).as_f64();
            let xm = minus[xname].get_flat(i).as_f64();
            let lp: f64 = w.oracle_value(&plus).to_f64_vec().iter().sum();
            let lm: f64 = w.oracle_value(&minus).to_f64_vec().iter().sum();
            let fd = (lp - lm) / (xp - xm);
            let g = gval.get_flat(i).as_f64();
            // The forward oracle stores f32 elements, so the summed loss
            // carries ~1e-5 absolute noise; divided by 2h that dominates
            // curvature, hence the 1e-2 floor.
            let err = (fd - g).abs();
            if err.is_nan() || err > scale * (1e-2 + 1e-2 * g.abs()) {
                bad += 1;
                worst = worst.max(err);
            }
        }
        if bad * 3 > probes {
            out.push(format!(
                "{}: analytic `{gname}` disagrees with central differences on {bad}/{probes} probes (worst {worst:.3e})",
                w.name()
            ));
        }
    }
    out
}

/// Knobs of one gradient conformance sweep.
#[derive(Debug, Clone)]
pub struct GradConfig {
    /// Random schedule traces sampled per workload; each trace expands into
    /// {All, Selective} × {grad-then-opt, opt-then-grad} grad variants.
    pub samples_per_workload: usize,
    /// Maximum schedule ops drawn per trace (before legality filtering).
    pub max_ops: usize,
    /// Master seed; every variant derives its own deterministic stream.
    pub seed: u64,
    /// Gradient tolerance contract.
    pub tol: GradTol,
    /// Backends to execute.
    pub backends: Vec<Backend>,
    /// Where JSON repros of divergences are written.
    pub out_dir: PathBuf,
    /// `recompute_threshold` values rotated across samples. The default
    /// straddles the def-cost boundary of the default threshold (16): both
    /// sides of `def_cost == threshold` plus the extremes.
    pub thresholds: Vec<usize>,
    /// Deliberate AD miscompilation injected into every variant — used by
    /// harness-validation tests to prove the sweep catches AD bugs.
    pub fault: Option<AdFault>,
}

impl Default for GradConfig {
    fn default() -> GradConfig {
        GradConfig {
            samples_per_workload: 4,
            max_ops: 4,
            seed: 0x5EED,
            tol: GradTol::default(),
            backends: Backend::available(),
            out_dir: PathBuf::from("results/conformance/grad"),
            thresholds: vec![16, 0, 17, 15, 64],
            fault: None,
        }
    }
}

/// What happened to one grad variant of the sweep.
#[derive(Debug)]
pub struct GradVariantReport {
    /// Workload name.
    pub workload: String,
    /// Seed used for the synthetic inputs of this variant.
    pub input_seed: u64,
    /// How the grad function was built.
    pub spec: GradSpec,
    /// The legality-accepted schedule trace that was executed.
    pub trace: Vec<ScheduleOp>,
    /// `Some` when the (possibly scheduled) program fell outside the
    /// differentiable fragment — a structured skip, not a divergence.
    pub skipped: Option<String>,
    /// `None` when every backend agreed with the oracle gradient.
    pub divergence: Option<Divergence>,
    /// JSON repro path, when a divergence was recorded.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate outcome of [`run_grad_conformance`].
#[derive(Debug, Default)]
pub struct GradSummary {
    /// One entry per grad variant.
    pub variants: Vec<GradVariantReport>,
    /// Cases whose analytic oracle gradient failed the finite-difference
    /// cross-check (`workload`, message) — an oracle bug, independent of
    /// any backend.
    pub fd_failures: Vec<String>,
}

impl GradSummary {
    /// Variants on which all backends matched the oracle gradient.
    pub fn n_ok(&self) -> usize {
        self.variants
            .iter()
            .filter(|v| v.divergence.is_none() && v.skipped.is_none())
            .count()
    }

    /// Variants that diverged.
    pub fn n_diverged(&self) -> usize {
        self.variants.iter().filter(|v| v.divergence.is_some()).count()
    }

    /// Variants skipped with a structured [`AdError`].
    pub fn n_skipped(&self) -> usize {
        self.variants.iter().filter(|v| v.skipped.is_some()).count()
    }

    /// Human-readable one-screen report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "grad conformance: {} variants, {} ok, {} diverged, {} skipped, {} oracle FD failures\n",
            self.variants.len(),
            self.n_ok(),
            self.n_diverged(),
            self.n_skipped(),
            self.fd_failures.len()
        );
        for m in &self.fd_failures {
            s.push_str(&format!("  ORACLE-FD {m}\n"));
        }
        for v in self.variants.iter().filter(|v| v.divergence.is_some()) {
            let d = v.divergence.as_ref().unwrap();
            s.push_str(&format!(
                "  DIVERGED {} (input_seed {}, {}): backend {} output `{}` max_abs_err {:.3e}{}\n",
                v.workload,
                v.input_seed,
                v.spec.label(),
                d.backend.name(),
                d.output,
                d.max_abs_err,
                v.repro_path
                    .as_ref()
                    .map(|p| format!(" — repro: {}", p.display()))
                    .unwrap_or_default(),
            ));
        }
        s
    }

    /// Panic with the rendered report if any variant diverged or the oracle
    /// failed its finite-difference cross-check.
    pub fn assert_clean(&self) {
        assert!(
            self.n_diverged() == 0 && self.fd_failures.is_empty(),
            "{}",
            self.render()
        );
    }
}

/// Salt separating the gradient sweep's random streams from the forward
/// sweep's, so the two explore different (input, trace) points.
const GRAD_STREAM_SALT: u64 = 0x6772_6164; // "grad"

/// Run the full gradient differential sweep and return a per-variant
/// summary.
///
/// Divergent variants are shrunk to a minimal failing trace and a JSON
/// repro capturing the [`GradSpec`] is written under `cfg.out_dir`; the
/// sweep itself never panics — callers decide via
/// [`GradSummary::assert_clean`].
pub fn run_grad_conformance(cfg: &GradConfig) -> GradSummary {
    let mut summary = GradSummary::default();
    for w in Workload::ALL {
        for k in 0..cfg.samples_per_workload {
            let stream = crate::fnv1a(w.name().as_bytes())
                ^ cfg.seed
                ^ GRAD_STREAM_SALT
                ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let input_seed = stream & 0xFFFF;
            let case = w.build(input_seed);
            let seed = ones_seed(&case);
            let oracle_grads = w.oracle_grad(&case.inputs, &seed);
            // Cross-check the analytic oracle itself against central
            // differences once per case (schedule-independent).
            summary
                .fd_failures
                .extend(fd_disagreements(w, &case, &oracle_grads));
            let inputs = grad_run_inputs(&case, &seed);
            let mut rng = TestRng::from_seed_u64(stream);
            let raw = ops::sample_trace(&mut rng, cfg.max_ops);
            let threshold = cfg.thresholds[k % cfg.thresholds.len()];
            for policy in [TapePolicy::All, TapePolicy::Selective] {
                for order in GradOrder::ALL {
                    let spec = GradSpec {
                        policy,
                        recompute_threshold: threshold,
                        order,
                        fault: cfg.fault,
                    };
                    let (gfunc, trace) = match build_grad_func(&case.func, &raw, &spec) {
                        Ok(x) => x,
                        Err(e) => {
                            summary.variants.push(GradVariantReport {
                                workload: w.name().to_string(),
                                input_seed,
                                spec,
                                trace: Vec::new(),
                                skipped: Some(e.to_string()),
                                divergence: None,
                                repro_path: None,
                            });
                            continue;
                        }
                    };
                    let divergence =
                        check_grad_variant(&gfunc, &inputs, &oracle_grads, &cfg.backends, &cfg.tol);
                    let (divergence, repro_path) = match divergence {
                        None => (None, None),
                        Some(_) => {
                            let fails = |t: &[ScheduleOp]| {
                                build_grad_func(&case.func, t, &spec)
                                    .map(|(f, _)| {
                                        check_grad_variant(
                                            &f,
                                            &inputs,
                                            &oracle_grads,
                                            &cfg.backends,
                                            &cfg.tol,
                                        )
                                        .is_some()
                                    })
                                    .unwrap_or(false)
                            };
                            let minimized = minimize(&trace, fails);
                            // Replay the minimized trace once more with a
                            // sink so the repro embeds the decision log.
                            let sink = ft_trace::TraceSink::new();
                            let (f, _) = build_grad_func_traced(
                                &case.func,
                                &minimized,
                                &spec,
                                Some(&sink),
                            )
                            .expect("minimized trace must still differentiate");
                            let decision_log = sink
                                .decisions()
                                .iter()
                                .map(ft_trace::decision_line)
                                .collect();
                            let d = check_grad_variant(
                                &f,
                                &inputs,
                                &oracle_grads,
                                &cfg.backends,
                                &cfg.tol,
                            )
                            .expect("minimized trace must still fail");
                            // Telemetry of the diverging backward run
                            // rides along in the repro.
                            let metrics = crate::backend::run_backend_telemetry(
                                d.backend, &f, &inputs,
                            );
                            let repro = Repro {
                                workload: w.name().to_string(),
                                input_seed,
                                backend: d.backend.name().to_string(),
                                output: d.output.clone(),
                                max_abs_err: d.max_abs_err,
                                tol: cfg.tol.abs,
                                trace: minimized,
                                decision_log,
                                grad: Some(spec),
                                tol_rel: Some(cfg.tol.rel),
                                metrics: Some(metrics),
                            };
                            let path = repro.write(&cfg.out_dir).ok();
                            (Some(d), path)
                        }
                    };
                    summary.variants.push(GradVariantReport {
                        workload: w.name().to_string(),
                        input_seed,
                        spec,
                        trace,
                        skipped: None,
                        divergence,
                        repro_path,
                    });
                }
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrips() {
        for o in GradOrder::ALL {
            assert_eq!(GradOrder::from_name(o.name()), Some(o));
        }
        for p in [TapePolicy::All, TapePolicy::Selective, TapePolicy::None] {
            assert_eq!(policy_from_name(policy_name(p)), Some(p));
        }
        assert_eq!(
            fault_from_name(fault_name(AdFault::DropTapeVersionBump)),
            Some(AdFault::DropTapeVersionBump)
        );
        assert_eq!(GradOrder::from_name("nope"), None);
        assert_eq!(policy_from_name("nope"), None);
        assert_eq!(fault_from_name("nope"), None);
    }

    #[test]
    fn oracle_gradients_pass_finite_differences() {
        // The analytic oracle gradient of every workload agrees with
        // central differences through the forward oracle.
        for w in Workload::ALL {
            let case = w.build(11);
            let seed = ones_seed(&case);
            let grads = w.oracle_grad(&case.inputs, &seed);
            assert!(!grads.is_empty(), "{}: oracle gradient is empty", w.name());
            let bad = fd_disagreements(w, &case, &grads);
            assert!(bad.is_empty(), "{:?}", bad);
        }
    }

    #[test]
    fn fd_cross_check_catches_a_wrong_oracle() {
        // Scaling the oracle gradient by 2 must trip the FD check — the
        // cross-check is live, not vacuous.
        let w = Workload::Subdivnet;
        let case = w.build(11);
        let seed = ones_seed(&case);
        let mut grads = w.oracle_grad(&case.inputs, &seed);
        let g = grads.get_mut("e.grad").unwrap();
        for i in 0..g.numel() {
            let v = g.get_flat(i).as_f64();
            g.set_flat(i, Scalar::Float(v * 2.0));
        }
        assert!(!fd_disagreements(w, &case, &grads).is_empty());
    }

    #[test]
    fn both_orders_build_and_agree_on_interp() {
        // Sanity: grad-then-opt and opt-then-grad of an empty trace give
        // the same gradients on the interpreter.
        let w = Workload::Longformer;
        let case = w.build(5);
        let seed = ones_seed(&case);
        let inputs = grad_run_inputs(&case, &seed);
        let oracle = w.oracle_grad(&case.inputs, &seed);
        for order in GradOrder::ALL {
            let spec = GradSpec {
                order,
                ..GradSpec::default()
            };
            let (g, _) = build_grad_func(&case.func, &[], &spec).unwrap();
            let d = check_grad_variant(&g, &inputs, &oracle, &[Backend::Interp], &GradTol::default());
            assert!(d.is_none(), "{}: {:?}", order.name(), d);
        }
    }
}
