//! Minimal JSON support for repro files.
//!
//! The actual value type, writer, and parser live in `ft-trace` (which also
//! uses them for Chrome trace export/validation); this module re-exports
//! them so existing `crate::json::JsonVal` paths keep working with a single
//! implementation behind them.

pub use ft_trace::JsonVal;
