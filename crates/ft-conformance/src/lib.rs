//! # ft-conformance — cross-backend differential conformance testing
//!
//! FreeTensor's core soundness claim (paper §4) is that any schedule the
//! dependence checks *accept* preserves program semantics. This crate turns
//! that claim into an executable, Csmith-style differential test:
//!
//! 1. take each workload program (`ft-workloads`);
//! 2. sample a random schedule trace — `split` / `merge` / `reorder` /
//!    `fuse` / `parallelize` / `cache` / … — via proptest strategies, keeping
//!    only the transformations the legality checks accept ([`ops`]);
//! 3. execute the scheduled variant through every backend — the sequential
//!    instrumented interpreter, the real-thread parallel runtime, and the C
//!    codegen path (compiled with the system C compiler and *run*) — and
//!    compare every output element-wise against the plain-Rust oracle
//!    ([`diff`]);
//! 4. on divergence, shrink the trace to a minimal failing prefix
//!    ([`shrink`]) and write a machine-readable JSON repro under
//!    `results/conformance/` ([`repro`]).
//!
//! The [`grad`] module extends the same differential discipline to the AD
//! pipeline (paper §5): every sampled trace is also differentiated — under
//! both tape policies, sweeping `recompute_threshold` across the def-cost
//! boundary, in both grad/schedule composition orders — executed on every
//! backend, and judged against a plain-Rust oracle gradient plus central
//! finite differences under a reduction-depth-scaled tolerance
//! ([`diff::GradTol`]).
//!
//! The entry points are [`run_conformance`] and [`run_grad_conformance`];
//! `tests/conformance.rs` and `tests/grad_conformance.rs` at the workspace
//! root are the CI drivers.

pub mod backend;
pub mod cjit;
pub mod diff;
pub mod grad;
pub mod json;
pub mod ops;
pub mod repro;
pub mod shrink;
pub mod workload;

pub use backend::{run_backend_planned, run_backend_telemetry, Backend};
pub use diff::{check_grad_variant, check_variant, Divergence, GradTol};
pub use grad::{run_grad_conformance, GradConfig, GradOrder, GradSpec, GradSummary};
pub use ops::ScheduleOp;
pub use repro::Repro;
pub use shrink::minimize;
pub use workload::{Case, Workload};

use proptest::test_runner::TestRng;
use std::path::PathBuf;

/// Knobs of one conformance run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Random (workload × schedule) variants sampled per workload.
    pub samples_per_workload: usize,
    /// Maximum schedule ops drawn per variant (before legality filtering).
    pub max_ops: usize,
    /// Master seed; every variant derives its own deterministic stream.
    pub seed: u64,
    /// Maximum tolerated element-wise |backend − oracle| difference.
    pub tol: f64,
    /// Backends to execute. Defaults to all three when a C compiler is
    /// available, otherwise interpreter + threaded.
    pub backends: Vec<Backend>,
    /// Where JSON repros of divergences are written.
    pub out_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            samples_per_workload: 16,
            max_ops: 6,
            seed: 0x5EED,
            tol: 5e-4,
            backends: Backend::available(),
            out_dir: PathBuf::from("results/conformance"),
        }
    }
}

/// What happened to one sampled variant.
#[derive(Debug)]
pub struct VariantReport {
    /// Workload name.
    pub workload: String,
    /// Seed used for the synthetic inputs of this variant.
    pub input_seed: u64,
    /// The legality-accepted schedule trace that was executed.
    pub trace: Vec<ScheduleOp>,
    /// `None` when every backend agreed with the oracle.
    pub divergence: Option<Divergence>,
    /// JSON repro path, when a divergence was recorded.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate outcome of [`run_conformance`].
#[derive(Debug, Default)]
pub struct Summary {
    /// One entry per executed variant.
    pub variants: Vec<VariantReport>,
}

impl Summary {
    /// Variants on which all backends matched the oracle.
    pub fn n_ok(&self) -> usize {
        self.variants.iter().filter(|v| v.divergence.is_none()).count()
    }

    /// Variants that diverged.
    pub fn n_diverged(&self) -> usize {
        self.variants.len() - self.n_ok()
    }

    /// Human-readable one-screen report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "conformance: {} variants, {} ok, {} diverged\n",
            self.variants.len(),
            self.n_ok(),
            self.n_diverged()
        );
        for v in self.variants.iter().filter(|v| v.divergence.is_some()) {
            let d = v.divergence.as_ref().unwrap();
            s.push_str(&format!(
                "  DIVERGED {} (input_seed {}): backend {} output `{}` max_abs_err {:.3e}{}\n",
                v.workload,
                v.input_seed,
                d.backend.name(),
                d.output,
                d.max_abs_err,
                v.repro_path
                    .as_ref()
                    .map(|p| format!(" — repro: {}", p.display()))
                    .unwrap_or_default(),
            ));
        }
        s
    }

    /// Panic with the rendered report if any variant diverged.
    pub fn assert_clean(&self) {
        assert!(self.n_diverged() == 0, "{}", self.render());
    }
}

/// FNV-1a, used to derive per-variant seeds deterministically.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run the full differential sweep and return a per-variant summary.
///
/// Divergent variants are shrunk to a minimal failing prefix and a JSON
/// repro is written under `cfg.out_dir`; the sweep itself never panics —
/// callers decide via [`Summary::assert_clean`].
pub fn run_conformance(cfg: &Config) -> Summary {
    let mut summary = Summary::default();
    for w in Workload::ALL {
        for k in 0..cfg.samples_per_workload {
            let stream = fnv1a(w.name().as_bytes()) ^ cfg.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let input_seed = stream & 0xFFFF;
            let case = w.build(input_seed);
            let mut rng = TestRng::from_seed_u64(stream);
            let raw = ops::sample_trace(&mut rng, cfg.max_ops);
            let (func, trace) = ops::apply_trace(&case.func, &raw);
            let divergence = check_variant(&case, &func, &cfg.backends, cfg.tol);
            let (divergence, repro_path) = match divergence {
                None => (None, None),
                Some(_) => {
                    // Shrink on the accepted trace (rejected ops are no-ops,
                    // so the accepted subsequence reproduces the same func).
                    let minimized = minimize(&trace, |t| {
                        let (f, _) = ops::apply_trace(&case.func, t);
                        check_variant(&case, &f, &cfg.backends, cfg.tol).is_some()
                    });
                    // Replay the minimized trace once more with a trace sink
                    // so the repro can embed the schedule decision log.
                    let sink = ft_trace::TraceSink::new();
                    let (f, _) = ops::apply_trace_traced(&case.func, &minimized, Some(&sink));
                    let decision_log = sink
                        .decisions()
                        .iter()
                        .map(ft_trace::decision_line)
                        .collect();
                    let d = check_variant(&case, &f, &cfg.backends, cfg.tol)
                        .expect("minimized trace must still fail");
                    // One more run of the diverging backend with a fresh
                    // metrics registry, so the repro carries the runtime
                    // telemetry of the failure.
                    let metrics = backend::run_backend_telemetry(d.backend, &f, &case.inputs);
                    let repro = Repro {
                        workload: w.name().to_string(),
                        input_seed,
                        backend: d.backend.name().to_string(),
                        output: d.output.clone(),
                        max_abs_err: d.max_abs_err,
                        tol: cfg.tol,
                        trace: minimized,
                        decision_log,
                        grad: None,
                        tol_rel: None,
                        metrics: Some(metrics),
                    };
                    let path = repro.write(&cfg.out_dir).ok();
                    (Some(d), path)
                }
            };
            summary.variants.push(VariantReport {
                workload: w.name().to_string(),
                input_seed,
                trace,
                divergence,
                repro_path,
            });
        }
    }
    summary
}
