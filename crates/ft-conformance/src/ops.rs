//! The schedule-op vocabulary the sampler draws from, and its application
//! to a [`Schedule`] under legality checking.
//!
//! Ops address loops *positionally* (index into the pre-order list of `For`
//! statements, modulo its length) rather than by `StmtId`, so a trace stays
//! replayable after earlier ops have rewritten the tree — the same scheme
//! the auto-tuner baseline in `bench/table2` uses.

use ft_ir::{find, AccessType, ForProperty, Func, MemType, ParallelScope, Stmt, StmtId, StmtKind};
use ft_schedule::{Schedule, ScheduleError};
use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// One sampled schedule transformation.
///
/// Every variant except [`ScheduleOp::ParallelizeUnchecked`] goes through
/// `ft-schedule`, whose legality checks (backed by `ft-analysis` dependence
/// analysis) accept or reject it. `ParallelizeUnchecked` deliberately
/// *bypasses* the dependence check by mutating the IR directly — it exists
/// only for fault-injection tests proving the harness catches the class of
/// bug a dropped legality check would introduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleOp {
    /// `split(loops[i], factor)`.
    Split {
        /// Pre-order loop index (modulo loop count).
        loop_idx: usize,
        /// Split factor.
        factor: i64,
    },
    /// `merge(loops[i], its only inner loop)`.
    Merge {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `reorder([inner, outer])` on the 2-deep nest rooted at `loops[i]`.
    Reorder {
        /// Pre-order loop index of the outer loop.
        loop_idx: usize,
    },
    /// `fuse(loops[i], loops[j])`.
    Fuse {
        /// First loop index.
        first_idx: usize,
        /// Second loop index.
        second_idx: usize,
    },
    /// `parallelize(loops[i], OpenMp)` — *with* the dependence check.
    Parallelize {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `vectorize(loops[i])`.
    Vectorize {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `unroll(loops[i])`.
    Unroll {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// `cache(loops[i], input_params[j], CpuStack)`.
    Cache {
        /// Pre-order loop index of the scope.
        loop_idx: usize,
        /// Index into the function's `Input` tensor parameters.
        param_idx: usize,
    },
    /// `separate_tail(loops[i])`.
    SeparateTail {
        /// Pre-order loop index.
        loop_idx: usize,
    },
    /// Fault injection: mark `loops[i]` OpenMP-parallel directly in the IR,
    /// skipping `parallelize`'s dependence check entirely.
    ParallelizeUnchecked {
        /// Pre-order loop index.
        loop_idx: usize,
    },
}

/// Pre-order list of all `For` statements.
pub fn loops_of(func: &Func) -> Vec<StmtId> {
    find::find_stmts(&func.body, &|s| matches!(s.kind, StmtKind::For { .. }))
        .iter()
        .map(|s| s.id)
        .collect()
}

/// The iterator name of loop `id`, if it exists.
fn iter_name(func: &Func, id: StmtId) -> Option<String> {
    find::find_stmts(&func.body, &|s| s.id == id)
        .first()
        .and_then(|s| match &s.kind {
            StmtKind::For { iter, .. } => Some(iter.clone()),
            _ => None,
        })
}

/// The `For` that is the *only* statement of `outer`'s body, if any.
fn direct_inner_for(func: &Func, outer: StmtId) -> Option<StmtId> {
    let outer_stmt = find::find_stmts(&func.body, &|s| s.id == outer);
    let StmtKind::For { body, .. } = &outer_stmt.first()?.kind else {
        return None;
    };
    let inner: &Stmt = match &body.kind {
        StmtKind::Block(v) if v.len() == 1 => &v[0],
        _ => body,
    };
    matches!(inner.kind, StmtKind::For { .. }).then(|| inner.id)
}

/// Names of the function's `Input` tensor parameters (cache candidates).
fn input_params(func: &Func) -> Vec<String> {
    func.params
        .iter()
        .filter(|p| p.atype == AccessType::Input && !p.shape.is_empty())
        .map(|p| p.name.clone())
        .collect()
}

fn set_parallel_unchecked(s: &mut Stmt, id: StmtId) -> bool {
    if s.id == id {
        if let StmtKind::For { property, .. } = &mut s.kind {
            *property = ForProperty::parallel(ParallelScope::OpenMp);
            return true;
        }
    }
    match &mut s.kind {
        StmtKind::Block(v) => v.iter_mut().any(|st| set_parallel_unchecked(st, id)),
        StmtKind::VarDef { body, .. } | StmtKind::For { body, .. } => {
            set_parallel_unchecked(body, id)
        }
        StmtKind::If {
            then, otherwise, ..
        } => {
            set_parallel_unchecked(then, id)
                || otherwise
                    .as_mut()
                    .is_some_and(|o| set_parallel_unchecked(o, id))
        }
        _ => false,
    }
}

impl ScheduleOp {
    /// Apply this op to `sched`. `Err` means the legality checks rejected it
    /// (or its structural precondition did not hold); the schedule is
    /// unchanged in that case — `ft-schedule` is all-or-nothing.
    pub fn apply(&self, sched: &mut Schedule) -> Result<(), ScheduleError> {
        let loops = loops_of(sched.func());
        if loops.is_empty() {
            return Err(ScheduleError::NotFound("no loops left".to_string()));
        }
        let pick = |i: usize| loops[i % loops.len()];
        let structural =
            |m: &str| ScheduleError::Unsupported(format!("conformance op precondition: {m}"));
        match *self {
            ScheduleOp::Split { loop_idx, factor } => {
                sched.split(pick(loop_idx), factor).map(|_| ())
            }
            ScheduleOp::Merge { loop_idx } => {
                let outer = pick(loop_idx);
                let inner = direct_inner_for(sched.func(), outer)
                    .ok_or_else(|| structural("no single inner loop to merge"))?;
                sched.merge(outer, inner).map(|_| ())
            }
            ScheduleOp::Reorder { loop_idx } => {
                let outer = pick(loop_idx);
                let inner = direct_inner_for(sched.func(), outer)
                    .ok_or_else(|| structural("no single inner loop to reorder"))?;
                let on = iter_name(sched.func(), outer)
                    .ok_or_else(|| structural("outer loop vanished"))?;
                let inn = iter_name(sched.func(), inner)
                    .ok_or_else(|| structural("inner loop vanished"))?;
                sched.reorder(&[&inn, &on])
            }
            ScheduleOp::Fuse {
                first_idx,
                second_idx,
            } => sched.fuse(pick(first_idx), pick(second_idx)).map(|_| ()),
            ScheduleOp::Parallelize { loop_idx } => {
                sched.parallelize(pick(loop_idx), ParallelScope::OpenMp)
            }
            ScheduleOp::Vectorize { loop_idx } => sched.vectorize(pick(loop_idx)),
            ScheduleOp::Unroll { loop_idx } => sched.unroll(pick(loop_idx)),
            ScheduleOp::Cache {
                loop_idx,
                param_idx,
            } => {
                let params = input_params(sched.func());
                if params.is_empty() {
                    return Err(structural("no input tensors to cache"));
                }
                let var = &params[param_idx % params.len()];
                sched
                    .cache(pick(loop_idx), var, MemType::CpuStack)
                    .map(|_| ())
            }
            ScheduleOp::SeparateTail { loop_idx } => {
                sched.separate_tail(pick(loop_idx)).map(|_| ())
            }
            ScheduleOp::ParallelizeUnchecked { loop_idx } => {
                let id = pick(loop_idx);
                let mut func = sched.func().clone();
                if !set_parallel_unchecked(&mut func.body, id) {
                    return Err(structural("loop to force-parallelize vanished"));
                }
                let sink = sched.sink().cloned();
                *sched = Schedule::new(func);
                sched.set_sink(sink);
                Ok(())
            }
        }
    }

    /// Short op name used in JSON repros.
    pub fn op_name(&self) -> &'static str {
        match self {
            ScheduleOp::Split { .. } => "split",
            ScheduleOp::Merge { .. } => "merge",
            ScheduleOp::Reorder { .. } => "reorder",
            ScheduleOp::Fuse { .. } => "fuse",
            ScheduleOp::Parallelize { .. } => "parallelize",
            ScheduleOp::Vectorize { .. } => "vectorize",
            ScheduleOp::Unroll { .. } => "unroll",
            ScheduleOp::Cache { .. } => "cache",
            ScheduleOp::SeparateTail { .. } => "separate_tail",
            ScheduleOp::ParallelizeUnchecked { .. } => "parallelize_unchecked",
        }
    }
}

/// Proptest strategy over *legality-checkable* ops (the unchecked fault
/// injection variant is never sampled).
pub fn arb_op() -> BoxedStrategy<ScheduleOp> {
    const L: usize = 64; // loop indices are taken modulo the live loop count
    let factor = prop_oneof![Just(2i64), Just(3i64), Just(4i64), Just(8i64)];
    prop_oneof![
        3 => (0..L, factor).prop_map(|(l, f)| ScheduleOp::Split { loop_idx: l, factor: f }),
        1 => (0..L).prop_map(|l| ScheduleOp::Merge { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Reorder { loop_idx: l }),
        2 => (0..L, 0..L).prop_map(|(a, b)| ScheduleOp::Fuse { first_idx: a, second_idx: b }),
        3 => (0..L).prop_map(|l| ScheduleOp::Parallelize { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Vectorize { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Unroll { loop_idx: l }),
        2 => (0..L, 0..8usize).prop_map(|(l, p)| ScheduleOp::Cache { loop_idx: l, param_idx: p }),
        1 => (0..L).prop_map(|l| ScheduleOp::SeparateTail { loop_idx: l }),
    ]
    .boxed()
}

/// Draw a raw trace of 1..=`max_ops` ops.
pub fn sample_trace(rng: &mut TestRng, max_ops: usize) -> Vec<ScheduleOp> {
    collection::vec(arb_op(), 1..=max_ops.max(1)).generate(rng)
}

/// Apply `trace` to a clone of `base`, keeping only accepted ops.
///
/// Returns the scheduled function and the accepted subsequence. Because
/// rejected ops leave the schedule untouched, replaying just the accepted
/// subsequence reproduces the identical function — this is what makes
/// shrinking on the accepted trace sound.
pub fn apply_trace(base: &Func, trace: &[ScheduleOp]) -> (Func, Vec<ScheduleOp>) {
    apply_trace_traced(base, trace, None)
}

/// [`apply_trace`] with a schedule decision log: when `sink` is `Some`,
/// every op attempt — accepted or rejected, with the rejecting dependences —
/// is recorded, so a repro can explain *why* its trace looks the way it does.
pub fn apply_trace_traced(
    base: &Func,
    trace: &[ScheduleOp],
    sink: Option<&ft_trace::TraceSink>,
) -> (Func, Vec<ScheduleOp>) {
    let mut sched = Schedule::new(base.clone());
    sched.set_sink(sink.cloned());
    let mut accepted = Vec::new();
    for op in trace {
        if op.apply(&mut sched).is_ok() {
            accepted.push(op.clone());
        }
    }
    (sched.into_func(), accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn accepted_subsequence_replays_to_identical_func() {
        let case = Workload::Gat.build(3);
        let mut rng = TestRng::from_seed_u64(99);
        for _ in 0..8 {
            let raw = sample_trace(&mut rng, 6);
            let (f1, accepted) = apply_trace(&case.func, &raw);
            let (f2, accepted2) = apply_trace(&case.func, &accepted);
            assert_eq!(accepted, accepted2, "accepted trace must be a fixpoint");
            assert_eq!(f1.to_string(), f2.to_string());
        }
    }

    #[test]
    fn sampler_finds_legal_ops_on_every_workload() {
        for w in Workload::ALL {
            let case = w.build(1);
            let mut rng = TestRng::from_seed_u64(7);
            let mut accepted_total = 0;
            for _ in 0..10 {
                let raw = sample_trace(&mut rng, 6);
                let (_, accepted) = apply_trace(&case.func, &raw);
                accepted_total += accepted.len();
            }
            assert!(
                accepted_total > 0,
                "{}: sampler never found a legal transformation",
                w.name()
            );
        }
    }

    #[test]
    fn parallelize_unchecked_marks_the_loop() {
        let case = Workload::Subdivnet.build(1);
        let mut sched = ft_schedule::Schedule::new(case.func.clone());
        ScheduleOp::ParallelizeUnchecked { loop_idx: 0 }
            .apply(&mut sched)
            .unwrap();
        let func = sched.into_func();
        let loops = loops_of(&func);
        let first = find::find_stmts(&func.body, &|s| s.id == loops[0]);
        let StmtKind::For { property, .. } = &first[0].kind else {
            panic!("not a loop");
        };
        assert_eq!(property.parallel, ParallelScope::OpenMp);
    }
}
