//! Proptest sampling over the shared schedule-trace vocabulary.
//!
//! The vocabulary itself — [`ScheduleOp`], its legality-checked application
//! ([`apply_trace`]), and the JSON codec — lives in [`ft_schedule::trace`]
//! so the search-based auto-scheduler (`ft-autoschedule::search`) and this
//! fuzzer draw from the identical op language. This module re-exports it
//! and adds the proptest strategy ([`arb_op`]) and the seeded trace sampler
//! ([`sample_trace`]) that conformance and search warm-up both use.

use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

pub use ft_schedule::trace::{
    apply_trace, apply_trace_traced, canonical_key, loops_of, op_from_json, op_to_json,
    trace_from_json, trace_to_json, vardefs_of, ScheduleOp,
};

/// Proptest strategy over *legality-checkable* ops (the unchecked fault
/// injection variant is never sampled).
pub fn arb_op() -> BoxedStrategy<ScheduleOp> {
    const L: usize = 64; // loop indices are taken modulo the live loop count
    let factor = prop_oneof![Just(2i64), Just(3i64), Just(4i64), Just(8i64)];
    prop_oneof![
        3 => (0..L, factor).prop_map(|(l, f)| ScheduleOp::Split { loop_idx: l, factor: f }),
        1 => (0..L).prop_map(|l| ScheduleOp::Merge { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Reorder { loop_idx: l }),
        2 => (0..L, 0..L).prop_map(|(a, b)| ScheduleOp::Fuse { first_idx: a, second_idx: b }),
        3 => (0..L).prop_map(|l| ScheduleOp::Parallelize { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Vectorize { loop_idx: l }),
        1 => (0..L).prop_map(|l| ScheduleOp::Unroll { loop_idx: l }),
        2 => (0..L, 0..8usize).prop_map(|(l, p)| ScheduleOp::Cache { loop_idx: l, param_idx: p }),
        1 => (0..L).prop_map(|l| ScheduleOp::SeparateTail { loop_idx: l }),
        1 => (0..8usize).prop_map(|d| ScheduleOp::SetMtype { def_idx: d }),
        1 => (0..L).prop_map(|l| ScheduleOp::AsLib { loop_idx: l }),
    ]
    .boxed()
}

/// Draw a raw trace of 1..=`max_ops` ops.
pub fn sample_trace(rng: &mut TestRng, max_ops: usize) -> Vec<ScheduleOp> {
    collection::vec(arb_op(), 1..=max_ops.max(1)).generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use ft_ir::{find, ParallelScope, StmtKind};

    #[test]
    fn accepted_subsequence_replays_to_identical_func() {
        let case = Workload::Gat.build(3);
        let mut rng = TestRng::from_seed_u64(99);
        for _ in 0..8 {
            let raw = sample_trace(&mut rng, 6);
            let (f1, accepted) = apply_trace(&case.func, &raw);
            let (f2, accepted2) = apply_trace(&case.func, &accepted);
            assert_eq!(accepted, accepted2, "accepted trace must be a fixpoint");
            assert_eq!(f1.to_string(), f2.to_string());
        }
    }

    #[test]
    fn sampler_finds_legal_ops_on_every_workload() {
        for w in Workload::ALL {
            let case = w.build(1);
            let mut rng = TestRng::from_seed_u64(7);
            let mut accepted_total = 0;
            for _ in 0..10 {
                let raw = sample_trace(&mut rng, 6);
                let (_, accepted) = apply_trace(&case.func, &raw);
                accepted_total += accepted.len();
            }
            assert!(
                accepted_total > 0,
                "{}: sampler never found a legal transformation",
                w.name()
            );
        }
    }

    #[test]
    fn parallelize_unchecked_marks_the_loop() {
        let case = Workload::Subdivnet.build(1);
        let mut sched = ft_schedule::Schedule::new(case.func.clone());
        ScheduleOp::ParallelizeUnchecked { loop_idx: 0 }
            .apply(&mut sched)
            .unwrap();
        let func = sched.into_func();
        let loops = loops_of(&func);
        let first = find::find_stmts(&func.body, &|s| s.id == loops[0]);
        let StmtKind::For { property, .. } = &first[0].kind else {
            panic!("not a loop");
        };
        assert_eq!(property.parallel, ParallelScope::OpenMp);
    }

    /// Satellite: search reproducibility depends on `sample_trace` being a
    /// pure function of its seed. Pin the byte-identical JSON encoding of a
    /// fixed-seed draw so an accidental strategy reshuffle (which would
    /// silently re-map every recorded seed) fails loudly.
    #[test]
    fn sample_trace_is_seed_stable() {
        let draw = |seed: u64| {
            let mut rng = TestRng::from_seed_u64(seed);
            let mut out = String::new();
            for _ in 0..4 {
                out.push_str(&trace_to_json(&sample_trace(&mut rng, 8)).to_string());
                out.push('\n');
            }
            out
        };
        // Identical across independent runs of the same seed...
        assert_eq!(draw(2022), draw(2022));
        assert_eq!(draw(7), draw(7));
        // ...and actually seed-sensitive.
        assert_ne!(draw(2022), draw(7));
        // Every encoded op must round-trip through the shared codec.
        let mut rng = TestRng::from_seed_u64(2022);
        let trace = sample_trace(&mut rng, 8);
        let back = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(trace, back);
    }
}
