//! Machine-readable divergence repros: serialization to/from JSON and
//! replay.
//!
//! A repro file is self-contained: the workload name and input seed pin the
//! program and data, the trace pins the schedule. `Repro::replay` re-applies
//! all three and re-runs the differential check, so a CI failure can be
//! reproduced from the artifact alone.

use crate::backend::Backend;
use crate::diff::{check_variant, Divergence};
use crate::json::JsonVal;
use crate::ops::{apply_trace, ScheduleOp};
use crate::workload::Workload;
use std::io;
use std::path::{Path, PathBuf};

/// A minimized divergence, as written to `results/conformance/*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Workload name ([`Workload::name`]).
    pub workload: String,
    /// Seed the synthetic inputs were drawn with.
    pub input_seed: u64,
    /// Backend that diverged ([`Backend::name`]).
    pub backend: String,
    /// Output tensor the divergence was observed on.
    pub output: String,
    /// Maximum element-wise absolute error observed.
    pub max_abs_err: f64,
    /// Tolerance the comparison used.
    pub tol: f64,
    /// Minimized schedule trace.
    pub trace: Vec<ScheduleOp>,
    /// Compact schedule decision log of the minimized trace (one line per
    /// primitive attempt, `ft_trace::decision_line` format). Informational:
    /// not needed for replay, defaulted to empty on older repro files.
    pub decision_log: Vec<String>,
}

fn num(n: u64) -> JsonVal {
    JsonVal::Num(n as f64)
}

fn op_to_json(op: &ScheduleOp) -> JsonVal {
    let mut fields = vec![("op".to_string(), JsonVal::Str(op.op_name().to_string()))];
    match *op {
        ScheduleOp::Split { loop_idx, factor } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
            fields.push(("factor".to_string(), num(factor as u64)));
        }
        ScheduleOp::Fuse {
            first_idx,
            second_idx,
        } => {
            fields.push(("first".to_string(), num(first_idx as u64)));
            fields.push(("second".to_string(), num(second_idx as u64)));
        }
        ScheduleOp::Cache {
            loop_idx,
            param_idx,
        } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
            fields.push(("param".to_string(), num(param_idx as u64)));
        }
        ScheduleOp::Merge { loop_idx }
        | ScheduleOp::Reorder { loop_idx }
        | ScheduleOp::Parallelize { loop_idx }
        | ScheduleOp::Vectorize { loop_idx }
        | ScheduleOp::Unroll { loop_idx }
        | ScheduleOp::SeparateTail { loop_idx }
        | ScheduleOp::ParallelizeUnchecked { loop_idx } => {
            fields.push(("loop".to_string(), num(loop_idx as u64)));
        }
    }
    JsonVal::Obj(fields)
}

fn op_from_json(v: &JsonVal) -> Result<ScheduleOp, String> {
    let name = v
        .get("op")
        .and_then(JsonVal::as_str)
        .ok_or("op object missing `op` field")?;
    let field = |key: &str| -> Result<usize, String> {
        v.get(key)
            .and_then(JsonVal::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("op `{name}` missing `{key}`"))
    };
    Ok(match name {
        "split" => ScheduleOp::Split {
            loop_idx: field("loop")?,
            factor: field("factor")? as i64,
        },
        "merge" => ScheduleOp::Merge {
            loop_idx: field("loop")?,
        },
        "reorder" => ScheduleOp::Reorder {
            loop_idx: field("loop")?,
        },
        "fuse" => ScheduleOp::Fuse {
            first_idx: field("first")?,
            second_idx: field("second")?,
        },
        "parallelize" => ScheduleOp::Parallelize {
            loop_idx: field("loop")?,
        },
        "vectorize" => ScheduleOp::Vectorize {
            loop_idx: field("loop")?,
        },
        "unroll" => ScheduleOp::Unroll {
            loop_idx: field("loop")?,
        },
        "cache" => ScheduleOp::Cache {
            loop_idx: field("loop")?,
            param_idx: field("param")?,
        },
        "separate_tail" => ScheduleOp::SeparateTail {
            loop_idx: field("loop")?,
        },
        "parallelize_unchecked" => ScheduleOp::ParallelizeUnchecked {
            loop_idx: field("loop")?,
        },
        other => return Err(format!("unknown op `{other}`")),
    })
}

impl Repro {
    /// Serialize to a JSON document.
    pub fn to_json(&self) -> String {
        JsonVal::Obj(vec![
            ("workload".to_string(), JsonVal::Str(self.workload.clone())),
            ("input_seed".to_string(), num(self.input_seed)),
            ("backend".to_string(), JsonVal::Str(self.backend.clone())),
            ("output".to_string(), JsonVal::Str(self.output.clone())),
            ("max_abs_err".to_string(), JsonVal::Num(self.max_abs_err)),
            ("tol".to_string(), JsonVal::Num(self.tol)),
            (
                "schedule".to_string(),
                JsonVal::Arr(self.trace.iter().map(op_to_json).collect()),
            ),
            (
                "decision_log".to_string(),
                JsonVal::Arr(
                    self.decision_log
                        .iter()
                        .map(|l| JsonVal::Str(l.clone()))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parse back from [`Repro::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<Repro, String> {
        let v = JsonVal::parse(s)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonVal::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonVal::as_f64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let trace = v
            .get("schedule")
            .and_then(JsonVal::as_arr)
            .ok_or("missing `schedule` array")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // Tolerate files from before the decision log existed.
        let decision_log = v
            .get("decision_log")
            .and_then(JsonVal::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(JsonVal::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        Ok(Repro {
            workload: str_field("workload")?,
            input_seed: num_field("input_seed")? as u64,
            backend: str_field("backend")?,
            output: str_field("output")?,
            max_abs_err: num_field("max_abs_err")?,
            tol: num_field("tol")?,
            trace,
            decision_log,
        })
    }

    /// Write the repro under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!(
            "{}-seed{}-{}.json",
            self.workload, self.input_seed, self.backend
        ));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Rebuild the case, re-apply the trace, and re-run the differential
    /// check on the recorded backend.
    ///
    /// # Errors
    ///
    /// When the workload or backend name is unknown.
    pub fn replay(&self) -> Result<Option<Divergence>, String> {
        let w = Workload::from_name(&self.workload)
            .ok_or_else(|| format!("unknown workload `{}`", self.workload))?;
        let b = Backend::from_name(&self.backend)
            .ok_or_else(|| format!("unknown backend `{}`", self.backend))?;
        let case = w.build(self.input_seed);
        let (func, _) = apply_trace(&case.func, &self.trace);
        Ok(check_variant(&case, &func, &[b], self.tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            workload: "gat".to_string(),
            input_seed: 17,
            backend: "threaded".to_string(),
            output: "y".to_string(),
            max_abs_err: 0.375,
            tol: 5e-4,
            trace: vec![
                ScheduleOp::Split {
                    loop_idx: 2,
                    factor: 8,
                },
                ScheduleOp::Fuse {
                    first_idx: 0,
                    second_idx: 1,
                },
                ScheduleOp::Cache {
                    loop_idx: 1,
                    param_idx: 3,
                },
                ScheduleOp::ParallelizeUnchecked { loop_idx: 0 },
            ],
            decision_log: vec![
                "split((2), 8): applied".to_string(),
                "parallelize((0), OpenMp): rejected — loop-carried dependence".to_string(),
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_op() {
        let r = sample();
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("ftconf-repro-test-{}", std::process::id()));
        let r = sample();
        let path = r.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Repro::from_json(&text).unwrap(), r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Repro::from_json("{}").is_err());
        assert!(Repro::from_json("not json").is_err());
    }

    #[test]
    fn decision_log_roundtrips_and_old_files_parse() {
        let r = sample();
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(back.decision_log, r.decision_log);
        // A pre-decision-log file (no such key) still parses, with an
        // empty log.
        let mut old = r.clone();
        old.decision_log.clear();
        let json = old.to_json().replace(
            "\"decision_log\"",
            "\"ignored_legacy_key\"",
        );
        let parsed = Repro::from_json(&json).unwrap();
        assert!(parsed.decision_log.is_empty());
        assert_eq!(parsed.trace, r.trace);
    }
}
