//! Machine-readable divergence repros: serialization to/from JSON and
//! replay.
//!
//! A repro file is self-contained: the workload name and input seed pin the
//! program and data, the trace pins the schedule. `Repro::replay` re-applies
//! all three and re-runs the differential check, so a CI failure can be
//! reproduced from the artifact alone.

use crate::backend::Backend;
use crate::diff::{check_grad_variant, check_variant, Divergence, GradTol};
use crate::grad::{
    build_grad_func, fault_from_name, fault_name, grad_run_inputs, ones_seed, policy_from_name,
    policy_name, GradOrder, GradSpec,
};
use crate::json::JsonVal;
use crate::ops::{apply_trace, op_from_json, op_to_json, ScheduleOp};
use crate::workload::Workload;
use std::io;
use std::path::{Path, PathBuf};

/// A minimized divergence, as written to `results/conformance/*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Workload name ([`Workload::name`]).
    pub workload: String,
    /// Seed the synthetic inputs were drawn with.
    pub input_seed: u64,
    /// Backend that diverged ([`Backend::name`]).
    pub backend: String,
    /// Output tensor the divergence was observed on.
    pub output: String,
    /// Maximum element-wise absolute error observed.
    pub max_abs_err: f64,
    /// Tolerance the comparison used.
    pub tol: f64,
    /// Minimized schedule trace.
    pub trace: Vec<ScheduleOp>,
    /// Compact schedule decision log of the minimized trace (one line per
    /// primitive attempt, `ft_trace::decision_line` format). Informational:
    /// not needed for replay, defaulted to empty on older repro files.
    pub decision_log: Vec<String>,
    /// For gradient-sweep repros: how the grad function was built
    /// (`GradOptions` point + composition order). `None` on forward repros
    /// and on files from before the gradient sweep existed.
    pub grad: Option<GradSpec>,
    /// Relative tolerance term of the gradient contract (`tol` holds the
    /// absolute term). `None` on forward repros.
    pub tol_rel: Option<f64>,
    /// Runtime telemetry of the diverging backend's minimized run (an
    /// `ft-metrics` snapshot: engine wall histograms, compile/cache
    /// counters, pool stats), so a miscompile report carries the runtime
    /// conditions that produced it. Informational: not needed for replay,
    /// `None` on files from before telemetry existed.
    pub metrics: Option<ft_metrics::MetricsSnapshot>,
}

fn num(n: u64) -> JsonVal {
    JsonVal::Num(n as f64)
}

/// `max_abs_err` is infinite on execution-failure divergences, and JSON has
/// no Infinity/NaN tokens — encode non-finite errors as strings.
fn err_to_json(v: f64) -> JsonVal {
    if v.is_finite() {
        JsonVal::Num(v)
    } else if v.is_nan() {
        JsonVal::Str("nan".to_string())
    } else if v > 0.0 {
        JsonVal::Str("inf".to_string())
    } else {
        JsonVal::Str("-inf".to_string())
    }
}

fn err_from_json(v: &JsonVal) -> Option<f64> {
    match v {
        JsonVal::Num(n) => Some(*n),
        JsonVal::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

fn grad_to_json(g: &GradSpec) -> JsonVal {
    let mut fields = vec![
        ("policy".to_string(), JsonVal::Str(policy_name(g.policy).to_string())),
        ("recompute_threshold".to_string(), num(g.recompute_threshold as u64)),
        ("order".to_string(), JsonVal::Str(g.order.name().to_string())),
    ];
    if let Some(f) = g.fault {
        fields.push(("fault".to_string(), JsonVal::Str(fault_name(f).to_string())));
    }
    JsonVal::Obj(fields)
}

fn grad_from_json(v: &JsonVal) -> Result<GradSpec, String> {
    let s = |key: &str| -> Result<&str, String> {
        v.get(key)
            .and_then(JsonVal::as_str)
            .ok_or_else(|| format!("grad object missing `{key}`"))
    };
    let policy = policy_from_name(s("policy")?)
        .ok_or_else(|| format!("unknown tape policy `{}`", s("policy").unwrap()))?;
    let order = GradOrder::from_name(s("order")?)
        .ok_or_else(|| format!("unknown grad order `{}`", s("order").unwrap()))?;
    let recompute_threshold = v
        .get("recompute_threshold")
        .and_then(JsonVal::as_u64)
        .ok_or("grad object missing `recompute_threshold`")? as usize;
    let fault = match v.get("fault").and_then(JsonVal::as_str) {
        None => None,
        Some(name) => {
            Some(fault_from_name(name).ok_or_else(|| format!("unknown AD fault `{name}`"))?)
        }
    };
    Ok(GradSpec {
        policy,
        recompute_threshold,
        order,
        fault,
    })
}

impl Repro {
    /// Serialize to a JSON document.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("workload".to_string(), JsonVal::Str(self.workload.clone())),
            ("input_seed".to_string(), num(self.input_seed)),
            ("backend".to_string(), JsonVal::Str(self.backend.clone())),
            ("output".to_string(), JsonVal::Str(self.output.clone())),
            ("max_abs_err".to_string(), err_to_json(self.max_abs_err)),
            ("tol".to_string(), JsonVal::Num(self.tol)),
            (
                "schedule".to_string(),
                JsonVal::Arr(self.trace.iter().map(op_to_json).collect()),
            ),
            (
                "decision_log".to_string(),
                JsonVal::Arr(
                    self.decision_log
                        .iter()
                        .map(|l| JsonVal::Str(l.clone()))
                        .collect(),
                ),
            ),
        ];
        // Gradient fields are emitted only for gradient repros, so forward
        // repro files are byte-identical to the pre-gradient format.
        if let Some(g) = &self.grad {
            fields.push(("grad".to_string(), grad_to_json(g)));
        }
        if let Some(r) = self.tol_rel {
            fields.push(("tol_rel".to_string(), JsonVal::Num(r)));
        }
        // The telemetry snapshot is emitted only when present, so files
        // from metric-less sweeps are byte-identical to the old format.
        // The snapshot serializes itself; re-parse into this module's
        // value type to embed it as a structured object rather than an
        // opaque string.
        if let Some(m) = &self.metrics {
            if let Ok(v) = JsonVal::parse(&m.to_json()) {
                fields.push(("metrics".to_string(), v));
            }
        }
        JsonVal::Obj(fields).to_string()
    }

    /// Parse back from [`Repro::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<Repro, String> {
        let v = JsonVal::parse(s)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonVal::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonVal::as_f64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let trace = v
            .get("schedule")
            .and_then(JsonVal::as_arr)
            .ok_or("missing `schedule` array")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // Tolerate files from before the decision log existed.
        let decision_log = v
            .get("decision_log")
            .and_then(JsonVal::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(JsonVal::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        // Both gradient fields are optional: absent on forward repros and
        // on files from before the gradient sweep existed.
        let grad = match v.get("grad") {
            None => None,
            Some(g) => Some(grad_from_json(g)?),
        };
        let tol_rel = v.get("tol_rel").and_then(JsonVal::as_f64);
        // Optional telemetry block: absent on pre-metrics files, rejected
        // (not silently dropped) when present but malformed.
        let metrics = match v.get("metrics") {
            None => None,
            Some(m) => Some(
                ft_metrics::MetricsSnapshot::from_json(&m.to_string())
                    .map_err(|e| format!("bad `metrics` block: {e}"))?,
            ),
        };
        Ok(Repro {
            workload: str_field("workload")?,
            input_seed: num_field("input_seed")? as u64,
            backend: str_field("backend")?,
            output: str_field("output")?,
            max_abs_err: v
                .get("max_abs_err")
                .and_then(err_from_json)
                .ok_or("missing numeric field `max_abs_err`")?,
            tol: num_field("tol")?,
            trace,
            decision_log,
            grad,
            tol_rel,
            metrics,
        })
    }

    /// Write the repro under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        // Gradient repros get the sweep point in the file name so variants
        // of the same (workload, seed, backend) don't clobber each other.
        let grad_tag = self
            .grad
            .as_ref()
            .map(|g| {
                format!(
                    "-grad-{}-t{}-{}{}",
                    policy_name(g.policy),
                    g.recompute_threshold,
                    g.order.name(),
                    g.fault.map(|f| format!("-{}", fault_name(f))).unwrap_or_default()
                )
            })
            .unwrap_or_default();
        let path = dir.join(format!(
            "{}-seed{}-{}{}.json",
            self.workload, self.input_seed, self.backend, grad_tag
        ));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Rebuild the case, re-apply the trace (and, for gradient repros, the
    /// recorded differentiation), and re-run the differential check on the
    /// recorded backend.
    ///
    /// # Errors
    ///
    /// When the workload or backend name is unknown, or a gradient repro's
    /// program no longer differentiates.
    pub fn replay(&self) -> Result<Option<Divergence>, String> {
        let w = Workload::from_name(&self.workload)
            .ok_or_else(|| format!("unknown workload `{}`", self.workload))?;
        let b = Backend::from_name(&self.backend)
            .ok_or_else(|| format!("unknown backend `{}`", self.backend))?;
        let case = w.build(self.input_seed);
        let Some(spec) = &self.grad else {
            let (func, _) = apply_trace(&case.func, &self.trace);
            return Ok(check_variant(&case, &func, &[b], self.tol));
        };
        let (gfunc, _) = build_grad_func(&case.func, &self.trace, spec).map_err(|e| e.to_string())?;
        let seed = ones_seed(&case);
        let inputs = grad_run_inputs(&case, &seed);
        let oracle_grads = w.oracle_grad(&case.inputs, &seed);
        let tol = GradTol {
            abs: self.tol,
            rel: self.tol_rel.unwrap_or(0.0),
        };
        Ok(check_grad_variant(&gfunc, &inputs, &oracle_grads, &[b], &tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            workload: "gat".to_string(),
            input_seed: 17,
            backend: "threaded".to_string(),
            output: "y".to_string(),
            max_abs_err: 0.375,
            tol: 5e-4,
            trace: vec![
                ScheduleOp::Split {
                    loop_idx: 2,
                    factor: 8,
                },
                ScheduleOp::Fuse {
                    first_idx: 0,
                    second_idx: 1,
                },
                ScheduleOp::Cache {
                    loop_idx: 1,
                    param_idx: 3,
                },
                ScheduleOp::ParallelizeUnchecked { loop_idx: 0 },
            ],
            decision_log: vec![
                "split((2), 8): applied".to_string(),
                "parallelize((0), OpenMp): rejected — loop-carried dependence".to_string(),
            ],
            grad: None,
            tol_rel: None,
            metrics: None,
        }
    }

    fn grad_sample() -> Repro {
        use ft_autodiff::{AdFault, TapePolicy};
        Repro {
            output: "h.grad".to_string(),
            grad: Some(GradSpec {
                policy: TapePolicy::All,
                recompute_threshold: 17,
                order: GradOrder::OptThenGrad,
                fault: Some(AdFault::DropTapeVersionBump),
            }),
            tol_rel: Some(1e-3),
            ..sample()
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_op() {
        let r = sample();
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("ftconf-repro-test-{}", std::process::id()));
        let r = sample();
        let path = r.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Repro::from_json(&text).unwrap(), r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Repro::from_json("{}").is_err());
        assert!(Repro::from_json("not json").is_err());
    }

    #[test]
    fn grad_fields_roundtrip_and_forward_files_stay_unchanged() {
        // A gradient repro preserves the full sweep point through JSON.
        let g = grad_sample();
        let back = Repro::from_json(&g.to_json()).unwrap();
        assert_eq!(g, back);
        // A fault-free spec omits the `fault` key and still roundtrips.
        let mut no_fault = grad_sample();
        no_fault.grad.as_mut().unwrap().fault = None;
        assert!(!no_fault.to_json().contains("\"fault\""));
        assert_eq!(Repro::from_json(&no_fault.to_json()).unwrap(), no_fault);
        // Forward repros never mention gradient keys (the file format is
        // unchanged for pre-gradient consumers), and files from before the
        // gradient sweep parse with `grad: None`.
        let f = sample();
        let json = f.to_json();
        assert!(!json.contains("\"grad\"") && !json.contains("\"tol_rel\""));
        assert_eq!(Repro::from_json(&json).unwrap().grad, None);
        // A malformed grad object is rejected, not silently dropped.
        let bad = g.to_json().replace("opt-then-grad", "sideways");
        assert!(Repro::from_json(&bad).is_err());
    }

    #[test]
    fn infinite_error_repros_roundtrip() {
        // Execution-failure divergences record `max_abs_err: inf`; the file
        // must stay valid JSON and parse back to infinity (found by the
        // gradient sweep: a backend execution error produced an unparseable
        // repro).
        let mut r = sample();
        r.max_abs_err = f64::INFINITY;
        let json = r.to_json();
        let back = Repro::from_json(&json).unwrap();
        assert_eq!(back.max_abs_err, f64::INFINITY);
        assert_eq!(back, r);
        r.max_abs_err = f64::NAN;
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert!(back.max_abs_err.is_nan());
    }

    #[test]
    fn grad_repro_filename_encodes_the_sweep_point() {
        let dir = std::env::temp_dir().join(format!("ftconf-gradrepro-{}", std::process::id()));
        let g = grad_sample();
        let path = g.write(&dir).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            name.contains("grad-all-t17-opt-then-grad-drop-tape-version-bump"),
            "{name}"
        );
        assert_eq!(Repro::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap(), g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_block_roundtrips_and_is_optional() {
        // A metric-less repro never mentions the key, so pre-telemetry
        // consumers see an unchanged format.
        let plain = sample();
        assert!(!plain.to_json().contains("\"metrics\""));
        assert_eq!(Repro::from_json(&plain.to_json()).unwrap().metrics, None);
        // A repro carrying telemetry round-trips it exactly.
        let m = ft_metrics::Metrics::new();
        m.counter("compiled.cache.hit").add(2);
        m.counter("compiled.cc.spawned").inc();
        m.gauge("compiled.cache.size_bytes").set(4096);
        m.histogram("engine.compiled.run_us").record(137);
        let mut with = sample();
        with.metrics = Some(m.snapshot());
        let back = Repro::from_json(&with.to_json()).unwrap();
        assert_eq!(back, with);
        let snap = back.metrics.unwrap();
        assert_eq!(snap.counter("compiled.cc.spawned"), 1);
        assert_eq!(snap.histograms["engine.compiled.run_us"].count, 1);
        // A malformed telemetry block is rejected, not silently dropped
        // (a counter is a u64; -1 is not).
        let bad = with
            .to_json()
            .replace("\"compiled.cc.spawned\": 1", "\"compiled.cc.spawned\": -1");
        assert!(Repro::from_json(&bad).is_err());
    }

    #[test]
    fn decision_log_roundtrips_and_old_files_parse() {
        let r = sample();
        let back = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(back.decision_log, r.decision_log);
        // A pre-decision-log file (no such key) still parses, with an
        // empty log.
        let mut old = r.clone();
        old.decision_log.clear();
        let json = old.to_json().replace(
            "\"decision_log\"",
            "\"ignored_legacy_key\"",
        );
        let parsed = Repro::from_json(&json).unwrap();
        assert!(parsed.decision_log.is_empty());
        assert_eq!(parsed.trace, r.trace);
    }
}
