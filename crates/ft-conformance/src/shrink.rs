//! Trace minimization: reduce a failing schedule trace to a minimal failing
//! prefix, then drop individually-unneeded ops inside it.

use crate::ops::ScheduleOp;

/// Shrink `trace` with respect to the failure predicate `fails`.
///
/// Two phases, both deterministic:
///
/// 1. **Minimal failing prefix** — scan prefixes shortest-first, starting
///    at the *empty* trace, and keep the first one that fails. A failure
///    that does not depend on the schedule at all (e.g. a miscompiling
///    code transform, as the AD fault-injection tests exercise) must
///    shrink to the empty trace, not to one arbitrary surviving op. (A
///    linear scan, not a binary search: failure is not monotone in prefix
///    length, because a later op can rewrite the tree under an earlier
///    one.)
/// 2. **Greedy op removal** — try deleting each remaining op (last first,
///    so positional loop indices of earlier ops stay meaningful as long as
///    possible); keep a deletion whenever the shorter trace still fails.
///
/// Returns `trace` unchanged when it does not fail at all (nothing to
/// shrink). The result is guaranteed to satisfy `fails` whenever the input
/// did.
pub fn minimize<F>(trace: &[ScheduleOp], fails: F) -> Vec<ScheduleOp>
where
    F: Fn(&[ScheduleOp]) -> bool,
{
    let mut cur: Option<Vec<ScheduleOp>> = None;
    for p in 0..=trace.len() {
        if fails(&trace[..p]) {
            cur = Some(trace[..p].to_vec());
            break;
        }
    }
    let Some(mut cur) = cur else {
        return trace.to_vec();
    };
    let mut i = 0;
    while i < cur.len() {
        let at = cur.len() - 1 - i;
        let mut cand = cur.clone();
        cand.remove(at);
        if fails(&cand) {
            cur = cand;
        } else {
            i += 1;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: usize) -> ScheduleOp {
        ScheduleOp::Vectorize { loop_idx: i }
    }

    #[test]
    fn reduces_to_the_single_culprit() {
        // "Fails" iff the trace contains loop_idx 7.
        let trace = vec![op(1), op(2), op(7), op(3), op(4)];
        let min = minimize(&trace, |t| t.iter().any(|o| *o == op(7)));
        assert_eq!(min, vec![op(7)]);
    }

    #[test]
    fn keeps_a_required_pair() {
        // Fails iff both 2 and 4 survive, in any order.
        let trace = vec![op(1), op(2), op(3), op(4), op(5)];
        let min = minimize(&trace, |t| {
            t.iter().any(|o| *o == op(2)) && t.iter().any(|o| *o == op(4))
        });
        assert_eq!(min, vec![op(2), op(4)]);
    }

    #[test]
    fn non_failing_trace_is_returned_unchanged() {
        let trace = vec![op(1), op(2)];
        let min = minimize(&trace, |_| false);
        assert_eq!(min, trace);
    }

    #[test]
    fn prefix_phase_is_shortest_first() {
        // Every non-empty prefix fails; the minimal one is length 1.
        let trace = vec![op(9), op(1), op(2)];
        let min = minimize(&trace, |t| !t.is_empty());
        assert_eq!(min, vec![op(9)]);
    }

    #[test]
    fn schedule_independent_failure_shrinks_to_the_empty_trace() {
        // A bug that reproduces with no schedule ops at all (e.g. an
        // injected AD miscompilation) must minimize to the empty trace —
        // previously the shrinker never tried it and kept one arbitrary
        // op.
        let trace = vec![op(1), op(2), op(3)];
        let min = minimize(&trace, |_| true);
        assert!(min.is_empty(), "{min:?}");
    }
}
