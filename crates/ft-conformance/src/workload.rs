//! The programs under differential test: the paper's four workloads, plus
//! custom cases for fault-injection tests.

use ft_ir::Func;
use ft_runtime::TensorVal;
use ft_workloads::{gat, longformer, softras, subdivnet, Inputs};

/// One of the paper's four irregular workloads (§6.1), at test scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Indirect adjacency + circular difference (paper Fig. 2).
    Subdivnet,
    /// Sliding-window attention with boundary guards (Fig. 1/5).
    Longformer,
    /// Per pixel–face geometric scoring.
    Softras,
    /// CSR neighbor softmax with data-dependent loop bounds.
    Gat,
}

/// A fully-instantiated program under test: IR, inputs, and the plain-Rust
/// oracle's expected value of the main output.
#[derive(Debug, Clone)]
pub struct Case {
    /// Workload (or custom case) name.
    pub name: String,
    /// The unscheduled function; schedule traces are applied to clones.
    pub func: Func,
    /// Named input tensors.
    pub inputs: Inputs,
    /// Expected value of [`Case::oracle_output`], computed in plain Rust.
    pub oracle: TensorVal,
    /// Name of the output tensor the oracle predicts.
    pub oracle_output: String,
    /// Seed the synthetic inputs were drawn with.
    pub input_seed: u64,
}

impl Case {
    /// Build a case from parts — used by fault-injection tests that need a
    /// program outside the standard workload set.
    pub fn custom(
        name: &str,
        func: Func,
        inputs: Inputs,
        oracle: TensorVal,
        oracle_output: &str,
    ) -> Case {
        Case {
            name: name.to_string(),
            func,
            inputs,
            oracle,
            oracle_output: oracle_output.to_string(),
            input_seed: 0,
        }
    }
}

impl Workload {
    /// All four workloads.
    pub const ALL: [Workload; 4] = [
        Workload::Subdivnet,
        Workload::Longformer,
        Workload::Softras,
        Workload::Gat,
    ];

    /// Stable lower-case name (used in repro files).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Subdivnet => "subdivnet",
            Workload::Longformer => "longformer",
            Workload::Softras => "softras",
            Workload::Gat => "gat",
        }
    }

    /// Inverse of [`Workload::name`].
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// Instantiate the workload at test scale with inputs drawn from `seed`.
    pub fn build(&self, seed: u64) -> Case {
        let (func, inputs, oracle, out) = match self {
            Workload::Subdivnet => {
                let p = subdivnet::Params::small();
                let ins = subdivnet::inputs(&p, seed);
                let f = subdivnet::program(&p).func().clone();
                let oracle = subdivnet::reference(&p, &ins);
                (f, ins, oracle, "y")
            }
            Workload::Longformer => {
                let p = longformer::Params::small();
                let ins = longformer::inputs(&p, seed);
                let f = longformer::program(&p).func().clone();
                let oracle = longformer::reference(&p, &ins);
                (f, ins, oracle, "y")
            }
            Workload::Softras => {
                let p = softras::Params::small();
                let ins = softras::inputs(&p, seed);
                let f = softras::program(&p).func().clone();
                let oracle = softras::reference(&p, &ins);
                (f, ins, oracle, "img")
            }
            Workload::Gat => {
                let p = gat::Params::small();
                let ins = gat::inputs(&p, seed);
                let f = gat::program(&p).func().clone();
                let oracle = gat::reference(&p, &ins);
                (f, ins, oracle, "y")
            }
        };
        Case {
            name: self.name().to_string(),
            func,
            inputs,
            oracle,
            oracle_output: out.to_string(),
            input_seed: seed,
        }
    }

    /// Plain-Rust forward oracle over arbitrary `inputs` (same test-scale
    /// `Params::small()` the [`Workload::build`] case uses). Exists so the
    /// gradient sweep can finite-difference through the oracle.
    pub fn oracle_value(&self, inputs: &Inputs) -> TensorVal {
        match self {
            Workload::Subdivnet => subdivnet::reference(&subdivnet::Params::small(), inputs),
            Workload::Longformer => longformer::reference(&longformer::Params::small(), inputs),
            Workload::Softras => softras::reference(&softras::Params::small(), inputs),
            Workload::Gat => gat::reference(&gat::Params::small(), inputs),
        }
    }

    /// Plain-Rust oracle gradient: `{x}.grad` for every differentiable
    /// input, given the seed `∂L/∂output`.
    pub fn oracle_grad(&self, inputs: &Inputs, seed: &TensorVal) -> Inputs {
        match self {
            Workload::Subdivnet => {
                subdivnet::reference_grad(&subdivnet::Params::small(), inputs, seed)
            }
            Workload::Longformer => {
                longformer::reference_grad(&longformer::Params::small(), inputs, seed)
            }
            Workload::Softras => softras::reference_grad(&softras::Params::small(), inputs, seed),
            Workload::Gat => gat::reference_grad(&gat::Params::small(), inputs, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_oracle_matches_interp() {
        for w in Workload::ALL {
            let case = w.build(7);
            let r = ft_runtime::Runtime::new()
                .run(&case.func, &case.inputs, &std::collections::HashMap::new())
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()));
            let d = r.output(&case.oracle_output).max_abs_diff(&case.oracle);
            assert!(d < 1e-4, "{}: oracle mismatch {d}", w.name());
        }
    }

    #[test]
    fn name_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nope"), None);
    }
}
