//! Surface AST of the textual DSL (before inlining and partial evaluation).

use ft_ir::{AccessType, DataType, MemType};

/// A parsed module: an ordered set of function definitions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions, in source order.
    pub funcs: Vec<SFunc>,
}

impl Module {
    /// Find a function by name. The *last* definition wins, so user code
    /// appended after a library prelude shadows same-named library helpers.
    pub fn find(&self, name: &str) -> Option<&SFunc> {
        self.funcs.iter().rev().find(|f| f.name == name)
    }
}

/// A surface function definition.
#[derive(Debug, Clone)]
pub struct SFunc {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<SParam>,
    /// Body statements.
    pub body: Vec<SStmt>,
    /// Source line of the `def`.
    pub line: usize,
}

/// A surface parameter.
#[derive(Debug, Clone)]
pub enum SParam {
    /// A typed tensor parameter: `x: f32[n, m] @ gpu in`.
    Tensor {
        /// Name.
        name: String,
        /// Element type.
        dtype: DataType,
        /// Dimension extents.
        shape: Vec<SExpr>,
        /// Memory space (defaults to CPU heap).
        mtype: MemType,
        /// in / out / inout.
        atype: AccessType,
    },
    /// An integer size parameter: `n: size`.
    Size {
        /// Name.
        name: String,
    },
    /// An untyped parameter of a helper function (bound at inline time to a
    /// tensor view or a scalar) — the dimension-free style of paper Fig. 6.
    Untyped {
        /// Name.
        name: String,
    },
}

impl SParam {
    /// The parameter's name.
    pub fn name(&self) -> &str {
        match self {
            SParam::Tensor { name, .. } | SParam::Size { name } | SParam::Untyped { name } => name,
        }
    }
}

/// A surface statement.
#[derive(Debug, Clone)]
pub enum SStmt {
    /// `for i in range(a, b): suite` (or `range(b)`).
    For {
        /// Iterator name.
        iter: String,
        /// Lower bound (inclusive).
        begin: SExpr,
        /// Upper bound (exclusive).
        end: SExpr,
        /// Body.
        body: Vec<SStmt>,
        /// Source line.
        line: usize,
    },
    /// `if cond: suite [else: suite]`.
    If {
        /// Condition.
        cond: SExpr,
        /// Then-branch.
        then: Vec<SStmt>,
        /// Else-branch.
        otherwise: Vec<SStmt>,
        /// Source line.
        line: usize,
    },
    /// `name = create_var((dims…), "dtype", "mtype")` — scoped to the rest of
    /// the enclosing block.
    VarDef {
        /// Tensor name.
        name: String,
        /// Dimension extents.
        shape: Vec<SExpr>,
        /// Element type.
        dtype: DataType,
        /// Memory space.
        mtype: MemType,
        /// Source line.
        line: usize,
    },
    /// `target[indices…] = value` (empty indices for scalar tensors).
    Assign {
        /// Target tensor name.
        target: String,
        /// Indices.
        indices: Vec<SExpr>,
        /// Right-hand side.
        value: SExpr,
        /// Source line.
        line: usize,
    },
    /// `target[indices…] op= value`.
    Reduce {
        /// Target tensor name.
        target: String,
        /// Indices.
        indices: Vec<SExpr>,
        /// `+=`, `*=`, `min=`, `max=`.
        op: ft_ir::ReduceOp,
        /// Right-hand side.
        value: SExpr,
        /// Source line.
        line: usize,
    },
    /// A call statement `f(args…)` — always inlined.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments (tensor views or scalar expressions).
        args: Vec<SExpr>,
        /// Source line.
        line: usize,
    },
    /// `pass`.
    Pass,
}

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// `inf`.
    Inf,
    /// A name (resolved during lowering to an iterator, size parameter,
    /// tensor view, or 0-D tensor load).
    Name(String),
    /// `base[indices…]` — element load or sub-tensor view.
    Index(Box<SExpr>, Vec<SExpr>),
    /// `base.ndim` or `base.dtype`.
    Attr(Box<SExpr>, String),
    /// `base.shape(k)`.
    ShapeOf(Box<SExpr>, Box<SExpr>),
    /// Unary operation.
    Unary(ft_ir::UnaryOp, Box<SExpr>),
    /// Binary operation.
    Binary(ft_ir::BinaryOp, Box<SExpr>, Box<SExpr>),
    /// `select(cond, a, b)`.
    Select(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Cast `f32(e)` etc.
    Cast(DataType, Box<SExpr>),
}
