//! Indentation-aware lexer for the textual DSL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (without quotes).
    Str(String),
    /// Punctuation or operator, e.g. `"+="`, `"("`.
    Sym(&'static str),
    /// End of a logical line.
    Newline,
    /// Increase of indentation.
    Indent,
    /// Decrease of indentation.
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Name(n) => write!(f, "`{n}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Sym(s) => write!(f, "`{s}`"),
            Tok::Newline => write!(f, "newline"),
            Tok::Indent => write!(f, "indent"),
            Tok::Dedent => write!(f, "dedent"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

const SYMBOLS: &[&str] = &[
    "+=", "*=", "min=", "max=", "==", "!=", "<=", ">=", "(", ")", "[", "]", ":", ",", "+", "-",
    "*", "/", "%", "<", ">", "=", "@", ".",
];

/// Tokenize a source string, producing INDENT/DEDENT pairs from leading
/// whitespace (spaces only; tabs are rejected). Comments (`# …`) and blank
/// lines are skipped; brackets suppress newline significance.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut depth = 0usize; // bracket nesting
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let err = |m: &str| LexError {
            message: m.to_string(),
            line,
        };
        if raw.contains('\t') {
            return Err(err("tabs are not allowed; use spaces"));
        }
        // Strip comments (no string literals contain '#').
        let code = match raw.find('#') {
            Some(pos) if !raw[..pos].contains('"') => &raw[..pos],
            _ => raw,
        };
        if code.trim().is_empty() {
            continue;
        }
        if depth == 0 {
            let indent = code.len() - code.trim_start().len();
            let current = *indents.last().expect("never empty");
            if indent > current {
                indents.push(indent);
                out.push(Spanned {
                    tok: Tok::Indent,
                    line,
                });
            } else {
                while indent < *indents.last().expect("never empty") {
                    indents.pop();
                    out.push(Spanned {
                        tok: Tok::Dedent,
                        line,
                    });
                }
                if indent != *indents.last().expect("never empty") {
                    return Err(err("inconsistent indentation"));
                }
            }
        }
        let bytes = code.as_bytes();
        let mut i = code.len() - code.trim_start().len();
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c == ' ' {
                i += 1;
                continue;
            }
            if c == '"' {
                let end = code[i + 1..]
                    .find('"')
                    .ok_or_else(|| err("unterminated string"))?;
                out.push(Spanned {
                    tok: Tok::Str(code[i + 1..i + 1 + end].to_string()),
                    line,
                });
                i += end + 2;
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] as char == '.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] as char == 'e' || bytes[i] as char == 'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] as char == '+' || bytes[j] as char == '-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &code[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| err("bad float literal"))?)
                } else {
                    Tok::Int(text.parse().map_err(|_| err("bad integer literal"))?)
                };
                out.push(Spanned { tok, line });
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
                {
                    i += 1;
                }
                let name = code[start..i].to_string();
                // `min=` / `max=` reduce operators.
                if (name == "min" || name == "max")
                    && i < bytes.len()
                    && bytes[i] as char == '='
                    && (i + 1 >= bytes.len() || bytes[i + 1] as char != '=')
                {
                    out.push(Spanned {
                        tok: Tok::Sym(if name == "min" { "min=" } else { "max=" }),
                        line,
                    });
                    i += 1;
                    continue;
                }
                out.push(Spanned {
                    tok: Tok::Name(name),
                    line,
                });
                continue;
            }
            let mut matched = false;
            for sym in SYMBOLS {
                if sym.chars().next().map(char::is_alphabetic) == Some(true) {
                    continue; // min=/max= handled above
                }
                if code[i..].starts_with(sym) {
                    match *sym {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    out.push(Spanned {
                        tok: Tok::Sym(sym),
                        line,
                    });
                    i += sym.len();
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Err(err(&format!("unexpected character `{c}`")));
            }
        }
        if depth == 0 {
            out.push(Spanned {
                tok: Tok::Newline,
                line,
            });
        }
    }
    let last_line = src.lines().count();
    while indents.len() > 1 {
        indents.pop();
        out.push(Spanned {
            tok: Tok::Dedent,
            line: last_line,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line: last_line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = toks("x = a[i] + 2.5\n");
        assert_eq!(
            t,
            vec![
                Tok::Name("x".into()),
                Tok::Sym("="),
                Tok::Name("a".into()),
                Tok::Sym("["),
                Tok::Name("i".into()),
                Tok::Sym("]"),
                Tok::Sym("+"),
                Tok::Float(2.5),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("for i in range(0, n):\n  x[i] = 1\ny[0] = 2\n");
        let indents = t.iter().filter(|t| **t == Tok::Indent).count();
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = toks("# a comment\n\nx = 1  # trailing\n");
        assert!(t.iter().all(|t| !matches!(t, Tok::Str(_))));
        assert_eq!(t.iter().filter(|t| **t == Tok::Newline).count(), 1);
    }

    #[test]
    fn reduce_operators() {
        let t = toks("a[i] += 1\nb min= 2\nc max= 3\nd *= 4\n");
        assert!(t.contains(&Tok::Sym("+=")));
        assert!(t.contains(&Tok::Sym("min=")));
        assert!(t.contains(&Tok::Sym("max=")));
        assert!(t.contains(&Tok::Sym("*=")));
    }

    #[test]
    fn brackets_suppress_newlines() {
        let t = toks("x = create_var((2,\n  3), \"f32\", \"cpu\")\n");
        assert_eq!(t.iter().filter(|t| **t == Tok::Newline).count(), 1);
        assert!(t.contains(&Tok::Str("f32".into())));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("x = 1e-3\n")[2], Tok::Float(1e-3));
        assert_eq!(toks("x = 2.5e2\n")[2], Tok::Float(250.0));
    }

    #[test]
    fn errors_have_lines() {
        let e = lex("x = 1\ny = $\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("\tx = 1\n").is_err());
        assert!(lex("x = \"abc\n").is_err());
    }

    #[test]
    fn inconsistent_indent_rejected() {
        let e = lex("if a:\n    x = 1\n  y = 2\n").unwrap_err();
        assert!(e.message.contains("indentation"));
    }
}
