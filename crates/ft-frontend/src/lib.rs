//! # ft-frontend — the textual FreeTensor DSL
//!
//! A Python-flavoured surface syntax matching the paper's listings (and the
//! `ft-ir` pretty-printer's output), compiled to the IR through:
//!
//! 1. an indentation-aware [`lexer`],
//! 2. a recursive-descent [`parser`] producing a surface AST,
//! 3. a [`lower`]ing stage that performs *always-inlined* function calls and
//!    *partial evaluation* over tensor metadata (`.ndim` / `.shape(k)`),
//!    expanding the paper's dimension-free finite recursions (Fig. 6/9) into
//!    nested loops at compile time.
//!
//! ```
//! let src = r#"
//! def scale(x: f32[n] in, y: f32[n] out, n: size):
//!   for i in range(0, n):
//!     y[i] = x[i] * 2 + 1
//! "#;
//! let func = ft_frontend::compile_str(src, "scale").expect("compiles");
//! assert_eq!(func.params.len(), 2);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Module, SExpr, SFunc, SStmt};
pub use lower::{lower_module, LowerError};
pub use parser::{parse, ParseError};

/// Parse a module and lower the function named `entry` (inlining all calls).
///
/// # Errors
///
/// Returns the parse or lowering error, stringified with location context.
pub fn compile_str(src: &str, entry: &str) -> Result<ft_ir::Func, String> {
    let module = parse(src).map_err(|e| e.to_string())?;
    lower_module(&module, entry).map_err(|e| e.to_string())
}
