//! Lowering: name resolution, always-inlined calls, and partial evaluation.
//!
//! This stage implements two headline mechanisms of the paper:
//!
//! * **Always-inlined function calls** (§3.2): a call statement splices the
//!   callee's body into the caller, binding untyped parameters to *tensor
//!   views* (a base tensor plus an index prefix) or scalar expressions, so
//!   libop-style helpers co-optimize with the surrounding program.
//! * **Partial evaluation for dimension-free programming** (§3.3/§4.1,
//!   Figs. 6 and 9): tensor metadata (`.ndim`, `.shape(k)`) is a
//!   compile-time value; conditions over it fold to constants during
//!   lowering, so a finite recursion over `ndim` unrolls into a nested loop.

use crate::ast::{Module, SExpr, SParam, SStmt};
use ft_ir::{builder, DataType, Expr, Func, Stmt, StmtKind};
use ft_passes::const_fold_expr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Explanation.
    pub message: String,
    /// 1-based source line (0 when synthetic).
    pub line: usize,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LowerError {}

/// A tensor view: a base tensor restricted by an index prefix.
///
/// `A[i]` of a 3-D tensor is the 2-D view `{ base: A, prefix: [i] }`; its
/// `shape` holds the *remaining* dimensions — the compile-time metadata that
/// partial evaluation folds over.
#[derive(Debug, Clone)]
pub struct TensorView {
    /// Underlying tensor name (in the lowered program).
    pub base: String,
    /// Fixed leading indices.
    pub prefix: Vec<Expr>,
    /// Extents of the remaining dimensions.
    pub shape: Vec<Expr>,
    /// Element type.
    pub dtype: DataType,
}

impl TensorView {
    /// Remaining dimensionality.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }
}

#[derive(Debug, Clone)]
enum Binding {
    /// A scalar integer expression (loop iterator, size parameter, or a
    /// scalar argument of an inlined call).
    Scalar(Expr),
    /// A tensor view.
    View(TensorView),
}

#[derive(Debug, Clone)]
enum Value {
    Scalar(Expr),
    View(TensorView),
}

const MAX_INLINE_DEPTH: usize = 64;

struct Lowerer<'m> {
    module: &'m Module,
    scopes: Vec<HashMap<String, Binding>>,
    used_names: HashSet<String>,
    depth: usize,
}

/// Lower the function named `entry` of a parsed module to IR, inlining every
/// call and partially evaluating metadata conditions.
///
/// # Errors
///
/// Returns a [`LowerError`] for unknown names, rank mismatches, non-constant
/// metadata, unbounded recursion, and calls to undefined functions.
pub fn lower_module(module: &Module, entry: &str) -> Result<Func, LowerError> {
    let sfunc = module.find(entry).ok_or_else(|| LowerError {
        message: format!("no function named `{entry}`"),
        line: 0,
    })?;
    let mut lw = Lowerer {
        module,
        scopes: vec![HashMap::new()],
        used_names: HashSet::new(),
        depth: 0,
    };
    let mut func = Func::new(entry);
    // Bind size parameters first: tensor shapes may reference them
    // regardless of declaration order.
    for p in &sfunc.params {
        if let SParam::Size { name } = p {
            func = func.size_param(name.clone());
            lw.bind(name, Binding::Scalar(builder::var(name)));
            lw.used_names.insert(name.clone());
        }
    }
    for p in &sfunc.params {
        match p {
            SParam::Tensor {
                name,
                dtype,
                shape,
                mtype,
                atype,
            } => {
                let shape_ir: Vec<Expr> = shape
                    .iter()
                    .map(|e| lw.lower_scalar(e, sfunc.line))
                    .collect::<Result<_, _>>()?;
                func = func.param_on(name.clone(), shape_ir.clone(), *dtype, *mtype, *atype);
                lw.bind(
                    name,
                    Binding::View(TensorView {
                        base: name.clone(),
                        prefix: vec![],
                        shape: shape_ir,
                        dtype: *dtype,
                    }),
                );
                lw.used_names.insert(name.clone());
            }
            SParam::Size { .. } => {} // bound above
            SParam::Untyped { name } => {
                return Err(LowerError {
                    message: format!(
                        "entry function parameter `{name}` needs a type annotation"
                    ),
                    line: sfunc.line,
                })
            }
        }
    }
    let body = lw.lower_block(&sfunc.body)?;
    Ok(func.body(body))
}

impl Lowerer<'_> {
    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), b);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b);
            }
        }
        None
    }

    fn unique_name(&mut self, base: &str) -> String {
        if self.used_names.insert(base.to_string()) {
            return base.to_string();
        }
        for k in 1.. {
            let cand = format!("{base}.{k}");
            if self.used_names.insert(cand.clone()) {
                return cand;
            }
        }
        unreachable!()
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError {
            message: msg.into(),
            line,
        })
    }

    fn lower_block(&mut self, stmts: &[SStmt]) -> Result<Stmt, LowerError> {
        let mut out: Vec<Stmt> = Vec::new();
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                SStmt::VarDef {
                    name,
                    shape,
                    dtype,
                    mtype,
                    line,
                } => {
                    // The rest of the block is the definition's scope.
                    let shape_ir: Vec<Expr> = shape
                        .iter()
                        .map(|e| self.lower_scalar(e, *line))
                        .collect::<Result<_, _>>()?;
                    let unique = self.unique_name(name);
                    self.scopes.push(HashMap::new());
                    self.bind(
                        name,
                        Binding::View(TensorView {
                            base: unique.clone(),
                            prefix: vec![],
                            shape: shape_ir.clone(),
                            dtype: *dtype,
                        }),
                    );
                    let rest = self.lower_block(&stmts[i + 1..])?;
                    self.scopes.pop();
                    out.push(builder::var_def(unique, shape_ir, *dtype, *mtype, rest));
                    return Ok(if out.len() == 1 {
                        out.pop().expect("len 1")
                    } else {
                        Stmt::new(StmtKind::Block(out))
                    });
                }
                s => out.push(self.lower_stmt(s)?),
            }
            i += 1;
        }
        Ok(match out.len() {
            0 => builder::empty(),
            1 => out.pop().expect("len 1"),
            _ => Stmt::new(StmtKind::Block(out)),
        })
    }

    fn lower_stmt(&mut self, s: &SStmt) -> Result<Stmt, LowerError> {
        match s {
            SStmt::Pass => Ok(builder::empty()),
            SStmt::VarDef { .. } => unreachable!("handled by lower_block"),
            SStmt::For {
                iter,
                begin,
                end,
                body,
                line,
            } => {
                let b = self.lower_scalar(begin, *line)?;
                let e = self.lower_scalar(end, *line)?;
                let unique = self.unique_name(iter);
                self.scopes.push(HashMap::new());
                self.bind(iter, Binding::Scalar(builder::var(&unique)));
                let body_ir = self.lower_block(body)?;
                self.scopes.pop();
                Ok(builder::for_(unique, b, e, body_ir))
            }
            SStmt::If {
                cond,
                then,
                otherwise,
                line,
            } => {
                let c = const_fold_expr(self.lower_scalar(cond, *line)?);
                // Partial evaluation: metadata conditions fold to constants,
                // so only the taken branch is lowered (paper Fig. 9).
                match c.as_bool() {
                    Some(true) => self.lower_block(then),
                    Some(false) => self.lower_block(otherwise),
                    None => {
                        let t = self.lower_block(then)?;
                        if otherwise.is_empty() {
                            Ok(builder::if_(c, t))
                        } else {
                            let o = self.lower_block(otherwise)?;
                            Ok(builder::if_else(c, t, o))
                        }
                    }
                }
            }
            SStmt::Assign {
                target,
                indices,
                value,
                line,
            } => {
                let (base, full) = self.lower_target(target, indices, *line)?;
                let v = self.lower_scalar(value, *line)?;
                Ok(builder::store(base, full, v))
            }
            SStmt::Reduce {
                target,
                indices,
                op,
                value,
                line,
            } => {
                let (base, full) = self.lower_target(target, indices, *line)?;
                let v = self.lower_scalar(value, *line)?;
                Ok(builder::reduce(base, full, *op, v))
            }
            SStmt::Call { callee, args, line } => self.lower_call(callee, args, *line),
        }
    }

    fn lower_target(
        &mut self,
        target: &str,
        indices: &[SExpr],
        line: usize,
    ) -> Result<(String, Vec<Expr>), LowerError> {
        let Some(Binding::View(view)) = self.lookup(target).cloned() else {
            return self.err(line, format!("`{target}` is not an assignable tensor"));
        };
        if indices.len() != view.ndim() {
            return self.err(
                line,
                format!(
                    "`{target}` expects {} indices, got {}",
                    view.ndim(),
                    indices.len()
                ),
            );
        }
        let mut full = view.prefix.clone();
        for idx in indices {
            full.push(self.lower_scalar(idx, line)?);
        }
        Ok((view.base, full))
    }

    fn lower_call(
        &mut self,
        callee: &str,
        args: &[SExpr],
        line: usize,
    ) -> Result<Stmt, LowerError> {
        let Some(func) = self.module.find(callee) else {
            return self.err(line, format!("call to undefined function `{callee}`"));
        };
        if self.depth >= MAX_INLINE_DEPTH {
            return self.err(
                line,
                format!(
                    "inlining depth limit ({MAX_INLINE_DEPTH}) exceeded in `{callee}` — \
                     is a recursion missing its metadata base case?"
                ),
            );
        }
        if func.params.len() != args.len() {
            return self.err(
                line,
                format!(
                    "`{callee}` takes {} arguments, got {}",
                    func.params.len(),
                    args.len()
                ),
            );
        }
        // Evaluate arguments in the caller's scope.
        let mut bindings: Vec<(String, Binding)> = Vec::new();
        for (p, a) in func.params.iter().zip(args) {
            let value = self.lower_value(a, line)?;
            let binding = match (p, value) {
                (SParam::Tensor { dtype, shape, .. }, Value::View(v)) => {
                    if v.ndim() != shape.len() {
                        return self.err(
                            line,
                            format!(
                                "argument for `{}` of `{callee}` has rank {}, expected {}",
                                p.name(),
                                v.ndim(),
                                shape.len()
                            ),
                        );
                    }
                    if v.dtype != *dtype {
                        return self.err(
                            line,
                            format!(
                                "argument for `{}` of `{callee}` has dtype {}, expected {dtype}",
                                p.name(),
                                v.dtype
                            ),
                        );
                    }
                    Binding::View(v)
                }
                (SParam::Untyped { .. }, Value::View(v)) => Binding::View(v),
                (SParam::Size { .. } | SParam::Untyped { .. }, Value::Scalar(e)) => {
                    Binding::Scalar(e)
                }
                (SParam::Tensor { .. }, Value::Scalar(_)) => {
                    return self.err(
                        line,
                        format!("`{}` of `{callee}` expects a tensor argument", p.name()),
                    )
                }
                (SParam::Size { .. }, Value::View(_)) => {
                    return self.err(
                        line,
                        format!("`{}` of `{callee}` expects a scalar argument", p.name()),
                    )
                }
            };
            bindings.push((p.name().to_string(), binding));
        }
        // Callee sees only its parameters (no lexical capture).
        let saved_scopes = std::mem::replace(&mut self.scopes, vec![HashMap::new()]);
        for (name, b) in bindings {
            self.bind(&name, b);
        }
        self.depth += 1;
        let body = self.lower_block(&func.body);
        self.depth -= 1;
        self.scopes = saved_scopes;
        body
    }

    fn lower_scalar(&mut self, e: &SExpr, line: usize) -> Result<Expr, LowerError> {
        match self.lower_value(e, line)? {
            Value::Scalar(x) => Ok(x),
            Value::View(v) if v.ndim() == 0 => Ok(Expr::Load {
                var: v.base,
                indices: v.prefix,
            }),
            Value::View(v) => self.err(
                line,
                format!(
                    "tensor `{}` of rank {} used where a scalar is required",
                    v.base,
                    v.ndim()
                ),
            ),
        }
    }

    fn lower_value(&mut self, e: &SExpr, line: usize) -> Result<Value, LowerError> {
        Ok(match e {
            SExpr::Int(v) => Value::Scalar(Expr::IntConst(*v)),
            SExpr::Float(v) => Value::Scalar(Expr::FloatConst(*v)),
            SExpr::Bool(v) => Value::Scalar(Expr::BoolConst(*v)),
            SExpr::Inf => Value::Scalar(Expr::FloatConst(f64::INFINITY)),
            SExpr::Name(n) => match self.lookup(n) {
                Some(Binding::Scalar(x)) => Value::Scalar(x.clone()),
                Some(Binding::View(v)) => Value::View(v.clone()),
                None => return self.err(line, format!("undefined name `{n}`")),
            },
            SExpr::Index(base, indices) => {
                let Value::View(mut view) = self.lower_value(base, line)? else {
                    return self.err(line, "only tensors can be indexed");
                };
                if indices.len() > view.ndim() {
                    return self.err(
                        line,
                        format!(
                            "too many indices: `{}` has {} remaining dimensions",
                            view.base,
                            view.ndim()
                        ),
                    );
                }
                for idx in indices {
                    let x = self.lower_scalar(idx, line)?;
                    view.prefix.push(x);
                    view.shape.remove(0);
                }
                Value::View(view)
            }
            SExpr::Attr(base, attr) => {
                let Value::View(view) = self.lower_value(base, line)? else {
                    return self.err(line, "metadata attributes apply to tensors");
                };
                match attr.as_str() {
                    // Compile-time metadata: the pivot of partial evaluation.
                    "ndim" => Value::Scalar(Expr::IntConst(view.ndim() as i64)),
                    other => return self.err(line, format!("unknown attribute `.{other}`")),
                }
            }
            SExpr::ShapeOf(base, k) => {
                let Value::View(view) = self.lower_value(base, line)? else {
                    return self.err(line, "`.shape()` applies to tensors");
                };
                let kk = const_fold_expr(self.lower_scalar(k, line)?);
                let Some(d) = kk.as_int() else {
                    return self.err(line, "`.shape(k)` needs a compile-time constant k");
                };
                if d < 0 || d as usize >= view.ndim() {
                    return self.err(
                        line,
                        format!("`.shape({d})` out of range for rank {}", view.ndim()),
                    );
                }
                Value::Scalar(view.shape[d as usize].clone())
            }
            SExpr::Unary(op, a) => {
                let x = self.lower_scalar(a, line)?;
                Value::Scalar(Expr::unary(*op, x))
            }
            SExpr::Binary(op, a, b) => {
                let x = self.lower_scalar(a, line)?;
                let y = self.lower_scalar(b, line)?;
                Value::Scalar(Expr::binary(*op, x, y))
            }
            SExpr::Select(c, a, b) => {
                let cc = self.lower_scalar(c, line)?;
                let x = self.lower_scalar(a, line)?;
                let y = self.lower_scalar(b, line)?;
                Value::Scalar(Expr::select(cc, x, y))
            }
            SExpr::Cast(dt, a) => {
                let x = self.lower_scalar(a, line)?;
                Value::Scalar(Expr::cast(*dt, x))
            }
        })
    }
}

/// Check that the lowered entry is well-formed for the rest of the pipeline
/// (unique definition names — guaranteed by construction, asserted here).
pub fn validate(func: &Func) -> Result<(), LowerError> {
    if let Some(dup) = ft_analysis_free_duplicate(func) {
        return Err(LowerError {
            message: format!("duplicate tensor definition `{dup}` after lowering"),
            line: 0,
        });
    }
    Ok(())
}

fn ft_analysis_free_duplicate(func: &Func) -> Option<String> {
    let mut seen: HashSet<String> = func.params.iter().map(|p| p.name.clone()).collect();
    let mut dup = None;
    func.body.walk(&mut |s| {
        if let StmtKind::VarDef { name, .. } = &s.kind {
            if !seen.insert(name.clone()) && dup.is_none() {
                dup = Some(name.clone());
            }
        }
    });
    dup
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ft_ir::StmtKind;

    fn lower(src: &str, entry: &str) -> Func {
        let m = parse(src).expect("parse ok");
        let f = lower_module(&m, entry).expect("lower ok");
        validate(&f).expect("validate ok");
        f
    }

    #[test]
    fn lowers_simple_loop() {
        let f = lower(
            "def f(x: f32[n] in, y: f32[n] out, n: size):\n  for i in range(0, n):\n    y[i] = x[i] * 2 + 1\n",
            "f",
        );
        let text = f.to_string();
        assert!(text.contains("y[i] = x[i] * 2 + 1"), "{text}");
        assert_eq!(f.size_params, vec!["n".to_string()]);
    }

    #[test]
    fn paper_fig6b_recursion_expands_to_nested_loops() {
        // Dimension-free add() with a finite recursion; calling it on 3-D
        // views must produce a 3-level loop nest (paper Fig. 9).
        let src = r#"
def add(A, B, C):
  if A.ndim == 0:
    C = A + B
  else:
    for i in range(A.shape(0)):
      add(A[i], B[i], C[i])

def entry(A: f32[2, 3, 4] in, B: f32[2, 3, 4] in, C: f32[2, 3, 4] out):
  add(A, B, C)
"#;
        let f = lower(src, "entry");
        let loops = ft_ir::find::find_stmts(&f.body, &|s| {
            matches!(s.kind, StmtKind::For { .. })
        });
        assert_eq!(loops.len(), 3, "{f}");
        // No branches survive: all ndim tests folded at compile time.
        assert!(ft_ir::find::find_stmts(&f.body, &|s| {
            matches!(s.kind, StmtKind::If { .. })
        })
        .is_empty());
        let text = f.to_string();
        assert!(text.contains("C[i, i.1, i.2] = A[i, i.1, i.2] + B[i, i.1, i.2]"), "{text}");
    }

    #[test]
    fn infinite_recursion_is_reported() {
        let src = "def loopy(A):\n  loopy(A)\n\ndef entry(A: f32[2] in, y: f32[1] out):\n  loopy(A)\n";
        let m = parse(src).unwrap();
        let err = lower_module(&m, "entry").unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");
    }

    #[test]
    fn create_var_scopes_rest_of_block() {
        let src = "def f(y: f32[4] out):\n  t = create_var((4,), \"f32\", \"cpu\")\n  t[0] = 1.0\n  y[0] = t[0]\n";
        let f = lower(src, "f");
        match &f.body.kind {
            StmtKind::VarDef { name, body, .. } => {
                assert_eq!(name, "t");
                assert!(matches!(body.kind, StmtKind::Block(_)));
            }
            other => panic!("expected VarDef at top, got {other:?}"),
        }
    }

    #[test]
    fn inlined_locals_are_renamed() {
        // Both calls declare `t`; lowering must uniquify.
        let src = r#"
def helper(X, i):
  t = create_var((), "f32", "cpu")
  t = X[i] * 2.0
  X[i] = t

def entry(x: f32[4] inout):
  helper(x, 0)
  helper(x, 1)
"#;
        let f = lower(src, "entry");
        let mut names = Vec::new();
        f.body.walk(&mut |s| {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                names.push(name.clone());
            }
        });
        names.sort();
        assert_eq!(names, vec!["t".to_string(), "t.1".to_string()]);
    }

    #[test]
    fn views_compose_through_calls() {
        // Pass a row of a matrix; the callee indexes the remaining dim.
        let src = r#"
def fill(row, v, m: size):
  for j in range(m):
    row[j] = v

def entry(A: f32[3, 5] out):
  for i in range(3):
    fill(A[i], i * 10, 5)
"#;
        let f = lower(src, "entry");
        let text = f.to_string();
        assert!(text.contains("A[i, j] = i * 10"), "{text}");
    }

    #[test]
    fn longformer_style_listing_lowers() {
        // The paper's Fig. 5 inner computation (structure check only).
        let src = r#"
def fwd(Q: f32[64, 16] in, K: f32[64, 16] in, y: f32[64] out, w: size):
  for j in range(64):
    dot = create_var((2 * w + 1,), "f32", "cpu")
    for k in range(-w, w + 1):
      if j + k >= 0 and j + k < 64:
        dot[k + w] = 0.0
        for p in range(16):
          dot[k + w] += Q[j, p] * K[j + k, p]
    dot_max = create_var((), "f32", "cpu")
    dot_max = -inf
    for k2 in range(2 * w + 1):
      dot_max max= dot[k2]
    y[j] = dot_max
"#;
        let f = lower(src, "fwd");
        let text = f.to_string();
        assert!(text.contains("dot[k + w] += Q[j, p] * K[j + k, p]"), "{text}");
        assert!(text.contains("dot_max[] max= dot[k2]"), "{text}");
    }

    #[test]
    fn errors_are_specific() {
        let m = parse("def f(y: f32[2] out):\n  y[0, 1] = 1\n").unwrap();
        let e = lower_module(&m, "f").unwrap_err();
        assert!(e.message.contains("expects 1 indices"), "{e}");
        let m = parse("def f(y: f32[2] out):\n  z[0] = 1\n").unwrap();
        let e = lower_module(&m, "f").unwrap_err();
        assert!(e.message.contains("not an assignable"), "{e}");
        let m = parse("def f(y: f32[2] out):\n  g(y)\n").unwrap();
        let e = lower_module(&m, "f").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e}");
    }

    #[test]
    fn compiled_programs_execute() {
        // End-to-end with the runtime: dimension-free add on 2-D inputs.
        let src = r#"
def add(A, B, C):
  if A.ndim == 0:
    C = A + B
  else:
    for i in range(A.shape(0)):
      add(A[i], B[i], C[i])

def entry(A: f32[2, 3] in, B: f32[2, 3] in, C: f32[2, 3] out):
  add(A, B, C)
"#;
        let f = lower(src, "entry");
        let rt = ft_runtime::Runtime::new();
        let a = ft_runtime::TensorVal::from_f32(&[2, 3], (0..6).map(|x| x as f32).collect());
        let b = ft_runtime::TensorVal::from_f32(&[2, 3], vec![10.0; 6]);
        let inputs: std::collections::HashMap<String, ft_runtime::TensorVal> =
            [("A".to_string(), a), ("B".to_string(), b)]
                .into_iter()
                .collect();
        let r = rt.run(&f, &inputs, &Default::default()).unwrap();
        assert_eq!(
            r.output("C").to_f64_vec(),
            vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        );
    }
}
