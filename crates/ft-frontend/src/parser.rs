//! Recursive-descent parser producing the surface AST.

use crate::ast::{Module, SExpr, SFunc, SParam, SStmt};
use crate::lexer::{lex, LexError, Spanned, Tok};
use ft_ir::{AccessType, BinaryOp, DataType, MemType, ReduceOp, UnaryOp};
use std::fmt;

/// A parse failure with location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parse a whole module.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line.
pub fn parse(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut funcs = Vec::new();
    while !p.at(&Tok::Eof) {
        funcs.push(p.funcdef()?);
    }
    Ok(Module { funcs })
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect_sym(&mut self, s: &'static str) -> Result<(), ParseError> {
        if self.at(&Tok::Sym(s)) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{s}`, found {}", self.peek()))
        }
    }

    fn expect_name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Name(n) => {
                self.bump();
                Ok(n)
            }
            other => self.err(format!("expected a name, found {other}")),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::Name(n) if n == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn eat_newline(&mut self) -> Result<(), ParseError> {
        if self.at(&Tok::Newline) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected end of line, found {}", self.peek()))
        }
    }

    fn funcdef(&mut self) -> Result<SFunc, ParseError> {
        let line = self.line();
        self.expect_kw("def")?;
        let name = self.expect_name()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.at(&Tok::Sym(")")) {
            loop {
                params.push(self.param()?);
                if self.at(&Tok::Sym(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        self.expect_sym(":")?;
        self.eat_newline()?;
        let body = self.suite_body()?;
        Ok(SFunc {
            name,
            params,
            body,
            line,
        })
    }

    fn param(&mut self) -> Result<SParam, ParseError> {
        let name = self.expect_name()?;
        if !self.at(&Tok::Sym(":")) {
            return Ok(SParam::Untyped { name });
        }
        self.bump();
        let ty = self.expect_name()?;
        if ty == "size" {
            return Ok(SParam::Size { name });
        }
        let dtype = DataType::parse(&ty)
            .ok_or(())
            .or_else(|_| self.err::<DataType>(format!("unknown element type `{ty}`")))?;
        self.expect_sym("[")?;
        let mut shape = Vec::new();
        if !self.at(&Tok::Sym("]")) {
            loop {
                shape.push(self.expr()?);
                if self.at(&Tok::Sym(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_sym("]")?;
        let mut mtype = MemType::CpuHeap;
        if self.at(&Tok::Sym("@")) {
            self.bump();
            let mut spec = self.expect_name()?;
            if self.at(&Tok::Sym("/")) {
                self.bump();
                spec = format!("{spec}/{}", self.expect_name()?);
            }
            mtype = MemType::parse(&spec)
                .ok_or(())
                .or_else(|_| self.err::<MemType>(format!("unknown memory type `{spec}`")))?;
        }
        let atype = match self.peek().clone() {
            Tok::Name(k) if k == "in" => {
                self.bump();
                AccessType::Input
            }
            Tok::Name(k) if k == "out" => {
                self.bump();
                AccessType::Output
            }
            Tok::Name(k) if k == "inout" => {
                self.bump();
                AccessType::InOut
            }
            _ => AccessType::Input,
        };
        Ok(SParam::Tensor {
            name,
            dtype,
            shape,
            mtype,
            atype,
        })
    }

    fn suite_body(&mut self) -> Result<Vec<SStmt>, ParseError> {
        if !self.at(&Tok::Indent) {
            return self.err("expected an indented block");
        }
        self.bump();
        let mut stmts = Vec::new();
        while !self.at(&Tok::Dedent) && !self.at(&Tok::Eof) {
            stmts.push(self.stmt()?);
        }
        if self.at(&Tok::Dedent) {
            self.bump();
        }
        Ok(stmts)
    }

    fn suite(&mut self) -> Result<Vec<SStmt>, ParseError> {
        self.expect_sym(":")?;
        self.eat_newline()?;
        self.suite_body()
    }

    fn stmt(&mut self) -> Result<SStmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Name(kw) if kw == "for" => {
                self.bump();
                let iter = self.expect_name()?;
                self.expect_kw("in")?;
                self.expect_kw("range")?;
                self.expect_sym("(")?;
                let first = self.expr()?;
                let (begin, end) = if self.at(&Tok::Sym(",")) {
                    self.bump();
                    let e = self.expr()?;
                    (first, e)
                } else {
                    (SExpr::Int(0), first)
                };
                self.expect_sym(")")?;
                let body = self.suite()?;
                Ok(SStmt::For {
                    iter,
                    begin,
                    end,
                    body,
                    line,
                })
            }
            Tok::Name(kw) if kw == "if" => {
                self.bump();
                let cond = self.expr()?;
                let then = self.suite()?;
                let otherwise = if matches!(self.peek(), Tok::Name(k) if k == "else") {
                    self.bump();
                    self.suite()?
                } else {
                    Vec::new()
                };
                Ok(SStmt::If {
                    cond,
                    then,
                    otherwise,
                    line,
                })
            }
            Tok::Name(kw) if kw == "pass" => {
                self.bump();
                self.eat_newline()?;
                Ok(SStmt::Pass)
            }
            Tok::Name(_) => self.simple_stmt(line),
            other => self.err(format!("unexpected {other}")),
        }
    }

    fn simple_stmt(&mut self, line: usize) -> Result<SStmt, ParseError> {
        let name = self.expect_name()?;
        // Call statement: `f(args…)`.
        if self.at(&Tok::Sym("(")) {
            self.bump();
            let mut args = Vec::new();
            if !self.at(&Tok::Sym(")")) {
                loop {
                    args.push(self.expr()?);
                    if self.at(&Tok::Sym(",")) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            self.eat_newline()?;
            return Ok(SStmt::Call {
                callee: name,
                args,
                line,
            });
        }
        // Optional index list.
        let mut indices = Vec::new();
        if self.at(&Tok::Sym("[")) {
            self.bump();
            if !self.at(&Tok::Sym("]")) {
                loop {
                    indices.push(self.expr()?);
                    if self.at(&Tok::Sym(",")) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect_sym("]")?;
        }
        let op = match self.peek().clone() {
            Tok::Sym("=") => None,
            Tok::Sym("+=") => Some(ReduceOp::Add),
            Tok::Sym("*=") => Some(ReduceOp::Mul),
            Tok::Sym("min=") => Some(ReduceOp::Min),
            Tok::Sym("max=") => Some(ReduceOp::Max),
            other => return self.err(format!("expected an assignment, found {other}")),
        };
        self.bump();
        // `create_var` definition.
        if op.is_none() && matches!(self.peek(), Tok::Name(k) if k == "create_var") {
            self.bump();
            self.expect_sym("(")?;
            self.expect_sym("(")?;
            let mut shape = Vec::new();
            if !self.at(&Tok::Sym(")")) {
                loop {
                    shape.push(self.expr()?);
                    if self.at(&Tok::Sym(",")) {
                        self.bump();
                        if self.at(&Tok::Sym(")")) {
                            break; // trailing comma, e.g. `(m,)`
                        }
                    } else {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            self.expect_sym(",")?;
            let Tok::Str(dt) = self.bump() else {
                return self.err("expected a dtype string");
            };
            let dtype = DataType::parse(&dt)
                .ok_or(())
                .or_else(|_| self.err::<DataType>(format!("unknown element type `{dt}`")))?;
            self.expect_sym(",")?;
            let Tok::Str(mt) = self.bump() else {
                return self.err("expected a memory-type string");
            };
            let mtype = MemType::parse(&mt)
                .ok_or(())
                .or_else(|_| self.err::<MemType>(format!("unknown memory type `{mt}`")))?;
            self.expect_sym(")")?;
            self.eat_newline()?;
            if !indices.is_empty() {
                return self.err("create_var target cannot be indexed");
            }
            return Ok(SStmt::VarDef {
                name,
                shape,
                dtype,
                mtype,
                line,
            });
        }
        let value = self.expr()?;
        self.eat_newline()?;
        Ok(match op {
            None => SStmt::Assign {
                target: name,
                indices,
                value,
                line,
            },
            Some(op) => SStmt::Reduce {
                target: name,
                indices,
                op,
                value,
                line,
            },
        })
    }

    // Expression precedence: or < and < not < cmp < add < mul < unary < postfix.
    fn expr(&mut self) -> Result<SExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.and_expr()?;
        while matches!(self.peek(), Tok::Name(k) if k == "or") {
            self.bump();
            let r = self.and_expr()?;
            e = SExpr::Binary(BinaryOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.not_expr()?;
        while matches!(self.peek(), Tok::Name(k) if k == "and") {
            self.bump();
            let r = self.not_expr()?;
            e = SExpr::Binary(BinaryOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<SExpr, ParseError> {
        if matches!(self.peek(), Tok::Name(k) if k == "not") {
            self.bump();
            let e = self.not_expr()?;
            return Ok(SExpr::Unary(UnaryOp::Not, Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SExpr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::Sym("==") => Some(BinaryOp::Eq),
            Tok::Sym("!=") => Some(BinaryOp::Ne),
            Tok::Sym("<") => Some(BinaryOp::Lt),
            Tok::Sym("<=") => Some(BinaryOp::Le),
            Tok::Sym(">") => Some(BinaryOp::Gt),
            Tok::Sym(">=") => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.add_expr()?;
            Ok(SExpr::Binary(op, Box::new(e), Box::new(r)))
        } else {
            Ok(e)
        }
    }

    fn add_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => BinaryOp::Add,
                Tok::Sym("-") => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = SExpr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => BinaryOp::Mul,
                Tok::Sym("/") => BinaryOp::Div,
                Tok::Sym("%") => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            e = SExpr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<SExpr, ParseError> {
        if self.at(&Tok::Sym("-")) {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(SExpr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::Sym("[") => {
                    self.bump();
                    let mut indices = Vec::new();
                    if !self.at(&Tok::Sym("]")) {
                        loop {
                            indices.push(self.expr()?);
                            if self.at(&Tok::Sym(",")) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_sym("]")?;
                    e = SExpr::Index(Box::new(e), indices);
                }
                Tok::Sym(".") => {
                    self.bump();
                    let attr = self.expect_name()?;
                    if attr == "shape" {
                        self.expect_sym("(")?;
                        let k = self.expr()?;
                        self.expect_sym(")")?;
                        e = SExpr::ShapeOf(Box::new(e), Box::new(k));
                    } else {
                        e = SExpr::Attr(Box::new(e), attr);
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<SExpr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(SExpr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(SExpr::Float(v))
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Name(n) => {
                self.bump();
                match n.as_str() {
                    "true" | "True" => return Ok(SExpr::Bool(true)),
                    "false" | "False" => return Ok(SExpr::Bool(false)),
                    "inf" => return Ok(SExpr::Inf),
                    _ => {}
                }
                if self.at(&Tok::Sym("(")) {
                    return self.builtin_call(&n);
                }
                Ok(SExpr::Name(n))
            }
            other => self.err(format!("unexpected {other} in expression")),
        }
    }

    fn builtin_call(&mut self, name: &str) -> Result<SExpr, ParseError> {
        self.expect_sym("(")?;
        let mut args = Vec::new();
        if !self.at(&Tok::Sym(")")) {
            loop {
                args.push(self.expr()?);
                if self.at(&Tok::Sym(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        let unary = |op: UnaryOp, mut args: Vec<SExpr>| -> Result<SExpr, ParseError> {
            if args.len() != 1 {
                return Err(ParseError {
                    message: format!("{op:?} takes one argument"),
                    line: 0,
                });
            }
            Ok(SExpr::Unary(op, Box::new(args.remove(0))))
        };
        let binary = |op: BinaryOp, mut args: Vec<SExpr>| -> Result<SExpr, ParseError> {
            if args.len() != 2 {
                return Err(ParseError {
                    message: format!("{op:?} takes two arguments"),
                    line: 0,
                });
            }
            let a = args.remove(0);
            let b = args.remove(0);
            Ok(SExpr::Binary(op, Box::new(a), Box::new(b)))
        };
        match name {
            "abs" => unary(UnaryOp::Abs, args),
            "sqrt" => unary(UnaryOp::Sqrt, args),
            "exp" => unary(UnaryOp::Exp, args),
            "ln" => unary(UnaryOp::Ln, args),
            "sigmoid" => unary(UnaryOp::Sigmoid, args),
            "tanh" => unary(UnaryOp::Tanh, args),
            "sign" => unary(UnaryOp::Sign, args),
            "min" => binary(BinaryOp::Min, args),
            "max" => binary(BinaryOp::Max, args),
            "pow" => binary(BinaryOp::Pow, args),
            "select" => {
                if args.len() != 3 {
                    return self.err("select takes three arguments");
                }
                let mut it = args.into_iter();
                Ok(SExpr::Select(
                    Box::new(it.next().expect("len 3")),
                    Box::new(it.next().expect("len 3")),
                    Box::new(it.next().expect("len 3")),
                ))
            }
            dt if DataType::parse(dt).is_some() => {
                if args.len() != 1 {
                    return self.err("casts take one argument");
                }
                Ok(SExpr::Cast(
                    DataType::parse(dt).expect("checked"),
                    Box::new(args.into_iter().next().expect("len 1")),
                ))
            }
            other => self.err(format!(
                "`{other}` is not a builtin (user calls are statements)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_signature() {
        let m = parse(
            "def f(x: f32[n, m] @ gpu in, y: f32[n] out, n: size, m: size):\n  pass\n",
        )
        .unwrap();
        let f = m.find("f").unwrap();
        assert_eq!(f.params.len(), 4);
        match &f.params[0] {
            SParam::Tensor {
                dtype,
                shape,
                mtype,
                atype,
                ..
            } => {
                assert_eq!(*dtype, DataType::F32);
                assert_eq!(shape.len(), 2);
                assert_eq!(*mtype, MemType::GpuGlobal);
                assert_eq!(*atype, AccessType::Input);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&f.params[2], SParam::Size { .. }));
    }

    #[test]
    fn parses_loops_conditions_and_reduces() {
        let src = "def f(y: f32[8] out):\n  for i in range(8):\n    if i % 2 == 0 and i < 6:\n      y[i] += i * 2\n    else:\n      y[i] = 0.0\n";
        let m = parse(src).unwrap();
        let f = m.find("f").unwrap();
        let SStmt::For { body, begin, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(*begin, SExpr::Int(0));
        assert!(matches!(&body[0], SStmt::If { otherwise, .. } if !otherwise.is_empty()));
    }

    #[test]
    fn parses_create_var_and_metadata() {
        let src = "def f(A):\n  t = create_var((2, 3), \"f32\", \"gpu/shared\")\n  if A.ndim == 0:\n    t[0, 0] = A.shape(0)\n";
        let m = parse(src).unwrap();
        let f = m.find("f").unwrap();
        assert!(matches!(&f.params[0], SParam::Untyped { .. }));
        assert!(
            matches!(&f.body[0], SStmt::VarDef { shape, mtype, .. }
                if shape.len() == 2 && *mtype == MemType::GpuShared)
        );
    }

    #[test]
    fn parses_scalar_create_var_and_trailing_comma() {
        let src = "def f(y: f32[1] out):\n  a = create_var((), \"f32\", \"cpu\")\n  b = create_var((4,), \"f32\", \"cpu\")\n  a = 1.0\n  y[0] = a\n";
        let m = parse(src).unwrap();
        let f = m.find("f").unwrap();
        assert!(matches!(&f.body[0], SStmt::VarDef { shape, .. } if shape.is_empty()));
        assert!(matches!(&f.body[1], SStmt::VarDef { shape, .. } if shape.len() == 1));
        // Bare-name assignment parses as a 0-index store.
        assert!(
            matches!(&f.body[2], SStmt::Assign { indices, .. } if indices.is_empty())
        );
    }

    #[test]
    fn parses_call_statements_and_builtins() {
        let src =
            "def f(A, B, C):\n  add(A[0], B[0], C[0])\n  C[1] = max(abs(A[1, 2]), exp(B[0]))\n";
        let m = parse(src).unwrap();
        let f = m.find("f").unwrap();
        assert!(matches!(&f.body[0], SStmt::Call { callee, args, .. }
            if callee == "add" && args.len() == 3));
        assert!(matches!(&f.body[1], SStmt::Assign { .. }));
    }

    #[test]
    fn parses_range_with_negative_bounds() {
        let src = "def f(y: f32[8] out, w: size):\n  for k in range(-w, w + 1):\n    y[k + w] = k\n";
        let m = parse(src).unwrap();
        let f = m.find("f").unwrap();
        let SStmt::For { begin, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(begin, SExpr::Unary(UnaryOp::Neg, _)));
    }

    #[test]
    fn error_reporting_includes_line() {
        let e = parse("def f(y: f32[1] out):\n  y[0] = = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("def f(:\n  pass\n").is_err());
    }

    #[test]
    fn round_trips_printer_output() {
        use ft_ir::prelude::*;
        let f = Func::new("rt")
            .param("x", [8], DataType::F32, AccessType::Input)
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                if_(
                    var("i").lt(4),
                    store("y", [var("i")], load("x", [var("i")]) * 2.0f32),
                ),
            ));
        let text = f.to_string();
        let m = parse(&text).expect("printer output parses");
        assert!(m.find("rt").is_some());
    }
}
