//! Property test: programs printed by the IR pretty-printer parse back and
//! compute the same results (printer/parser round-trip through execution).

use ft_ir::prelude::*;
use ft_runtime::{Runtime, TensorVal};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random scalar expressions over iterator `i` and input tensor `x[16]`
/// (always in-bounds: subscripts are `i` or constants 0..16).
fn arb_value_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4i64..=4).prop_map(Expr::IntConst),
        (-2.0f64..2.0).prop_map(Expr::FloatConst),
        Just(var("i")),
        Just(load("x", [var("i")])),
        (0usize..16).prop_map(|k| load("x", [k])),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            inner.clone().prop_map(intrin::abs),
            inner.clone().prop_map(|a| intrin::exp(a * 0.125f64)),
            inner.clone().prop_map(intrin::sigmoid),
            inner.clone().prop_map(|a| -a),
        ]
    })
}

/// Random straight-line-plus-control programs writing y[16] from x[16].
fn arb_program() -> impl Strategy<Value = Func> {
    (
        arb_value_expr(),
        arb_value_expr(),
        0i64..8,
        proptest::bool::ANY,
    )
        .prop_map(|(e1, e2, pivot, use_reduce)| {
            let body = if use_reduce {
                block([
                    store("y", [var("i")], e1),
                    if_(
                        var("i").ge(pivot),
                        reduce("y", [var("i")], ReduceOp::Add, e2),
                    ),
                ])
            } else {
                block([if_else(
                    var("i").lt(pivot),
                    store("y", [var("i")], e1),
                    store("y", [var("i")], e2),
                )])
            };
            Func::new("rt")
                .param("x", [16], DataType::F32, AccessType::Input)
                .param("y", [16], DataType::F32, AccessType::Output)
                .body(for_("i", 0, 16, body))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_programs_parse_and_agree(f in arb_program()) {
        let text = f.to_string();
        let reparsed = ft_frontend::compile_str(&text, "rt")
            .unwrap_or_else(|e| panic!("printer output failed to parse: {e}\n{text}"));
        let x = TensorVal::from_f32(&[16], (0..16).map(|k| (k as f32 * 0.37).sin()).collect());
        let inputs: HashMap<String, TensorVal> =
            [("x".to_string(), x)].into_iter().collect();
        let rt = Runtime::new();
        let a = rt.run(&f, &inputs, &HashMap::new()).expect("original runs");
        let b = rt.run(&reparsed, &inputs, &HashMap::new()).expect("reparsed runs");
        prop_assert!(
            a.output("y").allclose(b.output("y"), 1e-5),
            "round-trip changed semantics:\n{text}"
        );
    }
}

#[test]
fn workload_sources_roundtrip_through_printer() {
    // Every workload's lowered IR prints to text the parser accepts again.
    let sources = [
        ft_libop::compile_with_libop(
            "def e(a: f32[4, 4] in, b: f32[4, 4] in, c: f32[4, 4] out):\n  matmul(a, b, c, 4, 4, 4)\n",
            "e",
        )
        .unwrap(),
    ];
    for f in sources {
        let text = f.to_string();
        ft_frontend::parse(&text)
            .unwrap_or_else(|e| panic!("printer output rejected: {e}\n{text}"));
    }
}
