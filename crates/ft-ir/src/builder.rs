//! Ergonomic constructors for IR nodes.
//!
//! These free functions are the Rust-embedded face of the DSL: together with
//! the operator overloads on [`Expr`] they let programs be written close to
//! the paper's Python-like surface syntax.
//!
//! ```
//! use ft_ir::prelude::*;
//!
//! // dot[k + w] += Q[j, p] * K[j + k, p]
//! let s = reduce(
//!     "dot",
//!     [var("k") + var("w")],
//!     ReduceOp::Add,
//!     load("Q", [var("j"), var("p")]) * load("K", [var("j") + var("k"), var("p")]),
//! );
//! assert!(matches!(s.kind, StmtKind::ReduceTo { .. }));
//! ```

use crate::expr::Expr;
use crate::stmt::{ForProperty, ReduceOp, Stmt, StmtKind};
use crate::types::{AccessType, DataType, MemType};

/// An integer scalar variable reference (loop iterator or size parameter).
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// Read one element of tensor `name` (empty `indices` reads a scalar tensor).
pub fn load<I>(name: impl Into<String>, indices: I) -> Expr
where
    I: IntoIterator,
    I::Item: Into<Expr>,
{
    Expr::Load {
        var: name.into(),
        indices: indices.into_iter().map(Into::into).collect(),
    }
}

/// A sequence of statements.
pub fn block(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
    Stmt::new(StmtKind::Block(stmts.into_iter().collect()))
}

/// `for iter in begin..end { body }` (serial, unit step).
pub fn for_(
    iter: impl Into<String>,
    begin: impl Into<Expr>,
    end: impl Into<Expr>,
    body: Stmt,
) -> Stmt {
    Stmt::new(StmtKind::For {
        iter: iter.into(),
        begin: begin.into(),
        end: end.into(),
        property: ForProperty::serial(),
        body: Box::new(body),
    })
}

/// A `for` loop with explicit scheduling attributes.
pub fn for_with(
    iter: impl Into<String>,
    begin: impl Into<Expr>,
    end: impl Into<Expr>,
    property: ForProperty,
    body: Stmt,
) -> Stmt {
    Stmt::new(StmtKind::For {
        iter: iter.into(),
        begin: begin.into(),
        end: end.into(),
        property,
        body: Box::new(body),
    })
}

/// One-armed conditional.
pub fn if_(cond: impl Into<Expr>, then: Stmt) -> Stmt {
    Stmt::new(StmtKind::If {
        cond: cond.into(),
        then: Box::new(then),
        otherwise: None,
    })
}

/// Two-armed conditional.
pub fn if_else(cond: impl Into<Expr>, then: Stmt, otherwise: Stmt) -> Stmt {
    Stmt::new(StmtKind::If {
        cond: cond.into(),
        then: Box::new(then),
        otherwise: Some(Box::new(otherwise)),
    })
}

/// `var[indices] = value`.
pub fn store<I>(name: impl Into<String>, indices: I, value: impl Into<Expr>) -> Stmt
where
    I: IntoIterator,
    I::Item: Into<Expr>,
{
    Stmt::new(StmtKind::Store {
        var: name.into(),
        indices: indices.into_iter().map(Into::into).collect(),
        value: value.into(),
    })
}

/// `var[indices] op= value`.
pub fn reduce<I>(
    name: impl Into<String>,
    indices: I,
    op: ReduceOp,
    value: impl Into<Expr>,
) -> Stmt
where
    I: IntoIterator,
    I::Item: Into<Expr>,
{
    Stmt::new(StmtKind::ReduceTo {
        var: name.into(),
        indices: indices.into_iter().map(Into::into).collect(),
        op,
        value: value.into(),
        atomic: false,
    })
}

/// Define a local tensor alive in `body` (paper `create_var`).
pub fn var_def<S>(
    name: impl Into<String>,
    shape: S,
    dtype: DataType,
    mtype: MemType,
    body: Stmt,
) -> Stmt
where
    S: IntoIterator,
    S::Item: Into<Expr>,
{
    Stmt::new(StmtKind::VarDef {
        name: name.into(),
        shape: shape.into_iter().map(Into::into).collect(),
        dtype,
        mtype,
        atype: AccessType::Cache,
        body: Box::new(body),
    })
}

/// The no-op statement.
pub fn empty() -> Stmt {
    Stmt::new(StmtKind::Empty)
}

/// An empty index list, for accessing 0-D (scalar) tensors:
/// `store("acc", scalar(), 0.0f32)`.
pub fn scalar() -> [Expr; 0] {
    []
}

/// Build an index list from mixed operands (anything `Into<Expr>`):
/// `idx![var("i") + 1, 0]`.
#[macro_export]
macro_rules! idx {
    ($($e:expr),* $(,)?) => { [$( $crate::Expr::from($e) ),*] };
}

/// Unary helpers mirroring libop's scalar intrinsics.
pub mod intrin {
    use crate::expr::{Expr, UnaryOp};

    /// Absolute value.
    pub fn abs(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Abs, a.into())
    }

    /// Square root.
    pub fn sqrt(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Sqrt, a.into())
    }

    /// Natural exponential.
    pub fn exp(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Exp, a.into())
    }

    /// Natural logarithm.
    pub fn ln(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Ln, a.into())
    }

    /// Logistic sigmoid.
    pub fn sigmoid(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Sigmoid, a.into())
    }

    /// Hyperbolic tangent.
    pub fn tanh(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Tanh, a.into())
    }

    /// Sign.
    pub fn sign(a: impl Into<Expr>) -> Expr {
        Expr::unary(UnaryOp::Sign, a.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ParallelScope;

    #[test]
    fn builders_produce_expected_kinds() {
        assert!(matches!(var("i"), Expr::Var(_)));
        assert!(matches!(load("a", [var("i")]), Expr::Load { .. }));
        assert!(matches!(block([]).kind, StmtKind::Block(_)));
        assert!(matches!(
            for_("i", 0, 4, empty()).kind,
            StmtKind::For { .. }
        ));
        assert!(matches!(if_(true, empty()).kind, StmtKind::If { .. }));
        assert!(matches!(
            store("a", [0], 0.0f32).kind,
            StmtKind::Store { .. }
        ));
        assert!(matches!(
            var_def("t", [4], DataType::F32, MemType::CpuHeap, empty()).kind,
            StmtKind::VarDef { .. }
        ));
    }

    #[test]
    fn for_with_carries_property() {
        let p = ForProperty::parallel(ParallelScope::OpenMp);
        let s = for_with("i", 0, 4, p.clone(), empty());
        match s.kind {
            StmtKind::For { property, .. } => assert_eq!(property, p),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scalar_store_has_no_indices() {
        let s = store("acc", Vec::<Expr>::new(), 1.0f32);
        match s.kind {
            StmtKind::Store { indices, .. } => assert!(indices.is_empty()),
            _ => unreachable!(),
        }
    }
}
