//! Expressions of the FreeTensor IR.
//!
//! Expressions are pure (no side effects). Integer scalars such as loop
//! iterators and size parameters appear as [`Expr::Var`]; tensor element reads
//! appear as [`Expr::Load`] (a 0-D tensor is read with an empty index list).

use crate::types::DataType;
use std::collections::HashSet;
use std::ops;

/// A unary operator or elementary function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Logistic sigmoid `1 / (1 + exp(-x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Sign (`-1`, `0`, `1`), with the operand's type.
    Sign,
}

impl UnaryOp {
    /// DSL spelling of the operator, as used by the printer and the parser.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "not",
            UnaryOp::Abs => "abs",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Exp => "exp",
            UnaryOp::Ln => "ln",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sign => "sign",
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division rounds toward negative infinity
    /// (floor division), which keeps loop-bound arithmetic monotone.
    Div,
    /// Remainder matching floor division (result has the divisor's sign).
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Power.
    Pow,
    /// Equality (yields `Bool`).
    Eq,
    /// Inequality (yields `Bool`).
    Ne,
    /// Less-than (yields `Bool`).
    Lt,
    /// Less-or-equal (yields `Bool`).
    Le,
    /// Greater-than (yields `Bool`).
    Gt,
    /// Greater-or-equal (yields `Bool`).
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinaryOp {
    /// Whether the operator yields a boolean regardless of operand types.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge | And | Or)
    }

    /// Whether the operator counts as a floating-point operation for the
    /// FLOP counters when its operands are floats.
    pub fn is_arith(self) -> bool {
        use BinaryOp::*;
        matches!(self, Add | Sub | Mul | Div | Mod | Min | Max | Pow)
    }

    /// DSL spelling of the operator.
    pub fn name(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Min => "min",
            Max => "max",
            Pow => "pow",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "and",
            Or => "or",
        }
    }
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntConst(i64),
    /// Floating-point literal.
    FloatConst(f64),
    /// Boolean literal.
    BoolConst(bool),
    /// An integer scalar variable: a loop iterator or a size parameter.
    Var(String),
    /// Read one element of a tensor. A 0-D tensor (scalar) is read with an
    /// empty index list.
    Load {
        /// Name of the tensor being read.
        var: String,
        /// One index expression per tensor dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        a: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
    /// Ternary selection: `if cond { then } else { otherwise }` as a value.
    Select {
        /// Condition (boolean).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value when the condition does not hold.
        otherwise: Box<Expr>,
    },
    /// Explicit type conversion.
    Cast {
        /// Target element type.
        dtype: DataType,
        /// Operand.
        a: Box<Expr>,
    },
}

impl Expr {
    /// Build a binary node.
    pub fn binary(op: BinaryOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary {
            op,
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// Build a unary node.
    pub fn unary(op: UnaryOp, a: Expr) -> Expr {
        Expr::Unary { op, a: Box::new(a) }
    }

    /// Build a selection node.
    pub fn select(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// Build a cast node.
    pub fn cast(dtype: DataType, a: Expr) -> Expr {
        Expr::Cast {
            dtype,
            a: Box::new(a),
        }
    }

    /// `self == other` as an expression.
    pub fn eq(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Eq, self, other.into())
    }

    /// `self != other` as an expression.
    pub fn ne(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Ne, self, other.into())
    }

    /// `self < other` as an expression.
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Lt, self, other.into())
    }

    /// `self <= other` as an expression.
    pub fn le(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Le, self, other.into())
    }

    /// `self > other` as an expression.
    pub fn gt(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Gt, self, other.into())
    }

    /// `self >= other` as an expression.
    pub fn ge(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Ge, self, other.into())
    }

    /// Logical conjunction.
    pub fn and(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::And, self, other.into())
    }

    /// Logical disjunction.
    pub fn or(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Or, self, other.into())
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)] // DSL-level boolean op, not std::ops::Not
    pub fn not(self) -> Expr {
        Expr::unary(UnaryOp::Not, self)
    }

    /// Elementwise minimum.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Min, self, other.into())
    }

    /// Elementwise maximum.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Max, self, other.into())
    }

    /// Floor-division remainder.
    #[allow(clippy::should_implement_trait)] // `%` is also overloaded via std::ops::Rem
    pub fn rem(self, other: impl Into<Expr>) -> Expr {
        Expr::binary(BinaryOp::Mod, self, other.into())
    }

    /// If this expression is an integer constant, its value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntConst(v) => Some(*v),
            Expr::Cast { a, .. } => a.as_int(),
            _ => None,
        }
    }

    /// If this expression is a constant (of any type), whether it is "truthy".
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Expr::BoolConst(b) => Some(*b),
            Expr::IntConst(v) => Some(*v != 0),
            _ => None,
        }
    }

    /// The set of free scalar variables (`Expr::Var`) in this expression.
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut HashSet<String>) {
        match self {
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Load { indices, .. } => {
                for i in indices {
                    i.collect_free_vars(out);
                }
            }
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => a.collect_free_vars(out),
            Expr::Binary { a, b, .. } => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_free_vars(out);
                then.collect_free_vars(out);
                otherwise.collect_free_vars(out);
            }
            _ => {}
        }
    }

    /// The set of tensors read by this expression.
    pub fn loaded_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_loaded_vars(&mut out);
        out
    }

    fn collect_loaded_vars(&self, out: &mut HashSet<String>) {
        match self {
            Expr::Load { var, indices } => {
                out.insert(var.clone());
                for i in indices {
                    i.collect_loaded_vars(out);
                }
            }
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => a.collect_loaded_vars(out),
            Expr::Binary { a, b, .. } => {
                a.collect_loaded_vars(out);
                b.collect_loaded_vars(out);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_loaded_vars(out);
                then.collect_loaded_vars(out);
                otherwise.collect_loaded_vars(out);
            }
            _ => {}
        }
    }

    /// Substitute every occurrence of scalar variable `name` with `value`.
    pub fn subst_var(&self, name: &str, value: &Expr) -> Expr {
        match self {
            Expr::Var(n) if n == name => value.clone(),
            Expr::Var(_) | Expr::IntConst(_) | Expr::FloatConst(_) | Expr::BoolConst(_) => {
                self.clone()
            }
            Expr::Load { var, indices } => Expr::Load {
                var: var.clone(),
                indices: indices.iter().map(|i| i.subst_var(name, value)).collect(),
            },
            Expr::Unary { op, a } => Expr::unary(*op, a.subst_var(name, value)),
            Expr::Binary { op, a, b } => {
                Expr::binary(*op, a.subst_var(name, value), b.subst_var(name, value))
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => Expr::select(
                cond.subst_var(name, value),
                then.subst_var(name, value),
                otherwise.subst_var(name, value),
            ),
            Expr::Cast { dtype, a } => Expr::cast(*dtype, a.subst_var(name, value)),
        }
    }

    /// Rename every load of tensor `from` to tensor `to`.
    pub fn rename_load(&self, from: &str, to: &str) -> Expr {
        match self {
            Expr::Load { var, indices } => Expr::Load {
                var: if var == from {
                    to.to_string()
                } else {
                    var.clone()
                },
                indices: indices.iter().map(|i| i.rename_load(from, to)).collect(),
            },
            Expr::Unary { op, a } => Expr::unary(*op, a.rename_load(from, to)),
            Expr::Binary { op, a, b } => {
                Expr::binary(*op, a.rename_load(from, to), b.rename_load(from, to))
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => Expr::select(
                cond.rename_load(from, to),
                then.rename_load(from, to),
                otherwise.rename_load(from, to),
            ),
            Expr::Cast { dtype, a } => Expr::cast(*dtype, a.rename_load(from, to)),
            _ => self.clone(),
        }
    }

    /// Number of arithmetic operations on the *value path* (subscript
    /// expressions excluded) — the recompute cost used by the
    /// selective-materialization balance in `ft-autodiff`.
    pub fn value_op_count(&self) -> usize {
        match self {
            Expr::IntConst(_)
            | Expr::FloatConst(_)
            | Expr::BoolConst(_)
            | Expr::Var(_)
            | Expr::Load { .. } => 0,
            Expr::Unary { a, .. } => 1 + a.value_op_count(),
            Expr::Cast { a, .. } => a.value_op_count(),
            Expr::Binary { a, b, .. } => 1 + a.value_op_count() + b.value_op_count(),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => 1 + cond.value_op_count() + then.value_op_count() + otherwise.value_op_count(),
        }
    }

    /// Number of nodes in this expression tree (used by cost heuristics, e.g.
    /// the selective-materialization balance in `ft-autodiff`).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::IntConst(_) | Expr::FloatConst(_) | Expr::BoolConst(_) | Expr::Var(_) => 1,
            Expr::Load { indices, .. } => 1 + indices.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => 1 + a.node_count(),
            Expr::Binary { a, b, .. } => 1 + a.node_count() + b.node_count(),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => 1 + cond.node_count() + then.node_count() + otherwise.node_count(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::IntConst(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::IntConst(v as i64)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::IntConst(v as i64)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Self {
        Expr::FloatConst(v as f64)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::FloatConst(v)
    }
}

impl From<bool> for Expr {
    fn from(v: bool) -> Self {
        Expr::BoolConst(v)
    }
}

impl From<&Expr> for Expr {
    fn from(v: &Expr) -> Self {
        v.clone()
    }
}

macro_rules! impl_expr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<Expr>> ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::binary($op, self, rhs.into())
            }
        }
        impl<'a, R: Into<Expr>> ops::$trait<R> for &'a Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::binary($op, self.clone(), rhs.into())
            }
        }
    };
}

impl_expr_binop!(Add, add, BinaryOp::Add);
impl_expr_binop!(Sub, sub, BinaryOp::Sub);
impl_expr_binop!(Mul, mul, BinaryOp::Mul);
impl_expr_binop!(Div, div, BinaryOp::Div);
impl_expr_binop!(Rem, rem, BinaryOp::Mod);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnaryOp::Neg, self)
    }
}

impl ops::Neg for &Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnaryOp::Neg, self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::Var(n.to_string())
    }

    #[test]
    fn operator_overloads_build_trees() {
        let e = v("i") * 2 + 1;
        match &e {
            Expr::Binary { op: BinaryOp::Add, a, b } => {
                assert!(matches!(**a, Expr::Binary { op: BinaryOp::Mul, .. }));
                assert_eq!(**b, Expr::IntConst(1));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn free_vars_and_loads() {
        let e = Expr::Load {
            var: "a".into(),
            indices: vec![v("i") + v("j")],
        } + v("k");
        let fv = e.free_vars();
        assert!(fv.contains("i") && fv.contains("j") && fv.contains("k"));
        assert!(!fv.contains("a"));
        assert!(e.loaded_vars().contains("a"));
    }

    #[test]
    fn substitution() {
        let e = (v("i") + v("j")) * v("i");
        let s = e.subst_var("i", &Expr::IntConst(3));
        assert!(s.free_vars().contains("j"));
        assert!(!s.free_vars().contains("i"));
    }

    #[test]
    fn rename_load_only_touches_loads() {
        let e = Expr::Load {
            var: "t".into(),
            indices: vec![v("t")],
        };
        let r = e.rename_load("t", "u");
        match r {
            Expr::Load { var, indices } => {
                assert_eq!(var, "u");
                // The scalar var named "t" is untouched.
                assert_eq!(indices[0], v("t"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn const_queries() {
        assert_eq!(Expr::IntConst(5).as_int(), Some(5));
        assert_eq!(v("x").as_int(), None);
        assert_eq!(Expr::BoolConst(true).as_bool(), Some(true));
        assert_eq!(Expr::IntConst(0).as_bool(), Some(false));
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = v("i") * 2 + 1;
        assert_eq!(e.node_count(), 5);
    }
}
