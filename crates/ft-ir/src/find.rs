//! Locating statements in a tree: by id, label, predicate; computing parent
//! maps and surrounding loop nests (used by the scheduler and analyses).

use crate::expr::Expr;
use crate::func::Func;
use crate::stmt::{Stmt, StmtId, StmtKind};
use std::collections::HashMap;

/// Find the first statement (pre-order) satisfying `pred`.
pub fn find_stmt<'a>(root: &'a Stmt, pred: &dyn Fn(&Stmt) -> bool) -> Option<&'a Stmt> {
    if pred(root) {
        return Some(root);
    }
    for c in root.children() {
        if let Some(found) = find_stmt(c, pred) {
            return Some(found);
        }
    }
    None
}

/// Find all statements (pre-order) satisfying `pred`.
pub fn find_stmts<'a>(root: &'a Stmt, pred: &dyn Fn(&Stmt) -> bool) -> Vec<&'a Stmt> {
    let mut out = Vec::new();
    fn rec<'a>(s: &'a Stmt, pred: &dyn Fn(&Stmt) -> bool, out: &mut Vec<&'a Stmt>) {
        if pred(s) {
            out.push(s);
        }
        for c in s.children() {
            rec(c, pred, out);
        }
    }
    rec(root, pred, &mut out);
    out
}

/// Find a statement by id.
pub fn find_by_id(root: &Stmt, id: StmtId) -> Option<&Stmt> {
    find_stmt(root, &|s| s.id == id)
}

/// Find a statement by label.
pub fn find_by_label<'a>(root: &'a Stmt, label: &str) -> Option<&'a Stmt> {
    find_stmt(root, &|s| s.label.as_deref() == Some(label))
}

/// Find the loop with the given iterator name (first match, pre-order).
pub fn find_loop<'a>(root: &'a Stmt, iter_name: &str) -> Option<&'a Stmt> {
    find_stmt(root, &|s| {
        matches!(&s.kind, StmtKind::For { iter, .. } if iter == iter_name)
    })
}

/// Map from each statement id to its parent's id.
pub fn parent_map(root: &Stmt) -> HashMap<StmtId, StmtId> {
    let mut map = HashMap::new();
    fn rec(s: &Stmt, map: &mut HashMap<StmtId, StmtId>) {
        for c in s.children() {
            map.insert(c.id, s.id);
            rec(c, map);
        }
    }
    rec(root, &mut map);
    map
}

/// One level of a loop nest surrounding a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopLevel {
    /// Id of the `For` statement.
    pub id: StmtId,
    /// Iterator variable name.
    pub iter: String,
    /// Lower bound (inclusive).
    pub begin: Expr,
    /// Upper bound (exclusive).
    pub end: Expr,
}

/// The loop nest (outermost first) surrounding a statement, plus the
/// `VarDef`s in scope.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    /// Surrounding loops, outermost first.
    pub loops: Vec<LoopLevel>,
    /// Names of tensors defined by surrounding `VarDef`s (innermost last).
    pub defs: Vec<String>,
}

/// Compute the surrounding loop nest of the statement with id `target`.
///
/// Returns `None` when `target` is not in the tree.
pub fn loop_nest_of(root: &Stmt, target: StmtId) -> Option<LoopNest> {
    fn rec(s: &Stmt, target: StmtId, cur: &mut LoopNest) -> bool {
        if s.id == target {
            return true;
        }
        match &s.kind {
            StmtKind::For {
                iter,
                begin,
                end,
                body,
                ..
            } => {
                cur.loops.push(LoopLevel {
                    id: s.id,
                    iter: iter.clone(),
                    begin: begin.clone(),
                    end: end.clone(),
                });
                if rec(body, target, cur) {
                    return true;
                }
                cur.loops.pop();
                false
            }
            StmtKind::VarDef { name, body, .. } => {
                cur.defs.push(name.clone());
                if rec(body, target, cur) {
                    return true;
                }
                cur.defs.pop();
                false
            }
            _ => {
                for c in s.children() {
                    if rec(c, target, cur) {
                        return true;
                    }
                }
                false
            }
        }
    }
    let mut nest = LoopNest::default();
    rec(root, target, &mut nest).then_some(nest)
}

/// Find a statement in a function by any selector the schedule API accepts.
#[derive(Debug, Clone)]
pub enum Selector {
    /// By stable id.
    Id(StmtId),
    /// By user label.
    Label(String),
    /// By loop iterator name (selects the `For` statement).
    Loop(String),
}

impl From<StmtId> for Selector {
    fn from(id: StmtId) -> Self {
        Selector::Id(id)
    }
}

impl From<&str> for Selector {
    fn from(s: &str) -> Self {
        Selector::Loop(s.to_string())
    }
}

impl Selector {
    /// Resolve this selector in a function body.
    pub fn resolve<'a>(&self, func: &'a Func) -> Option<&'a Stmt> {
        match self {
            Selector::Id(id) => find_by_id(&func.body, *id),
            Selector::Label(l) => find_by_label(&func.body, l),
            Selector::Loop(name) => find_loop(&func.body, name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn nest() -> Stmt {
        for_(
            "i",
            0,
            8,
            var_def(
                "t",
                [4],
                crate::types::DataType::F32,
                crate::types::MemType::CpuHeap,
                for_("j", 0, 4, store("t", [var("j")], 0.0f32).with_label("S")),
            ),
        )
    }

    #[test]
    fn find_by_label_and_loop() {
        let s = nest();
        assert!(find_by_label(&s, "S").is_some());
        assert!(find_by_label(&s, "T").is_none());
        assert!(find_loop(&s, "j").is_some());
        assert!(find_loop(&s, "k").is_none());
    }

    #[test]
    fn parent_map_links_children() {
        let s = nest();
        let pm = parent_map(&s);
        let store_stmt = find_by_label(&s, "S").unwrap();
        let j_loop = find_loop(&s, "j").unwrap();
        assert_eq!(pm[&store_stmt.id], j_loop.id);
        assert!(!pm.contains_key(&s.id)); // root has no parent
    }

    #[test]
    fn loop_nest_collects_loops_and_defs() {
        let s = nest();
        let store_stmt = find_by_label(&s, "S").unwrap();
        let n = loop_nest_of(&s, store_stmt.id).unwrap();
        assert_eq!(
            n.loops.iter().map(|l| l.iter.as_str()).collect::<Vec<_>>(),
            vec!["i", "j"]
        );
        assert_eq!(n.defs, vec!["t".to_string()]);
        assert!(loop_nest_of(&s, StmtId(u64::MAX)).is_none());
    }
}
