//! Functions: the compilation unit of FreeTensor.

use crate::expr::Expr;
use crate::stmt::{Stmt, StmtKind};
use crate::types::{AccessType, DataType, MemType};
use std::fmt;

/// A tensor parameter of a [`Func`].
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Extent expressions (may reference size parameters); empty for scalars.
    pub shape: Vec<Expr>,
    /// Element type.
    pub dtype: DataType,
    /// Memory space the caller provides the tensor in.
    pub mtype: MemType,
    /// Input/output role.
    pub atype: AccessType,
}

/// A FreeTensor function: tensor parameters, integer size parameters, and a
/// stack-scoped statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Tensor parameters in declaration order.
    pub params: Vec<Param>,
    /// Integer size parameters (e.g. `n`, `w`) referenced by shapes/bounds.
    pub size_params: Vec<String>,
    /// Body statement.
    pub body: Stmt,
}

impl Func {
    /// Start building a function with the given name and an empty body.
    pub fn new(name: impl Into<String>) -> Func {
        Func {
            name: name.into(),
            params: Vec::new(),
            size_params: Vec::new(),
            body: Stmt::new(StmtKind::Empty),
        }
    }

    /// Add a tensor parameter (builder style). Defaults to CPU heap memory;
    /// use [`Func::param_on`] to place it elsewhere.
    pub fn param<S>(
        mut self,
        name: impl Into<String>,
        shape: S,
        dtype: DataType,
        atype: AccessType,
    ) -> Func
    where
        S: IntoIterator,
        S::Item: Into<Expr>,
    {
        self.params.push(Param {
            name: name.into(),
            shape: shape.into_iter().map(Into::into).collect(),
            dtype,
            mtype: MemType::CpuHeap,
            atype,
        });
        self
    }

    /// Add a tensor parameter in an explicit memory space.
    pub fn param_on<S>(
        mut self,
        name: impl Into<String>,
        shape: S,
        dtype: DataType,
        mtype: MemType,
        atype: AccessType,
    ) -> Func
    where
        S: IntoIterator,
        S::Item: Into<Expr>,
    {
        self.params.push(Param {
            name: name.into(),
            shape: shape.into_iter().map(Into::into).collect(),
            dtype,
            mtype,
            atype,
        });
        self
    }

    /// Declare an integer size parameter.
    pub fn size_param(mut self, name: impl Into<String>) -> Func {
        self.size_params.push(name.into());
        self
    }

    /// Set the body (builder style).
    pub fn body(mut self, body: Stmt) -> Func {
        self.body = body;
        self
    }

    /// Replace the body, keeping everything else.
    pub fn with_body(&self, body: Stmt) -> Func {
        Func {
            name: self.name.clone(),
            params: self.params.clone(),
            size_params: self.size_params.clone(),
            body,
        }
    }

    /// Look up a parameter by name.
    pub fn find_param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Names of all output (or in-out) parameters.
    pub fn output_names(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.atype, AccessType::Output | AccessType::InOut))
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all input (or in-out) parameters.
    pub fn input_names(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.atype, AccessType::Input | AccessType::InOut))
            .map(|p| p.name.as_str())
            .collect()
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::print_func(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn builder_collects_params() {
        let f = Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .param("y", [var("n")], DataType::F32, AccessType::Output)
            .size_param("n")
            .body(store("y", [0], 0.0f32));
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.size_params, vec!["n".to_string()]);
        assert_eq!(f.output_names(), vec!["y"]);
        assert_eq!(f.input_names(), vec!["x"]);
        assert!(f.find_param("x").is_some());
        assert!(f.find_param("z").is_none());
    }

    #[test]
    fn with_body_preserves_signature() {
        let f = Func::new("f")
            .param("y", [3], DataType::F32, AccessType::Output)
            .body(empty());
        let g = f.with_body(store("y", [0], 1.0f32));
        assert_eq!(g.params, f.params);
        assert!(matches!(g.body.kind, StmtKind::Store { .. }));
    }
}
