//! # ft-ir — the FreeTensor intermediate representation
//!
//! This crate defines the *stack-scoped* abstract syntax tree that the rest of
//! the compiler operates on, mirroring Section 4 of the FreeTensor paper
//! (PLDI 2022):
//!
//! * every tensor is introduced by a [`StmtKind::VarDef`] node and is alive
//!   only inside the sub-tree of that node, which (a) lets transformations
//!   move code without breaking allocation/free pairing and (b) lets the
//!   dependence analysis project away false dependences on loop-local
//!   temporaries (paper Fig. 12(d));
//! * reductions are first-class ([`StmtKind::ReduceTo`]), so commutativity can
//!   be exploited during legality checking (paper Fig. 12(c)) and atomic or
//!   parallel-reduction lowering (paper Fig. 13(d)/(e));
//! * loops carry a [`ForProperty`] describing how they are mapped to hardware
//!   parallelism (OpenMP threads, CUDA blocks/threads, vector lanes).
//!
//! The tree is immutable: passes rewrite it functionally through the
//! [`mutate::Mutator`] framework. Statements carry stable [`StmtId`]s (and
//! optional string labels) so that schedule primitives can address them across
//! rewrites.
//!
//! ```
//! use ft_ir::prelude::*;
//!
//! // for i in 0..n: y[i] = x[i] * 2 + 1
//! let n = var("n");
//! let f = Func::new("scale")
//!     .param("x", &[n.clone()], DataType::F32, AccessType::Input)
//!     .param("y", &[n.clone()], DataType::F32, AccessType::Output)
//!     .size_param("n")
//!     .body(for_("i", 0, n, store("y", [var("i")], load("x", [var("i")]) * 2.0f32 + 1.0f32)));
//! assert!(f.to_string().contains("y[i]"));
//! ```

pub mod builder;
pub mod expr;
pub mod find;
pub mod func;
pub mod mutate;
pub mod printer;
pub mod stmt;
pub mod types;
pub mod visit;

pub use builder::*;
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use find::{find_stmt, find_stmts, parent_map, LoopNest};
pub use func::{Func, Param};
pub use mutate::Mutator;
pub use stmt::{ForProperty, ReduceOp, Stmt, StmtId, StmtKind};
pub use types::{AccessType, DataType, Device, MemType, ParallelScope};
pub use visit::Visitor;

/// Commonly used items, for glob import in downstream crates and examples.
pub mod prelude {
    pub use crate::builder::*;
    pub use crate::expr::{BinaryOp, Expr, UnaryOp};
    pub use crate::find::{find_stmt, find_stmts};
    pub use crate::func::{Func, Param};
    pub use crate::mutate::Mutator;
    pub use crate::stmt::{ForProperty, ReduceOp, Stmt, StmtId, StmtKind};
    pub use crate::types::{AccessType, DataType, Device, MemType, ParallelScope};
    pub use crate::visit::Visitor;
}
