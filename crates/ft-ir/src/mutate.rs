//! Functional rewriting framework.
//!
//! A [`Mutator`] consumes a statement tree and produces a new one. Node
//! identities ([`crate::StmtId`]) are preserved by the default walkers, so a
//! schedule can keep addressing statements across a pipeline of rewrites.

use crate::expr::Expr;
use crate::stmt::{Stmt, StmtKind};

/// A consuming rewriter over statements and expressions.
///
/// Override the hooks you care about; call `mutate_stmt_walk` /
/// `mutate_expr_walk` to rebuild children with this mutator applied.
pub trait Mutator {
    /// Rewrite a statement. Default: rebuild children.
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        mutate_stmt_walk(self, s)
    }

    /// Rewrite an expression. Default: rebuild children.
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        mutate_expr_walk(self, e)
    }
}

/// Rebuild a statement's children through the mutator, keeping id and label.
pub fn mutate_stmt_walk<M: Mutator + ?Sized>(m: &mut M, s: Stmt) -> Stmt {
    let Stmt { id, label, kind } = s;
    let kind = match kind {
        StmtKind::Block(stmts) => {
            StmtKind::Block(stmts.into_iter().map(|st| m.mutate_stmt(st)).collect())
        }
        StmtKind::VarDef {
            name,
            shape,
            dtype,
            mtype,
            atype,
            body,
        } => StmtKind::VarDef {
            name,
            shape: shape.into_iter().map(|e| m.mutate_expr(e)).collect(),
            dtype,
            mtype,
            atype,
            body: Box::new(m.mutate_stmt(*body)),
        },
        StmtKind::For {
            iter,
            begin,
            end,
            property,
            body,
        } => StmtKind::For {
            iter,
            begin: m.mutate_expr(begin),
            end: m.mutate_expr(end),
            property,
            body: Box::new(m.mutate_stmt(*body)),
        },
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => StmtKind::If {
            cond: m.mutate_expr(cond),
            then: Box::new(m.mutate_stmt(*then)),
            otherwise: otherwise.map(|o| Box::new(m.mutate_stmt(*o))),
        },
        StmtKind::Store {
            var,
            indices,
            value,
        } => StmtKind::Store {
            var,
            indices: indices.into_iter().map(|e| m.mutate_expr(e)).collect(),
            value: m.mutate_expr(value),
        },
        StmtKind::ReduceTo {
            var,
            indices,
            op,
            value,
            atomic,
        } => StmtKind::ReduceTo {
            var,
            indices: indices.into_iter().map(|e| m.mutate_expr(e)).collect(),
            op,
            value: m.mutate_expr(value),
            atomic,
        },
        k @ (StmtKind::LibCall { .. } | StmtKind::Empty) => k,
    };
    Stmt { id, label, kind }
}

/// Rebuild an expression's children through the mutator.
pub fn mutate_expr_walk<M: Mutator + ?Sized>(m: &mut M, e: Expr) -> Expr {
    match e {
        Expr::Load { var, indices } => Expr::Load {
            var,
            indices: indices.into_iter().map(|i| m.mutate_expr(i)).collect(),
        },
        Expr::Unary { op, a } => Expr::Unary {
            op,
            a: Box::new(m.mutate_expr(*a)),
        },
        Expr::Binary { op, a, b } => Expr::Binary {
            op,
            a: Box::new(m.mutate_expr(*a)),
            b: Box::new(m.mutate_expr(*b)),
        },
        Expr::Select {
            cond,
            then,
            otherwise,
        } => Expr::Select {
            cond: Box::new(m.mutate_expr(*cond)),
            then: Box::new(m.mutate_expr(*then)),
            otherwise: Box::new(m.mutate_expr(*otherwise)),
        },
        Expr::Cast { dtype, a } => Expr::Cast {
            dtype,
            a: Box::new(m.mutate_expr(*a)),
        },
        other => other,
    }
}

/// Convenience mutator: substitute a scalar variable throughout a sub-tree.
pub struct SubstVar<'a> {
    /// Variable name to replace.
    pub name: &'a str,
    /// Replacement expression.
    pub value: &'a Expr,
}

impl Mutator for SubstVar<'_> {
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Var(ref n) if n == self.name => self.value.clone(),
            other => mutate_expr_walk(self, other),
        }
    }
}

/// Substitute scalar variable `name` with `value` in a whole statement tree.
pub fn subst_var_stmt(s: Stmt, name: &str, value: &Expr) -> Stmt {
    SubstVar { name, value }.mutate_stmt(s)
}

/// Convenience mutator: rename a tensor (both loads and stores/reductions).
pub struct RenameVar<'a> {
    /// Old tensor name.
    pub from: &'a str,
    /// New tensor name.
    pub to: &'a str,
}

impl Mutator for RenameVar<'_> {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = mutate_stmt_walk(self, s);
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Store {
                var,
                indices,
                value,
            } => StmtKind::Store {
                var: self.rename(var),
                indices,
                value,
            },
            StmtKind::ReduceTo {
                var,
                indices,
                op,
                value,
                atomic,
            } => StmtKind::ReduceTo {
                var: self.rename(var),
                indices,
                op,
                value,
                atomic,
            },
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body,
            } => StmtKind::VarDef {
                name: self.rename(name),
                shape,
                dtype,
                mtype,
                atype,
                body,
            },
            StmtKind::LibCall {
                kernel,
                inputs,
                outputs,
                attrs,
            } => StmtKind::LibCall {
                kernel,
                inputs: inputs.into_iter().map(|n| self.rename(n)).collect(),
                outputs: outputs.into_iter().map(|n| self.rename(n)).collect(),
                attrs,
            },
            k => k,
        };
        Stmt { id, label, kind }
    }

    fn mutate_expr(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Load { var, indices } => Expr::Load {
                var: self.rename(var),
                indices: indices.into_iter().map(|i| self.mutate_expr(i)).collect(),
            },
            other => mutate_expr_walk(self, other),
        }
    }
}

impl RenameVar<'_> {
    fn rename(&self, name: String) -> String {
        if name == self.from {
            self.to.to_string()
        } else {
            name
        }
    }
}

/// Rename tensor `from` to `to` in a whole statement tree.
pub fn rename_var_stmt(s: Stmt, from: &str, to: &str) -> Stmt {
    RenameVar { from, to }.mutate_stmt(s)
}

/// Alpha-rename `VarDef`s so every definition in `func` has a name distinct
/// from all other definitions *and* from every parameter.
///
/// Shadowing is legal IR — the interpreter and the codegen backends scope
/// names correctly — but whole-function analyses that key per-tensor facts
/// by name (notably autodiff's tape materialization) silently merge
/// distinct tensors when names repeat. The schedule `cache` primitive
/// produces exactly that: caching the same parameter twice yields two
/// `VarDef`s both named `{param}.cache`.
///
/// The pass is top-down: a colliding definition is renamed together with
/// its whole subtree (an inner shadowing def of the same name is renamed
/// identically, preserving resolution, and then gets its own fresh name
/// when the walk reaches it).
pub fn uniquify_def_names(func: &crate::Func) -> crate::Func {
    struct Uniquify {
        used: std::collections::HashSet<String>,
    }
    impl Mutator for Uniquify {
        fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
            let s = if let StmtKind::VarDef { name, .. } = &s.kind {
                if self.used.insert(name.clone()) {
                    s
                } else {
                    let base = name.clone();
                    let fresh = (1..)
                        .map(|k| format!("{base}.{k}"))
                        .find(|c| !self.used.contains(c))
                        .expect("unbounded candidate space");
                    self.used.insert(fresh.clone());
                    rename_var_stmt(s, &base, &fresh)
                }
            } else {
                s
            };
            mutate_stmt_walk(self, s)
        }
    }
    let mut m = Uniquify {
        used: func
            .params
            .iter()
            .map(|p| p.name.clone())
            .chain(func.size_params.iter().cloned())
            .collect(),
    };
    let mut out = func.clone();
    out.body = m.mutate_stmt(out.body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::stmt::ReduceOp;

    #[test]
    fn default_mutator_preserves_ids() {
        struct Id;
        impl Mutator for Id {}
        let s = for_("i", 0, 4, store("a", [var("i")], 0.0f32));
        let orig = s.id;
        let out = Id.mutate_stmt(s);
        assert_eq!(out.id, orig);
    }

    #[test]
    fn subst_var_replaces_in_bounds_and_body() {
        let s = for_("j", 0, var("n"), store("a", [var("j") + var("n")], 0.0f32));
        let out = subst_var_stmt(s, "n", &Expr::IntConst(8));
        match &out.kind {
            StmtKind::For { end, body, .. } => {
                assert_eq!(*end, Expr::IntConst(8));
                match &body.kind {
                    StmtKind::Store { indices, .. } => {
                        assert!(!indices[0].free_vars().contains("n"));
                    }
                    _ => unreachable!(),
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn uniquify_renames_sibling_defs_and_preserves_shadowing() {
        use crate::func::{Func, Param};
        use crate::types::{AccessType, DataType, MemType};
        // Two sibling defs named "Q.cache" (the double-`cache` shape), the
        // second one containing a *nested* shadowing "Q.cache" as well.
        let mk = |body: Stmt| {
            var_def(
                "Q.cache",
                [4],
                DataType::F32,
                MemType::CpuStack,
                body,
            )
        };
        let first = mk(store("Q.cache", [0], load("Q", [0])));
        let second = mk(block([
            store("Q.cache", [1], load("Q", [1])),
            mk(store("Q.cache", [2], 0.0f32)),
        ]));
        let f = Func {
            name: "f".to_string(),
            params: vec![Param {
                name: "Q".to_string(),
                shape: vec![Expr::IntConst(4)],
                dtype: DataType::F32,
                mtype: MemType::CpuHeap,
                atype: AccessType::Input,
            }],
            size_params: vec![],
            body: block([first, second]),
        };
        let out = uniquify_def_names(&f);
        // All def names distinct, and none collide with the parameter.
        let mut defs = Vec::new();
        out.body.walk(&mut |s| {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                defs.push(name.clone());
            }
        });
        assert_eq!(defs.len(), 3);
        let uniq: std::collections::HashSet<_> = defs.iter().collect();
        assert_eq!(uniq.len(), 3, "{defs:?}");
        assert!(!defs.contains(&"Q".to_string()));
        // Every Store targets the name of its innermost enclosing def:
        // collect (def under which each store sits → store var) pairs.
        fn check(s: &Stmt, encl: Option<&str>) {
            match &s.kind {
                StmtKind::VarDef { name, body, .. } => check(body, Some(name)),
                StmtKind::Block(ss) => ss.iter().for_each(|st| check(st, encl)),
                StmtKind::Store { var, .. } => assert_eq!(Some(var.as_str()), encl),
                _ => {}
            }
        }
        check(&out.body, None);
        // Loads of the untouched parameter survive by name.
        let mut loads_q = 0;
        out.body.walk(&mut |s| {
            if let StmtKind::Store { value, .. } = &s.kind {
                if matches!(value, Expr::Load { var, .. } if var == "Q") {
                    loads_q += 1;
                }
            }
        });
        assert_eq!(loads_q, 2);
    }

    #[test]
    fn uniquify_is_identity_on_distinct_names() {
        use crate::func::{Func, Param};
        use crate::types::{AccessType, DataType, MemType};
        let f = Func {
            name: "f".to_string(),
            params: vec![Param {
                name: "x".to_string(),
                shape: vec![Expr::IntConst(2)],
                dtype: DataType::F32,
                mtype: MemType::CpuHeap,
                atype: AccessType::Input,
            }],
            size_params: vec![],
            body: var_def(
                "a",
                [2],
                DataType::F32,
                MemType::CpuStack,
                var_def(
                    "b",
                    [2],
                    DataType::F32,
                    MemType::CpuStack,
                    store("b", [0], load("a", [0])),
                ),
            ),
        };
        let out = uniquify_def_names(&f);
        assert_eq!(out, f);
    }

    #[test]
    fn rename_var_touches_defs_loads_and_writes() {
        let s = var_def(
            "t",
            [4],
            crate::types::DataType::F32,
            crate::types::MemType::CpuHeap,
            block([
                store("t", [0], load("t", [1])),
                reduce("t", [2], ReduceOp::Add, 1.0f32),
            ]),
        );
        let out = rename_var_stmt(s, "t", "u");
        let mut names = Vec::new();
        out.walk(&mut |st| match &st.kind {
            StmtKind::VarDef { name, .. } => names.push(name.clone()),
            StmtKind::Store { var, .. } | StmtKind::ReduceTo { var, .. } => {
                names.push(var.clone())
            }
            _ => {}
        });
        assert!(names.iter().all(|n| n == "u"));
    }
}
