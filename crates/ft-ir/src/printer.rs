//! Pretty-printer producing the paper's Python-like surface syntax.
//!
//! The output is also valid input for `ft-frontend`'s parser (round-trip
//! tested there), which makes dumps directly reusable.

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::func::Func;
use crate::stmt::{Stmt, StmtKind};
use crate::types::ParallelScope;
use std::fmt::{self, Write as _};

fn indent(f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    for _ in 0..level {
        f.write_str("  ")?;
    }
    Ok(())
}

/// Operator precedence for minimal parenthesization.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 3,
            BinaryOp::Add | BinaryOp::Sub => 4,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 5,
            BinaryOp::Min | BinaryOp::Max | BinaryOp::Pow => 7,
        },
        Expr::Unary { op, .. } => match op {
            UnaryOp::Neg | UnaryOp::Not => 6,
            _ => 7,
        },
        _ => 8,
    }
}

/// Print an expression.
pub fn print_expr(out: &mut impl fmt::Write, e: &Expr) -> fmt::Result {
    print_expr_prec(out, e, 0)
}

fn print_expr_prec(out: &mut impl fmt::Write, e: &Expr, min_prec: u8) -> fmt::Result {
    let p = prec(e);
    let paren = p < min_prec;
    if paren {
        out.write_char('(')?;
    }
    match e {
        Expr::IntConst(v) => write!(out, "{v}")?,
        Expr::FloatConst(v) => {
            if *v == f64::INFINITY {
                out.write_str("inf")?;
            } else if *v == f64::NEG_INFINITY {
                out.write_str("-inf")?;
            } else if v.fract() == 0.0 && v.abs() < 1e15 {
                write!(out, "{v:.1}")?;
            } else {
                write!(out, "{v}")?;
            }
        }
        Expr::BoolConst(v) => write!(out, "{v}")?,
        Expr::Var(n) => out.write_str(n)?,
        Expr::Load { var, indices } => {
            out.write_str(var)?;
            out.write_char('[')?;
            for (i, idx) in indices.iter().enumerate() {
                if i > 0 {
                    out.write_str(", ")?;
                }
                print_expr_prec(out, idx, 0)?;
            }
            out.write_char(']')?;
        }
        Expr::Unary { op, a } => match op {
            UnaryOp::Neg => {
                out.write_char('-')?;
                print_expr_prec(out, a, p + 1)?;
            }
            UnaryOp::Not => {
                out.write_str("not ")?;
                print_expr_prec(out, a, p + 1)?;
            }
            _ => {
                write!(out, "{}(", op.name())?;
                print_expr_prec(out, a, 0)?;
                out.write_char(')')?;
            }
        },
        Expr::Binary { op, a, b } => match op {
            BinaryOp::Min | BinaryOp::Max | BinaryOp::Pow => {
                write!(out, "{}(", op.name())?;
                print_expr_prec(out, a, 0)?;
                out.write_str(", ")?;
                print_expr_prec(out, b, 0)?;
                out.write_char(')')?;
            }
            _ => {
                print_expr_prec(out, a, p)?;
                write!(out, " {} ", op.name())?;
                print_expr_prec(out, b, p + 1)?;
            }
        },
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            out.write_str("select(")?;
            print_expr_prec(out, cond, 0)?;
            out.write_str(", ")?;
            print_expr_prec(out, then, 0)?;
            out.write_str(", ")?;
            print_expr_prec(out, otherwise, 0)?;
            out.write_char(')')?;
        }
        Expr::Cast { dtype, a } => {
            write!(out, "{dtype}(")?;
            print_expr_prec(out, a, 0)?;
            out.write_char(')')?;
        }
    }
    if paren {
        out.write_char(')')?;
    }
    Ok(())
}

fn expr_str(e: &Expr) -> String {
    let mut s = String::new();
    let _ = print_expr(&mut s, e);
    s
}

/// Print a statement at an indentation level.
pub fn print_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, level: usize) -> fmt::Result {
    match &s.kind {
        StmtKind::Block(stmts) => {
            let mut printed = false;
            for st in stmts {
                if !matches!(st.kind, StmtKind::Empty) {
                    print_stmt(f, st, level)?;
                    printed = true;
                }
            }
            if !printed {
                indent(f, level)?;
                f.write_str("pass\n")?;
            }
            Ok(())
        }
        StmtKind::VarDef {
            name,
            shape,
            dtype,
            mtype,
            body,
            ..
        } => {
            indent(f, level)?;
            let dims: Vec<String> = shape.iter().map(expr_str).collect();
            writeln!(
                f,
                "{name} = create_var(({}), \"{dtype}\", \"{mtype}\")",
                dims.join(", ")
            )?;
            print_stmt(f, body, level)
        }
        StmtKind::For {
            iter,
            begin,
            end,
            property,
            body,
        } => {
            indent(f, level)?;
            let mut attrs = String::new();
            if property.parallel != ParallelScope::Serial {
                let _ = write!(attrs, "  # parallel={}", property.parallel);
            }
            if property.unroll {
                attrs.push_str("  # unroll");
            }
            if property.blend {
                attrs.push_str("  # blend");
            }
            if property.vectorize {
                attrs.push_str("  # vectorize");
            }
            if let Some(label) = &s.label {
                let _ = write!(attrs, "  # label={label}");
            }
            writeln!(
                f,
                "for {iter} in range({}, {}):{attrs}",
                expr_str(begin),
                expr_str(end)
            )?;
            print_stmt(f, body, level + 1)
        }
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => {
            indent(f, level)?;
            writeln!(f, "if {}:", expr_str(cond))?;
            print_stmt(f, then, level + 1)?;
            if let Some(o) = otherwise {
                indent(f, level)?;
                f.write_str("else:\n")?;
                print_stmt(f, o, level + 1)?;
            }
            Ok(())
        }
        StmtKind::Store {
            var,
            indices,
            value,
        } => {
            indent(f, level)?;
            if indices.is_empty() {
                writeln!(f, "{var}[] = {}", expr_str(value))
            } else {
                let idx: Vec<String> = indices.iter().map(expr_str).collect();
                writeln!(f, "{var}[{}] = {}", idx.join(", "), expr_str(value))
            }
        }
        StmtKind::ReduceTo {
            var,
            indices,
            op,
            value,
            atomic,
        } => {
            indent(f, level)?;
            let atomic_mark = if *atomic { "  # atomic" } else { "" };
            if indices.is_empty() {
                writeln!(f, "{var}[] {op} {}{atomic_mark}", expr_str(value))
            } else {
                let idx: Vec<String> = indices.iter().map(expr_str).collect();
                writeln!(
                    f,
                    "{var}[{}] {op} {}{atomic_mark}",
                    idx.join(", "),
                    expr_str(value)
                )
            }
        }
        StmtKind::LibCall {
            kernel,
            inputs,
            outputs,
            attrs,
        } => {
            indent(f, level)?;
            writeln!(
                f,
                "lib.{kernel}(inputs=[{}], outputs=[{}], attrs={attrs:?})",
                inputs.join(", "),
                outputs.join(", ")
            )
        }
        StmtKind::Empty => {
            indent(f, level)?;
            f.write_str("pass\n")
        }
    }
}

/// Print a whole function as a `def`.
pub fn print_func(f: &mut fmt::Formatter<'_>, func: &Func) -> fmt::Result {
    let mut sig: Vec<String> = Vec::new();
    for p in &func.params {
        let dims: Vec<String> = p.shape.iter().map(expr_str).collect();
        sig.push(format!(
            "{}: {}[{}] @ {} {}",
            p.name,
            p.dtype,
            dims.join(", "),
            p.mtype,
            p.atype
        ));
    }
    for s in &func.size_params {
        sig.push(format!("{s}: size"));
    }
    writeln!(f, "def {}({}):", func.name, sig.join(", "))?;
    print_stmt(f, &func.body, 1)
}

#[cfg(test)]
mod tests {
    use crate::builder::*;
    use crate::stmt::ReduceOp;
    use crate::types::{AccessType, DataType, MemType};
    use crate::Func;

    #[test]
    fn prints_loop_nest() {
        let s = for_(
            "i",
            0,
            var("n"),
            store("y", [var("i")], load("x", [var("i")]) * 2 + 1),
        );
        let text = s.to_string();
        assert!(text.contains("for i in range(0, n):"));
        assert!(text.contains("y[i] = x[i] * 2 + 1"));
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let e_text = {
            let s = store("y", [0], (var("a") + var("b")) * var("c"));
            s.to_string()
        };
        assert!(e_text.contains("(a + b) * c"), "{e_text}");
        let e2 = store("y", [0], var("a") + var("b") * var("c")).to_string();
        assert!(e2.contains("a + b * c"), "{e2}");
    }

    #[test]
    fn prints_reduce_and_vardef() {
        let s = var_def(
            "dot",
            [var("w") * 2 + 1],
            DataType::F32,
            MemType::GpuGlobal,
            reduce("dot", [var("k")], ReduceOp::Add, 1.0f32),
        );
        let text = s.to_string();
        assert!(text.contains("create_var((w * 2 + 1), \"f32\", \"gpu\")"), "{text}");
        assert!(text.contains("dot[k] += 1.0"), "{text}");
    }

    #[test]
    fn prints_func_signature() {
        let f = Func::new("f")
            .param("x", [var("n")], DataType::F32, AccessType::Input)
            .size_param("n")
            .body(empty());
        let text = f.to_string();
        assert!(text.starts_with("def f(x: f32[n] @ cpu in, n: size):"), "{text}");
    }

    #[test]
    fn prints_infinity() {
        let s = store("m", scalar(), f64::NEG_INFINITY);
        assert!(s.to_string().contains("-inf"));
    }
}
