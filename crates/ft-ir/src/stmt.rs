//! Statements of the FreeTensor IR: the stack-scoped AST.

use crate::expr::Expr;
use crate::types::{AccessType, DataType, MemType, ParallelScope};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stable identity for a statement node, preserved across functional
/// rewrites so schedules can keep addressing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u64);

static NEXT_STMT_ID: AtomicU64 = AtomicU64::new(1);

impl StmtId {
    /// Allocate a fresh, process-unique id.
    pub fn fresh() -> StmtId {
        StmtId(NEXT_STMT_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The reduction operator of a [`StmtKind::ReduceTo`] statement.
///
/// Reductions are first-class so that WAW dependences between reductions with
/// the same commutative-associative operator can be ignored during legality
/// checking (paper Fig. 12(c)) and so random-access reductions can be lowered
/// to atomics (paper Fig. 13(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `x += v`
    Add,
    /// `x *= v`
    Mul,
    /// `x = min(x, v)`
    Min,
    /// `x = max(x, v)`
    Max,
}

impl ReduceOp {
    /// DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Add => "+=",
            ReduceOp::Mul => "*=",
            ReduceOp::Min => "min=",
            ReduceOp::Max => "max=",
        }
    }

    /// Identity element of the reduction for a given element type.
    pub fn identity(self, dtype: DataType) -> Expr {
        match (self, dtype.is_float()) {
            (ReduceOp::Add, true) => Expr::FloatConst(0.0),
            (ReduceOp::Add, false) => Expr::IntConst(0),
            (ReduceOp::Mul, true) => Expr::FloatConst(1.0),
            (ReduceOp::Mul, false) => Expr::IntConst(1),
            (ReduceOp::Min, true) => Expr::FloatConst(f64::INFINITY),
            (ReduceOp::Min, false) => Expr::IntConst(i64::MAX),
            (ReduceOp::Max, true) => Expr::FloatConst(f64::NEG_INFINITY),
            (ReduceOp::Max, false) => Expr::IntConst(i64::MIN),
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduling-relevant attributes of a `For` loop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForProperty {
    /// Hardware mapping of the loop's iterations.
    pub parallel: ParallelScope,
    /// Fully unroll the loop during lowering.
    pub unroll: bool,
    /// Unroll and interleave statements from each iteration (paper `blend`).
    pub blend: bool,
    /// Implement the loop with vector instructions.
    pub vectorize: bool,
    /// Names of tensors the user asserts carry no loop-carried dependence
    /// over this loop (escape hatch for indirect indexing).
    pub no_deps: Vec<String>,
}

impl ForProperty {
    /// A serial loop with no special attributes.
    pub fn serial() -> Self {
        Self::default()
    }

    /// A loop parallelized over the given scope.
    pub fn parallel(scope: ParallelScope) -> Self {
        ForProperty {
            parallel: scope,
            ..Self::default()
        }
    }
}

/// A statement node: a [`StmtKind`] plus stable identity and optional label.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable identity (survives rewrites).
    pub id: StmtId,
    /// Optional user label for schedule targeting (e.g. `"Li"`).
    pub label: Option<String>,
    /// The statement proper.
    pub kind: StmtKind,
}

/// The statement variants of the IR.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A sequence of statements.
    Block(Vec<Stmt>),
    /// Define a tensor whose lifetime is exactly `body` (stack scoping).
    VarDef {
        /// Tensor name (unique within its scope).
        name: String,
        /// One extent expression per dimension; empty for a scalar.
        shape: Vec<Expr>,
        /// Element type.
        dtype: DataType,
        /// Memory space.
        mtype: MemType,
        /// Role of the tensor (function-local defs use [`AccessType::Cache`]).
        atype: AccessType,
        /// The sub-tree in which the tensor is alive.
        body: Box<Stmt>,
    },
    /// `for iter in begin..end { body }` with unit step.
    For {
        /// Iterator variable name.
        iter: String,
        /// Inclusive lower bound.
        begin: Expr,
        /// Exclusive upper bound.
        end: Expr,
        /// Scheduling attributes.
        property: ForProperty,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Two-armed conditional; `otherwise` may be absent.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` holds.
        then: Box<Stmt>,
        /// Taken otherwise (optional).
        otherwise: Option<Box<Stmt>>,
    },
    /// Plain assignment of one tensor element: `var[indices] = value`.
    Store {
        /// Target tensor.
        var: String,
        /// One index per dimension (empty for scalars).
        indices: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// Reduction into one tensor element: `var[indices] op= value`.
    ReduceTo {
        /// Target tensor.
        var: String,
        /// One index per dimension (empty for scalars).
        indices: Vec<Expr>,
        /// Reduction operator.
        op: ReduceOp,
        /// Value being folded in.
        value: Expr,
        /// Lower to an atomic update (set when parallelizing random-access
        /// reductions, paper Fig. 13(e)).
        atomic: bool,
    },
    /// Call a hand-optimized external library kernel (`as_lib`,
    /// paper Table 1 "Others"). Arguments are tensor names.
    LibCall {
        /// Kernel name, e.g. `"matmul"`.
        kernel: String,
        /// Input tensor names.
        inputs: Vec<String>,
        /// Output tensor names.
        outputs: Vec<String>,
        /// Integer attributes of the call (e.g. matmul dimensions `m, k, n`).
        attrs: Vec<i64>,
    },
    /// No-op placeholder (result of removing a statement).
    Empty,
}

impl Stmt {
    /// Wrap a [`StmtKind`] with a fresh id and no label.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId::fresh(),
            label: None,
            kind,
        }
    }

    /// Attach a schedule-targeting label.
    pub fn with_label(mut self, label: impl Into<String>) -> Stmt {
        self.label = Some(label.into());
        self
    }

    /// Rebuild this node with the same id/label but a new kind.
    pub fn same_id(&self, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.id,
            label: self.label.clone(),
            kind,
        }
    }

    /// Whether the statement is the no-op.
    pub fn is_empty(&self) -> bool {
        match &self.kind {
            StmtKind::Empty => true,
            StmtKind::Block(v) => v.iter().all(Stmt::is_empty),
            _ => false,
        }
    }

    /// The direct child statements of this node.
    pub fn children(&self) -> Vec<&Stmt> {
        match &self.kind {
            StmtKind::Block(v) => v.iter().collect(),
            StmtKind::VarDef { body, .. } | StmtKind::For { body, .. } => vec![body],
            StmtKind::If {
                then, otherwise, ..
            } => {
                let mut v = vec![then.as_ref()];
                if let Some(o) = otherwise {
                    v.push(o.as_ref());
                }
                v
            }
            _ => vec![],
        }
    }

    /// Depth-first pre-order iteration over all statements in the sub-tree.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// Total number of statement nodes in the sub-tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Structural equality ignoring ids and labels.
    pub fn same_structure(&self, other: &Stmt) -> bool {
        match (&self.kind, &other.kind) {
            (StmtKind::Block(a), StmtKind::Block(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_structure(y))
            }
            (
                StmtKind::VarDef {
                    name: n1,
                    shape: s1,
                    dtype: d1,
                    mtype: m1,
                    atype: a1,
                    body: b1,
                },
                StmtKind::VarDef {
                    name: n2,
                    shape: s2,
                    dtype: d2,
                    mtype: m2,
                    atype: a2,
                    body: b2,
                },
            ) => n1 == n2 && s1 == s2 && d1 == d2 && m1 == m2 && a1 == a2 && b1.same_structure(b2),
            (
                StmtKind::For {
                    iter: i1,
                    begin: bg1,
                    end: e1,
                    property: p1,
                    body: b1,
                },
                StmtKind::For {
                    iter: i2,
                    begin: bg2,
                    end: e2,
                    property: p2,
                    body: b2,
                },
            ) => i1 == i2 && bg1 == bg2 && e1 == e2 && p1 == p2 && b1.same_structure(b2),
            (
                StmtKind::If {
                    cond: c1,
                    then: t1,
                    otherwise: o1,
                },
                StmtKind::If {
                    cond: c2,
                    then: t2,
                    otherwise: o2,
                },
            ) => {
                c1 == c2
                    && t1.same_structure(t2)
                    && match (o1, o2) {
                        (None, None) => true,
                        (Some(x), Some(y)) => x.same_structure(y),
                        _ => false,
                    }
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::print_stmt(f, self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn ids_are_unique() {
        let a = Stmt::new(StmtKind::Empty);
        let b = Stmt::new(StmtKind::Empty);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn same_id_preserves_identity() {
        let a = Stmt::new(StmtKind::Empty).with_label("x");
        let b = a.same_id(StmtKind::Block(vec![]));
        assert_eq!(a.id, b.id);
        assert_eq!(b.label.as_deref(), Some("x"));
    }

    #[test]
    fn reduce_identity_values() {
        assert_eq!(
            ReduceOp::Add.identity(DataType::F32),
            Expr::FloatConst(0.0)
        );
        assert_eq!(ReduceOp::Mul.identity(DataType::I32), Expr::IntConst(1));
        assert_eq!(
            ReduceOp::Max.identity(DataType::F64),
            Expr::FloatConst(f64::NEG_INFINITY)
        );
        assert_eq!(
            ReduceOp::Min.identity(DataType::I64),
            Expr::IntConst(i64::MAX)
        );
    }

    #[test]
    fn walk_and_size() {
        let s = for_(
            "i",
            0,
            10,
            block([
                store("a", [var("i")], 0.0f32),
                reduce("b", scalar(), ReduceOp::Add, var("i")),
            ]),
        );
        assert_eq!(s.size(), 4); // for, block, store, reduce
        let mut stores = 0;
        s.walk(&mut |st| {
            if matches!(st.kind, StmtKind::Store { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 1);
    }

    #[test]
    fn structural_equality_ignores_ids() {
        let a = for_("i", 0, 10, store("a", [var("i")], 1.0f32));
        let b = for_("i", 0, 10, store("a", [var("i")], 1.0f32));
        assert_ne!(a.id, b.id);
        assert!(a.same_structure(&b));
        let c = for_("i", 0, 11, store("a", [var("i")], 1.0f32));
        assert!(!a.same_structure(&c));
    }

    #[test]
    fn empty_detection() {
        assert!(Stmt::new(StmtKind::Empty).is_empty());
        assert!(block([Stmt::new(StmtKind::Empty)]).is_empty());
        assert!(!store("a", scalar(), 0.0f32).is_empty());
    }
}
