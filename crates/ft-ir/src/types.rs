//! Scalar data types, memory spaces, devices and parallel scopes.

use std::fmt;

/// Element type of a tensor. A scalar is a 0-D tensor of one of these types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 32-bit IEEE-754 floating point (`"f32"` in the DSL).
    F32,
    /// 64-bit IEEE-754 floating point (`"f64"` in the DSL).
    F64,
    /// 32-bit signed integer (`"i32"` in the DSL).
    I32,
    /// 64-bit signed integer (`"i64"` in the DSL).
    I64,
    /// Boolean (`"bool"` in the DSL).
    Bool,
}

impl DataType {
    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// Whether the type is an integer type.
    pub fn is_int(self) -> bool {
        matches!(self, DataType::I32 | DataType::I64)
    }

    /// Size of one element in bytes, as used by the memory-traffic counters.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F64 | DataType::I64 => 8,
            DataType::Bool => 1,
        }
    }

    /// Parse the DSL spelling of a data type.
    ///
    /// Returns `None` for unknown spellings.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(DataType::F32),
            "f64" => Some(DataType::F64),
            "i32" => Some(DataType::I32),
            "i64" => Some(DataType::I64),
            "bool" => Some(DataType::Bool),
            _ => None,
        }
    }

    /// The type that results from combining two operand types in arithmetic
    /// (the usual "wider wins, float beats int" promotion).
    pub fn promote(self, other: DataType) -> DataType {
        use DataType::*;
        match (self, other) {
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            (I64, _) | (_, I64) => I64,
            (I32, _) | (_, I32) => I32,
            (Bool, Bool) => Bool,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Where a tensor is stored. `set_mtype` / `auto_mem_type` move tensors
/// between these spaces (paper Table 1, "Memory Hierarchy Trans.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemType {
    /// Main memory on the CPU, heap-allocated.
    CpuHeap,
    /// CPU stack storage for small, loop-local tensors (models registers /
    /// L1-resident scalars).
    CpuStack,
    /// GPU global memory (DRAM).
    GpuGlobal,
    /// GPU shared memory (per-block scratch-pad).
    GpuShared,
    /// GPU local storage (per-thread registers).
    GpuLocal,
}

impl MemType {
    /// The device this memory space belongs to.
    pub fn device(self) -> Device {
        match self {
            MemType::CpuHeap | MemType::CpuStack => Device::Cpu,
            MemType::GpuGlobal | MemType::GpuShared | MemType::GpuLocal => Device::Gpu,
        }
    }

    /// The default memory space for freshly created tensors on a device.
    pub fn default_for(device: Device) -> Self {
        match device {
            Device::Cpu => MemType::CpuHeap,
            Device::Gpu => MemType::GpuGlobal,
        }
    }

    /// Rank of "distance from the processor": lower is closer (preferred by
    /// `auto_mem_type`). Registers < scratch-pad < main memory.
    pub fn distance_rank(self) -> u8 {
        match self {
            MemType::CpuStack | MemType::GpuLocal => 0,
            MemType::GpuShared => 1,
            MemType::CpuHeap | MemType::GpuGlobal => 2,
        }
    }

    /// Parse the DSL spelling (`"cpu"`, `"cpu/stack"`, `"gpu"`,
    /// `"gpu/shared"`, `"gpu/local"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cpu" | "cpu/heap" => Some(MemType::CpuHeap),
            "cpu/stack" => Some(MemType::CpuStack),
            "gpu" | "gpu/global" => Some(MemType::GpuGlobal),
            "gpu/shared" => Some(MemType::GpuShared),
            "gpu/local" => Some(MemType::GpuLocal),
            _ => None,
        }
    }
}

impl fmt::Display for MemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemType::CpuHeap => "cpu",
            MemType::CpuStack => "cpu/stack",
            MemType::GpuGlobal => "gpu",
            MemType::GpuShared => "gpu/shared",
            MemType::GpuLocal => "gpu/local",
        };
        f.write_str(s)
    }
}

/// Target device for a compiled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Device {
    /// Multicore CPU (OpenMP-style parallelism).
    #[default]
    Cpu,
    /// CUDA-style GPU (grid of blocks of threads), simulated by the runtime.
    Gpu,
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Cpu => f.write_str("cpu"),
            Device::Gpu => f.write_str("gpu"),
        }
    }
}

/// How the iterations of a `For` loop are mapped onto hardware parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelScope {
    /// Ordinary sequential loop.
    #[default]
    Serial,
    /// CPU threads (`#pragma omp parallel for`).
    OpenMp,
    /// CUDA `blockIdx.x` / `blockIdx.y`.
    CudaBlockX,
    /// Second grid dimension.
    CudaBlockY,
    /// CUDA `threadIdx.x` / `threadIdx.y`.
    CudaThreadX,
    /// Second block dimension.
    CudaThreadY,
}

impl ParallelScope {
    /// Whether loop iterations run concurrently under this scope.
    pub fn is_parallel(self) -> bool {
        !matches!(self, ParallelScope::Serial)
    }

    /// Whether this scope maps to the GPU grid/block hierarchy.
    pub fn is_gpu(self) -> bool {
        matches!(
            self,
            ParallelScope::CudaBlockX
                | ParallelScope::CudaBlockY
                | ParallelScope::CudaThreadX
                | ParallelScope::CudaThreadY
        )
    }

    /// Whether this is a CUDA *block* (grid-level) scope.
    pub fn is_gpu_block(self) -> bool {
        matches!(self, ParallelScope::CudaBlockX | ParallelScope::CudaBlockY)
    }

    /// Whether this is a CUDA *thread* (block-level) scope.
    pub fn is_gpu_thread(self) -> bool {
        matches!(self, ParallelScope::CudaThreadX | ParallelScope::CudaThreadY)
    }
}

impl fmt::Display for ParallelScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParallelScope::Serial => "serial",
            ParallelScope::OpenMp => "openmp",
            ParallelScope::CudaBlockX => "blockIdx.x",
            ParallelScope::CudaBlockY => "blockIdx.y",
            ParallelScope::CudaThreadX => "threadIdx.x",
            ParallelScope::CudaThreadY => "threadIdx.y",
        };
        f.write_str(s)
    }
}

/// Role of a tensor parameter with respect to the function boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Read-only input.
    Input,
    /// Write-only output.
    Output,
    /// Read-write parameter.
    InOut,
    /// Function-local temporary (used for `VarDef`s inside the body).
    Cache,
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessType::Input => "in",
            AccessType::Output => "out",
            AccessType::InOut => "inout",
            AccessType::Cache => "cache",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_properties() {
        assert!(DataType::F32.is_float());
        assert!(!DataType::I64.is_float());
        assert!(DataType::I32.is_int());
        assert_eq!(DataType::F64.size_bytes(), 8);
        assert_eq!(DataType::Bool.size_bytes(), 1);
        assert_eq!(DataType::parse("f32"), Some(DataType::F32));
        assert_eq!(DataType::parse("float"), None);
        assert_eq!(DataType::F32.to_string(), "f32");
    }

    #[test]
    fn dtype_promotion() {
        use DataType::*;
        assert_eq!(I32.promote(F32), F32);
        assert_eq!(F32.promote(F64), F64);
        assert_eq!(I32.promote(I64), I64);
        assert_eq!(Bool.promote(Bool), Bool);
        assert_eq!(Bool.promote(I32), I32);
    }

    #[test]
    fn mtype_device_and_rank() {
        assert_eq!(MemType::GpuShared.device(), Device::Gpu);
        assert_eq!(MemType::CpuHeap.device(), Device::Cpu);
        assert!(MemType::GpuLocal.distance_rank() < MemType::GpuShared.distance_rank());
        assert!(MemType::GpuShared.distance_rank() < MemType::GpuGlobal.distance_rank());
        assert_eq!(MemType::parse("gpu/shared"), Some(MemType::GpuShared));
        assert_eq!(MemType::default_for(Device::Gpu), MemType::GpuGlobal);
    }

    #[test]
    fn parallel_scope_queries() {
        assert!(ParallelScope::OpenMp.is_parallel());
        assert!(!ParallelScope::Serial.is_parallel());
        assert!(ParallelScope::CudaBlockX.is_gpu_block());
        assert!(ParallelScope::CudaThreadY.is_gpu_thread());
        assert!(ParallelScope::CudaThreadX.is_gpu());
        assert!(!ParallelScope::OpenMp.is_gpu());
    }
}
