//! Read-only traversal framework.

use crate::expr::Expr;
use crate::stmt::{Stmt, StmtKind};

/// A read-only visitor over statements and expressions.
///
/// Override the hooks you care about and call the corresponding `walk_*`
/// function to continue into children (or don't, to prune the traversal).
pub trait Visitor {
    /// Called for every statement (pre-order). Default: recurse.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Called for every expression (pre-order). Default: recurse.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Recurse into the children of a statement (both sub-statements and the
/// expressions it contains).
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Block(stmts) => {
            for st in stmts {
                v.visit_stmt(st);
            }
        }
        StmtKind::VarDef { shape, body, .. } => {
            for e in shape {
                v.visit_expr(e);
            }
            v.visit_stmt(body);
        }
        StmtKind::For {
            begin, end, body, ..
        } => {
            v.visit_expr(begin);
            v.visit_expr(end);
            v.visit_stmt(body);
        }
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => {
            v.visit_expr(cond);
            v.visit_stmt(then);
            if let Some(o) = otherwise {
                v.visit_stmt(o);
            }
        }
        StmtKind::Store { indices, value, .. } => {
            for i in indices {
                v.visit_expr(i);
            }
            v.visit_expr(value);
        }
        StmtKind::ReduceTo { indices, value, .. } => {
            for i in indices {
                v.visit_expr(i);
            }
            v.visit_expr(value);
        }
        StmtKind::LibCall { .. } | StmtKind::Empty => {}
    }
}

/// Recurse into the children of an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match e {
        Expr::Load { indices, .. } => {
            for i in indices {
                v.visit_expr(i);
            }
        }
        Expr::Unary { a, .. } | Expr::Cast { a, .. } => v.visit_expr(a),
        Expr::Binary { a, b, .. } => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            v.visit_expr(cond);
            v.visit_expr(then);
            v.visit_expr(otherwise);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::stmt::ReduceOp;

    struct CountLoads(usize);
    impl Visitor for CountLoads {
        fn visit_expr(&mut self, e: &Expr) {
            if matches!(e, Expr::Load { .. }) {
                self.0 += 1;
            }
            walk_expr(self, e);
        }
    }

    #[test]
    fn visitor_reaches_nested_expressions() {
        let s = for_(
            "i",
            0,
            var("n"),
            if_(
                var("i").lt(var("n")),
                block([
                    store("y", [var("i")], load("x", [var("i")]) + load("x", [var("i") + 1])),
                    reduce("acc", scalar(), ReduceOp::Add, load("y", [var("i")])),
                ]),
            ),
        );
        let mut c = CountLoads(0);
        c.visit_stmt(&s);
        assert_eq!(c.0, 3);
    }

    struct CountFors(usize);
    impl Visitor for CountFors {
        fn visit_stmt(&mut self, s: &Stmt) {
            if matches!(s.kind, StmtKind::For { .. }) {
                self.0 += 1;
            }
            walk_stmt(self, s);
        }
    }

    #[test]
    fn visitor_reaches_nested_statements() {
        let s = for_("i", 0, 4, for_("j", 0, 4, store("a", [var("i"), var("j")], 0.0f32)));
        let mut c = CountFors(0);
        c.visit_stmt(&s);
        assert_eq!(c.0, 2);
    }
}
