//! # ft-libop — the operator library, written in the DSL itself
//!
//! The paper's `libop` (§3.2): operators from elementwise arithmetic up to
//! `softmax` and `matmul`, implemented as *pure DSL code* rather than native
//! kernels. Calls to these functions are fully inlined by the frontend and
//! then co-optimized with the rest of the program — the key to removing
//! operator-boundary redundancy.
//!
//! Use [`prelude_source`] to prepend the library to a user program:
//!
//! ```
//! let src = format!(
//!     "{}\n{}",
//!     ft_libop::prelude_source(),
//!     r#"
//! def entry(x: f32[4, 8] in, y: f32[4, 8] out):
//!   add(x, x, y)
//! "#
//! );
//! let func = ft_frontend::compile_str(&src, "entry").expect("compiles");
//! assert_eq!(func.params.len(), 2);
//! ```
//!
//! Dimension-free operators (`zeros`, `add`, `mul_el`, …) use the finite
//! recursion of paper Fig. 6(b) and expand to nested loops by partial
//! evaluation; shape-specific ones (`softmax1d`, `matmul`) are written in
//! the canonical forms that the scheduler's `as_lib` and the auto-scheduler
//! recognize.

/// DSL source of the whole operator library.
pub fn prelude_source() -> &'static str {
    r#"
# ---- libop: dimension-free elementwise operators (paper Fig. 6(b)) ----

def zeros(A):
  if A.ndim == 0:
    A = 0.0
  else:
    for i in range(A.shape(0)):
      zeros(A[i])

def copy_el(A, C):
  if A.ndim == 0:
    C = A
  else:
    for i in range(A.shape(0)):
      copy_el(A[i], C[i])

def add(A, B, C):
  if A.ndim == 0:
    C = A + B
  else:
    for i in range(A.shape(0)):
      add(A[i], B[i], C[i])

def sub(A, B, C):
  if A.ndim == 0:
    C = A - B
  else:
    for i in range(A.shape(0)):
      sub(A[i], B[i], C[i])

def mul_el(A, B, C):
  if A.ndim == 0:
    C = A * B
  else:
    for i in range(A.shape(0)):
      mul_el(A[i], B[i], C[i])

def div_el(A, B, C):
  if A.ndim == 0:
    C = A / B
  else:
    for i in range(A.shape(0)):
      div_el(A[i], B[i], C[i])

def abs_el(A, C):
  if A.ndim == 0:
    C = abs(A)
  else:
    for i in range(A.shape(0)):
      abs_el(A[i], C[i])

def exp_el(A, C):
  if A.ndim == 0:
    C = exp(A)
  else:
    for i in range(A.shape(0)):
      exp_el(A[i], C[i])

def relu(A, C):
  if A.ndim == 0:
    C = max(A, 0.0)
  else:
    for i in range(A.shape(0)):
      relu(A[i], C[i])

def sigmoid_el(A, C):
  if A.ndim == 0:
    C = sigmoid(A)
  else:
    for i in range(A.shape(0)):
      sigmoid_el(A[i], C[i])

def scale(A, s, C):
  if A.ndim == 0:
    C = A * s
  else:
    for i in range(A.shape(0)):
      scale(A[i], s, C[i])

# ---- reductions ----

def sum_acc(A, out):
  if A.ndim == 0:
    out += A
  else:
    for i in range(A.shape(0)):
      sum_acc(A[i], out)

def reduce_sum(A, out):
  out = 0.0
  sum_acc(A, out)

def max_acc(A, out):
  if A.ndim == 0:
    out max= A
  else:
    for i in range(A.shape(0)):
      max_acc(A[i], out)

def reduce_max(A, out):
  out = -inf
  max_acc(A, out)

# ---- composite operators ----

def softmax1d(x, y, n: size):
  m = create_var((), "f32", "cpu")
  m = -inf
  for i in range(n):
    m max= x[i]
  den = create_var((), "f32", "cpu")
  den = 0.0
  for j in range(n):
    den += exp(x[j] - m)
  for k in range(n):
    y[k] = exp(x[k] - m) / den

def matmul(A, B, C, m: size, k: size, n: size):
  for i in range(m):
    for j in range(n):
      C[i, j] = 0.0
      for p in range(k):
        C[i, j] += A[i, p] * B[p, j]
"#
}

/// Compile a user program together with the operator library.
///
/// # Errors
///
/// Propagates frontend parse/lowering errors (as strings with locations).
pub fn compile_with_libop(user_src: &str, entry: &str) -> Result<ft_ir::Func, String> {
    let src = format!("{}\n{}", prelude_source(), user_src);
    ft_frontend::compile_str(&src, entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_runtime::{Runtime, TensorVal};
    use std::collections::HashMap;

    fn run1(
        src: &str,
        entry: &str,
        inputs: &[(&str, TensorVal)],
        out: &str,
    ) -> TensorVal {
        let f = compile_with_libop(src, entry).expect("compiles");
        let inputs: HashMap<String, TensorVal> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        Runtime::new()
            .run(&f, &inputs, &HashMap::new())
            .expect("runs")
            .output(out)
            .clone()
    }

    #[test]
    fn elementwise_ops_on_2d() {
        let x = TensorVal::from_f32(&[2, 3], vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]);
        let y = run1(
            "def e(x: f32[2, 3] in, y: f32[2, 3] out):\n  abs_el(x, y)\n",
            "e",
            &[("x", x.clone())],
            "y",
        );
        assert_eq!(y.to_f64_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = run1(
            "def e(x: f32[2, 3] in, y: f32[2, 3] out):\n  relu(x, y)\n",
            "e",
            &[("x", x.clone())],
            "y",
        );
        assert_eq!(y.to_f64_vec(), vec![1.0, 0.0, 3.0, 0.0, 5.0, 0.0]);
        let y = run1(
            "def e(x: f32[2, 3] in, y: f32[2, 3] out):\n  add(x, x, y)\n",
            "e",
            &[("x", x)],
            "y",
        );
        assert_eq!(y.to_f64_vec(), vec![2.0, -4.0, 6.0, -8.0, 10.0, -12.0]);
    }

    #[test]
    fn reductions() {
        let x = TensorVal::from_f32(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let s = run1(
            "def e(x: f32[2, 2] in, s: f32[] out):\n  reduce_sum(x, s)\n",
            "e",
            &[("x", x.clone())],
            "s",
        );
        assert_eq!(s.to_f64_vec(), vec![10.0]);
        let m = run1(
            "def e(x: f32[2, 2] in, m: f32[] out):\n  reduce_max(x, m)\n",
            "e",
            &[("x", x)],
            "m",
        );
        assert_eq!(m.to_f64_vec(), vec![4.0]);
    }

    #[test]
    fn softmax_normalizes() {
        let x = TensorVal::from_f32(&[4], vec![0.5, 1.5, -0.5, 2.0]);
        let y = run1(
            "def e(x: f32[4] in, y: f32[4] out):\n  softmax1d(x, y, 4)\n",
            "e",
            &[("x", x)],
            "y",
        );
        let v = y.to_f64_vec();
        let total: f64 = v.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(v[3] > v[1] && v[1] > v[0] && v[0] > v[2]);
    }

    #[test]
    fn matmul_matches_reference() {
        let a = TensorVal::from_f32(&[3, 4], (0..12).map(|x| x as f32 * 0.25).collect());
        let b = TensorVal::from_f32(&[4, 2], (0..8).map(|x| (x as f32).sin()).collect());
        let c = run1(
            "def e(a: f32[3, 4] in, b: f32[4, 2] in, c: f32[3, 2] out):\n  matmul(a, b, c, 3, 4, 2)\n",
            "e",
            &[("a", a.clone()), ("b", b.clone())],
            "c",
        );
        let reference = ft_runtime::libkernel::matmul_reference(&a, &b, 3, 4, 2);
        assert!(c.allclose(&reference, 1e-5));
    }

    #[test]
    fn libop_matmul_matches_as_lib_pattern() {
        // The libop matmul, inlined, must be recognized by the scheduler's
        // `as_lib` (holistic pipeline property).
        let f = compile_with_libop(
            "def e(a: f32[3, 4] in, b: f32[4, 2] in, c: f32[3, 2] out):\n  matmul(a, b, c, 3, 4, 2)\n",
            "e",
        )
        .unwrap();
        let mut s = ft_schedule::Schedule::new(f);
        s.as_lib("i").expect("libop matmul matches as_lib");
        assert!(ft_ir::find::find_stmt(&s.func().body, &|st| {
            matches!(st.kind, ft_ir::StmtKind::LibCall { .. })
        })
        .is_some());
    }

    #[test]
    fn zeros_then_accumulate() {
        let x = TensorVal::from_f32(&[3], vec![1.0, 2.0, 3.0]);
        let y = run1(
            "def e(x: f32[3] in, y: f32[3] out):\n  zeros(y)\n  add(y, x, y)\n",
            "e",
            &[("x", x)],
            "y",
        );
        assert_eq!(y.to_f64_vec(), vec![1.0, 2.0, 3.0]);
    }
}
