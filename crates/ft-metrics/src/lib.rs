//! # ft-metrics — runtime telemetry registry
//!
//! A zero-global-state metrics substrate for the execution engines, plumbed
//! the same way [`ft-trace`]'s `TraceSink` is: a [`Metrics`] handle is a
//! cheap-to-clone `Arc` around a registry, components hold an
//! `Option<Metrics>`, and instrumentation is a no-op when absent. There is
//! deliberately no process-wide default registry — every harness (bench,
//! conformance, serving) builds its own and decides its lifetime.
//!
//! Three instrument kinds:
//!
//! * [`Counter`] — a monotone `u64`, saturating on overflow. Hot-path
//!   increments are a single relaxed atomic add.
//! * [`Gauge`] — a signed level (`i64`), set or adjusted.
//! * [`Histogram`] — 64 fixed log2 buckets over `u64` samples (bucket `k`
//!   holds values with bit length `k`; bucket 0 holds zero; bucket 63 is
//!   the overflow tail). Fixed buckets make merging a bucket-wise add,
//!   which is associative and commutative — histograms recorded
//!   concurrently by pool workers combine to the same result regardless
//!   of worker count or interleaving.
//!
//! Registration (first use of a name) takes a mutex; the returned handles
//! are lock-free thereafter, so hot loops register once and hold the
//! handle. [`Metrics::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] with deterministic (sorted-name) ordering,
//! [`MetricsSnapshot::diff`] isolates one run's deltas, and exporters
//! render Prometheus text exposition ([`MetricsSnapshot::to_prometheus`])
//! or JSON ([`MetricsSnapshot::to_json`] / [`MetricsSnapshot::from_json`],
//! the format of `results/METRICS.json`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index a sample lands in: its bit length, clamped to the tail.
#[inline]
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `k` (`u64::MAX` for the tail bucket).
#[inline]
fn bucket_upper_bound(k: usize) -> u64 {
    if k >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            // Wrapped: pin to the ceiling. Racy double-saturation still
            // lands on the same value, so this stays deterministic.
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the level to `v` if it is below (a relaxed running maximum).
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (typically microseconds
/// or bytes). Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates: on week-long runs the bucket counts stay
        // meaningful even after the sum pins.
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Record a wall-clock duration in whole microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// One named registry of instruments behind a [`Metrics`] handle.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A cheap-to-clone handle on a metrics registry. All clones observe the
/// same instruments; drop every clone and the registry is gone — there is
/// no global fallback.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Registry>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.counters.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.gauges.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.histograms.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Freeze every instrument into a point-in-time snapshot with
    /// deterministic (sorted-name) iteration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<u64> = h
                    .0
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        buckets,
                        count: h.0.count.load(Ordering::Relaxed),
                        sum: h.0.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, `HISTOGRAM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty histogram (all buckets zero).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            ..HistogramSnapshot::default()
        }
    }

    /// Merge `other` into `self` bucket-wise. Associative and commutative,
    /// so per-worker histograms combine deterministically in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < HISTOGRAM_BUCKETS {
            self.buckets.resize(HISTOGRAM_BUCKETS, 0);
        }
        for (i, &b) in other.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
            self.buckets[i] = self.buckets[i].saturating_add(b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Bucket-wise saturating subtraction (for run deltas).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(earlier.buckets.len());
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..n)
                .map(|i| get(&self.buckets, i).saturating_sub(get(&earlier.buckets, i)))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// `q`-th sample (`q` in `[0, 1]`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return bucket_upper_bound(k);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// A point-in-time freeze of a registry: sorted-name maps of every
/// instrument. The unit of export, diffing, and cross-worker merging.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The deltas accumulated since `earlier` was taken from the same
    /// registry: counters and histograms subtract (saturating), gauges are
    /// levels and keep their later value.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let base = earlier.histograms.get(k);
                let d = match base {
                    Some(b) => h.diff(b),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Merge `other` into `self`: counters and histograms add, gauges take
    /// `other`'s level (last writer wins). Associative and commutative on
    /// the additive parts, so per-worker snapshots combine to the same
    /// totals in any merge order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            let e = self.counters.entry(k.clone()).or_insert(0);
            *e = e.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Render Prometheus text exposition format (version 0.0.4). Metric
    /// names are prefixed `ft_` and sanitized (`.` and other non-name
    /// characters become `_`); histograms emit cumulative `_bucket{le=...}`
    /// series over powers of two plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let last = h
                .buckets
                .iter()
                .rposition(|&b| b != 0)
                .unwrap_or(0)
                .min(HISTOGRAM_BUCKETS - 2);
            let mut cum = 0u64;
            for k in 0..=last {
                cum = cum.saturating_add(h.buckets.get(k).copied().unwrap_or(0));
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_upper_bound(k)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Render the JSON document format of `results/METRICS.json`. Histogram
    /// buckets are sparse `[index, count]` pairs; the output is
    /// deterministic (sorted names, no whitespace variation).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &b)| b != 0)
                .map(|(i, &b)| format!("[{i},{b}]"))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                json_str(k),
                h.count,
                h.sum,
                buckets.join(",")
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parse [`MetricsSnapshot::to_json`] output back.
    ///
    /// # Errors
    ///
    /// Describes the first malformed construct.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, String> {
        let v = json::parse(s)?;
        let mut snap = MetricsSnapshot::default();
        if let Some(obj) = v.get("counters").and_then(json::Val::as_obj) {
            for (k, v) in obj {
                let n = v.as_u64().ok_or_else(|| format!("counter `{k}` not a u64"))?;
                snap.counters.insert(k.clone(), n);
            }
        }
        if let Some(obj) = v.get("gauges").and_then(json::Val::as_obj) {
            for (k, v) in obj {
                let n = v.as_i64().ok_or_else(|| format!("gauge `{k}` not an i64"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(obj) = v.get("histograms").and_then(json::Val::as_obj) {
            for (k, v) in obj {
                let mut h = HistogramSnapshot::empty();
                h.count = v
                    .get("count")
                    .and_then(json::Val::as_u64)
                    .ok_or_else(|| format!("histogram `{k}` missing `count`"))?;
                h.sum = v
                    .get("sum")
                    .and_then(json::Val::as_u64)
                    .ok_or_else(|| format!("histogram `{k}` missing `sum`"))?;
                let buckets = v
                    .get("buckets")
                    .and_then(json::Val::as_arr)
                    .ok_or_else(|| format!("histogram `{k}` missing `buckets`"))?;
                for pair in buckets {
                    let p = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        format!("histogram `{k}`: bucket entry is not an [index, count] pair")
                    })?;
                    let (i, b) = (p[0].as_u64(), p[1].as_u64());
                    let (Some(i), Some(b)) = (i, b) else {
                        return Err(format!("histogram `{k}`: non-integer bucket pair"));
                    };
                    if (i as usize) < HISTOGRAM_BUCKETS {
                        h.buckets[i as usize] = b;
                    }
                }
                snap.histograms.insert(k.clone(), h);
            }
        }
        Ok(snap)
    }
}

/// Sanitize a dotted metric name into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out = String::from("ft_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Quote a JSON string with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader, private to this crate so it stays a leaf with no
/// dependency on the other crates' JSON helpers. Integers round-trip
/// exactly up to `u64::MAX` (no lossy f64 detour).
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Val {
        Null,
        Bool(bool),
        Int(i128),
        Float(f64),
        Str(String),
        Arr(Vec<Val>),
        Obj(Vec<(String, Val)>),
    }

    impl Val {
        pub fn get(&self, key: &str) -> Option<&Val> {
            match self {
                Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_obj(&self) -> Option<&[(String, Val)]> {
            match self {
                Val::Obj(f) => Some(f),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Val]> {
            match self {
                Val::Arr(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Val::Int(n) => u64::try_from(*n).ok(),
                Val::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                    Some(*f as u64)
                }
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Val::Int(n) => i64::try_from(*n).ok(),
                Val::Float(f) if f.fract() == 0.0 => Some(*f as i64),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Val, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Val::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let k = string(b, pos)?;
                    expect(b, pos, b':')?;
                    fields.push((k, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Val::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Val::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Val::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Val::Str(string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Val::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Val::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Val::Null)
            }
            Some(_) => number(b, pos),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = b.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            *pos += 4;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", e as char)),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 from the raw bytes.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = *pos - 1;
                        let len = if c >= 0xF0 {
                            4
                        } else if c >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                        out.push_str(s);
                        *pos = start + len;
                    }
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        let start = *pos;
        while *pos < b.len()
            && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        if s.is_empty() {
            return Err(format!("expected value at offset {start}"));
        }
        if s.bytes().all(|c| c.is_ascii_digit() || c == b'-') {
            s.parse::<i128>()
                .map(Val::Int)
                .map_err(|e| format!("bad integer `{s}`: {e}"))
        } else {
            s.parse::<f64>()
                .map(Val::Float)
                .map_err(|e| format!("bad number `{s}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let m = Metrics::new();
        let c = m.counter("x");
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn handles_share_cells_across_clones() {
        let m = Metrics::new();
        m.counter("runs").inc();
        let m2 = m.clone();
        m2.counter("runs").add(2);
        assert_eq!(m.snapshot().counter("runs"), 3);
        m.gauge("depth").set(7);
        m2.gauge("depth").add(-2);
        assert_eq!(m.snapshot().gauge("depth"), 5);
    }

    #[test]
    fn snapshot_diff_isolates_a_run() {
        let m = Metrics::new();
        let c = m.counter("calls");
        let h = m.histogram("lat_us");
        c.add(5);
        h.record(100);
        let before = m.snapshot();
        c.add(3);
        h.record(200);
        h.record(300);
        let delta = m.snapshot().diff(&before);
        assert_eq!(delta.counter("calls"), 3);
        assert_eq!(delta.histograms["lat_us"].count, 2);
        assert_eq!(delta.histograms["lat_us"].sum, 500);
    }

    #[test]
    fn histogram_quantile_walks_cumulative_buckets() {
        let m = Metrics::new();
        let h = m.histogram("h");
        for v in [1u64, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = &m.snapshot().histograms["h"];
        assert_eq!(s.count, 5);
        // p50 = 3rd sample → bucket of 3 (bit length 2, ub 3).
        assert_eq!(s.quantile(0.5), 3);
        // p99 → last bucket touched (1000 has bit length 10, ub 1023).
        assert_eq!(s.quantile(0.99), 1023);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = Metrics::new();
        m.counter("compiled.cache.hit").add(41);
        m.counter("big").add(u64::MAX);
        m.gauge("pool.queue.depth").set(-3);
        let h = m.histogram("engine.vm.run_us");
        h.record(0);
        h.record(17);
        h.record(1 << 40);
        let snap = m.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(MetricsSnapshot::from_json("not json").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\": {\"x\": -1}}").is_err());
        assert!(MetricsSnapshot::from_json("{} trailing").is_err());
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Metrics::new().snapshot();
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
        assert_eq!(snap.to_prometheus(), "");
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let a = Metrics::new();
        a.counter("c").add(2);
        a.histogram("h").record(5);
        let b = Metrics::new();
        b.counter("c").add(3);
        b.histogram("h").record(9);
        b.gauge("g").set(4);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].sum, 14);
        assert_eq!(s.gauge("g"), 4);
    }
}
