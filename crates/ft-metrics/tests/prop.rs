//! Property tests for the histogram merge algebra (the basis of the
//! cross-worker determinism claim) and a golden test pinning the
//! Prometheus exposition format.

use ft_metrics::{HistogramSnapshot, Metrics, MetricsSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// A full-spread `u64` strategy (the vendored rand cannot sample the
/// full-width inclusive range, so saturation boundaries are explicit arms).
fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..=(u64::MAX - 1),
        Just(u64::MAX),
        Just(0u64),
        0u64..4096,
    ]
}

/// An arbitrary (possibly near-saturated) frozen histogram.
fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(arb_u64(), HISTOGRAM_BUCKETS),
        arb_u64(),
        arb_u64(),
    )
        .prop_map(|(buckets, count, sum)| HistogramSnapshot {
            buckets,
            count,
            sum,
        })
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    /// Merge is commutative even at saturation boundaries.
    #[test]
    fn histogram_merge_commutes(a in arb_hist(), b in arb_hist()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merge is associative, so a reduction tree over per-worker
    /// histograms gives the same answer regardless of shape.
    #[test]
    fn histogram_merge_associates(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// The empty histogram is the merge identity.
    #[test]
    fn histogram_merge_identity(a in arb_hist()) {
        prop_assert_eq!(merged(&a, &HistogramSnapshot::empty()), a.clone());
        prop_assert_eq!(merged(&HistogramSnapshot::empty(), &a), a);
    }

    /// Recording the same sample multiset sharded across 1, 2, or 8
    /// workers — each with a private registry, merged afterwards — yields
    /// bit-identical merged snapshots. This is the property the pool
    /// relies on when it aggregates per-worker metrics.
    #[test]
    fn sharded_recording_is_deterministic(
        samples in proptest::collection::vec(arb_u64(), 0..200),
    ) {
        let mut merges: Vec<MetricsSnapshot> = Vec::new();
        for workers in [1usize, 2, 8] {
            let shards: Vec<Metrics> = (0..workers).map(|_| Metrics::new()).collect();
            for (i, &s) in samples.iter().enumerate() {
                let m = &shards[i % workers];
                m.histogram("kernel_us").record(s);
                m.counter("runs").inc();
            }
            let mut total = MetricsSnapshot::default();
            // Merge in an arbitrary (here: reversed) order; associativity
            // and commutativity make the order irrelevant.
            for m in shards.iter().rev() {
                total.merge(&m.snapshot());
            }
            merges.push(total);
        }
        prop_assert_eq!(&merges[0], &merges[1]);
        prop_assert_eq!(&merges[1], &merges[2]);
    }

    /// JSON export/import round-trips arbitrary registries exactly.
    #[test]
    fn json_roundtrips_arbitrary_histograms(h in arb_hist(), c in arb_u64(), g in i64::MIN..=(i64::MAX - 1)) {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("c".to_string(), c);
        snap.gauges.insert("g".to_string(), g);
        snap.histograms.insert("h".to_string(), h);
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(back, snap);
    }
}

/// Pin the exact Prometheus text exposition so dashboards scraping it
/// never silently break: `ft_` prefix, dots to underscores, cumulative
/// power-of-two `_bucket{le=...}` series ending in `+Inf`, then
/// `_sum`/`_count`.
#[test]
fn prometheus_exposition_format_is_pinned() {
    let m = Metrics::new();
    m.counter("compiled.cache.hit").add(3);
    m.gauge("pool.queue.depth").set(-2);
    let h = m.histogram("run.us");
    for v in [0u64, 3, 9] {
        h.record(v);
    }
    let expected = "\
# TYPE ft_compiled_cache_hit counter
ft_compiled_cache_hit 3
# TYPE ft_pool_queue_depth gauge
ft_pool_queue_depth -2
# TYPE ft_run_us histogram
ft_run_us_bucket{le=\"0\"} 1
ft_run_us_bucket{le=\"1\"} 1
ft_run_us_bucket{le=\"3\"} 2
ft_run_us_bucket{le=\"7\"} 2
ft_run_us_bucket{le=\"15\"} 3
ft_run_us_bucket{le=\"+Inf\"} 3
ft_run_us_sum 12
ft_run_us_count 3
";
    assert_eq!(m.snapshot().to_prometheus(), expected);
}
