//! Graph-based reverse AD over the recorded operator tape.
//!
//! The classic operator-framework scheme (paper §7 "Automatic
//! differentiation"): walk the tape backwards, replacing each node by its
//! gradient counterpart. Every saved input/output was *retained* by the tape
//! — the all-materialized behaviour FreeTensor's selective strategy improves
//! on.

use crate::ops::{split3, Op};
use crate::{OpError, Session, Tensor};
use ft_ir::DataType;
use ft_runtime::TensorVal;
use std::collections::HashMap;

fn vals(t: &Tensor) -> Vec<f64> {
    t.val().to_f64_vec()
}

fn tensor_from(shape: &[usize], data: Vec<f64>) -> TensorVal {
    let mut t = TensorVal::zeros(DataType::F32, shape);
    for (i, v) in data.into_iter().enumerate() {
        t.set_flat(i, ft_runtime::Scalar::Float(v));
    }
    t
}

impl Session {
    /// Run the backward pass from `output` with gradient `seed`, consuming
    /// the tape. Returns the gradient of every tensor that received one,
    /// keyed by [`Tensor::id`].
    ///
    /// # Errors
    ///
    /// [`OpError::OutOfMemory`] when gradient buffers exceed capacity;
    /// [`OpError::Shape`] when the seed's shape mismatches the output.
    pub fn backward(
        &self,
        output: &Tensor,
        seed: TensorVal,
    ) -> Result<HashMap<usize, TensorVal>, OpError> {
        if seed.shape() != output.shape() {
            return Err(OpError::Shape("backward seed shape".to_string()));
        }
        let tape = std::mem::take(&mut self.state.borrow_mut().tape);
        let mut grads: HashMap<usize, Vec<f64>> = HashMap::new();
        grads.insert(output.id(), seed.to_f64_vec());
        for entry in tape.iter().rev() {
            let Some(gout) = grads.get(&entry.output.id()).cloned() else {
                continue;
            };
            let contribs = self.op_backward(&entry.op, &entry.inputs, &entry.output, &gout)?;
            for (tensor, g) in contribs {
                let slot = grads
                    .entry(tensor.id())
                    .or_insert_with(|| vec![0.0; tensor.val().numel()]);
                for (a, b) in slot.iter_mut().zip(g) {
                    *a += b;
                }
            }
        }
        // Materialize gradients as tensors (counted toward footprint).
        let mut out = HashMap::new();
        let shapes: HashMap<usize, Vec<usize>> = tape
            .iter()
            .flat_map(|e| {
                e.inputs
                    .iter()
                    .chain(std::iter::once(&e.output))
                    .map(|t| (t.id(), t.shape().to_vec()))
            })
            .collect();
        for (id, g) in grads {
            let shape = shapes
                .get(&id)
                .cloned()
                .unwrap_or_else(|| output.shape().to_vec());
            out.insert(id, tensor_from(&shape, g));
        }
        Ok(out)
    }

    #[allow(clippy::too_many_lines)]
    fn op_backward(
        &self,
        op: &Op,
        inputs: &[Tensor],
        output: &Tensor,
        gout: &[f64],
    ) -> Result<Vec<(Tensor, Vec<f64>)>, OpError> {
        // Every gradient operator is itself an operator launch: charge it.
        let n_out = gout.len();
        let out = match op {
            Op::Add => {
                self.charge(3 * n_out, n_out);
                vec![
                    (inputs[0].clone(), gout.to_vec()),
                    (inputs[1].clone(), gout.to_vec()),
                ]
            }
            Op::Sub => {
                self.charge(3 * n_out, n_out);
                vec![
                    (inputs[0].clone(), gout.to_vec()),
                    (inputs[1].clone(), gout.iter().map(|g| -g).collect()),
                ]
            }
            Op::Mul => {
                let (a, b) = (vals(&inputs[0]), vals(&inputs[1]));
                self.charge(4 * n_out, 2 * n_out);
                vec![
                    (
                        inputs[0].clone(),
                        gout.iter().zip(&b).map(|(g, y)| g * y).collect(),
                    ),
                    (
                        inputs[1].clone(),
                        gout.iter().zip(&a).map(|(g, x)| g * x).collect(),
                    ),
                ]
            }
            Op::Div => {
                let (a, b) = (vals(&inputs[0]), vals(&inputs[1]));
                self.charge(4 * n_out, 4 * n_out);
                vec![
                    (
                        inputs[0].clone(),
                        gout.iter().zip(&b).map(|(g, y)| g / y).collect(),
                    ),
                    (
                        inputs[1].clone(),
                        gout.iter()
                            .zip(a.iter().zip(&b))
                            .map(|(g, (x, y))| -g * x / (y * y))
                            .collect(),
                    ),
                ]
            }
            Op::Abs => {
                let a = vals(&inputs[0]);
                self.charge(3 * n_out, n_out);
                vec![(
                    inputs[0].clone(),
                    gout.iter()
                        .zip(&a)
                        .map(|(g, x)| g * if *x >= 0.0 { 1.0 } else { -1.0 })
                        .collect(),
                )]
            }
            Op::Exp => {
                let y = vals(output);
                self.charge(3 * n_out, n_out);
                vec![(
                    inputs[0].clone(),
                    gout.iter().zip(&y).map(|(g, e)| g * e).collect(),
                )]
            }
            Op::Relu => {
                let a = vals(&inputs[0]);
                self.charge(3 * n_out, n_out);
                vec![(
                    inputs[0].clone(),
                    gout.iter()
                        .zip(&a)
                        .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                        .collect(),
                )]
            }
            Op::Sigmoid => {
                let y = vals(output);
                self.charge(3 * n_out, 3 * n_out);
                vec![(
                    inputs[0].clone(),
                    gout.iter().zip(&y).map(|(g, s)| g * s * (1.0 - s)).collect(),
                )]
            }
            Op::Scale(c) => {
                self.charge(2 * n_out, n_out);
                vec![(inputs[0].clone(), gout.iter().map(|g| g * c).collect())]
            }
            Op::AddRow => {
                let f = inputs[1].val().numel();
                let mut gv = vec![0.0; f];
                for (i, g) in gout.iter().enumerate() {
                    gv[i % f] += g;
                }
                self.charge(2 * n_out + f, n_out);
                vec![(inputs[0].clone(), gout.to_vec()), (inputs[1].clone(), gv)]
            }
            Op::AddCol => {
                let p = inputs[1].val().numel();
                let f = n_out / p;
                let mut gv = vec![0.0; p];
                for (i, g) in gout.iter().enumerate() {
                    gv[i / f] += g;
                }
                self.charge(2 * n_out + p, n_out);
                vec![(inputs[0].clone(), gout.to_vec()), (inputs[1].clone(), gv)]
            }
            Op::SumDim(dim) => {
                let shape = inputs[0].shape().to_vec();
                let (outer, d, inner) = split3(&shape, *dim);
                let mut g = vec![0.0; outer * d * inner];
                for o in 0..outer {
                    for j in 0..d {
                        for i in 0..inner {
                            g[(o * d + j) * inner + i] = gout[o * inner + i];
                        }
                    }
                }
                self.charge(n_out + g.len(), 0);
                vec![(inputs[0].clone(), g)]
            }
            Op::SoftmaxDim(dim) => {
                let y = vals(output);
                let shape = output.shape().to_vec();
                let (outer, d, inner) = split3(&shape, *dim);
                let mut g = vec![0.0; y.len()];
                for o in 0..outer {
                    for i in 0..inner {
                        let at = |j: usize| (o * d + j) * inner + i;
                        let dot: f64 = (0..d).map(|j| gout[at(j)] * y[at(j)]).sum();
                        for j in 0..d {
                            g[at(j)] = y[at(j)] * (gout[at(j)] - dot);
                        }
                    }
                }
                self.charge(3 * y.len(), 4 * y.len());
                vec![(inputs[0].clone(), g)]
            }
            Op::Matmul { m, k, n } => {
                let (a, b) = (vals(&inputs[0]), vals(&inputs[1]));
                let mut ga = vec![0.0; m * k];
                let mut gb = vec![0.0; k * n];
                for i in 0..*m {
                    for j in 0..*n {
                        let g = gout[i * n + j];
                        for p in 0..*k {
                            ga[i * k + p] += g * b[p * n + j];
                            gb[p * n + j] += g * a[i * k + p];
                        }
                    }
                }
                self.charge(m * k + k * n + 2 * m * n, 4 * m * k * n);
                vec![(inputs[0].clone(), ga), (inputs[1].clone(), gb)]
            }
            Op::Transpose2d => {
                let [n, m] = *output.shape() else { unreachable!() };
                let mut g = vec![0.0; m * n];
                for j in 0..n {
                    for i in 0..m {
                        g[i * n + j] = gout[j * m + i];
                    }
                }
                self.charge(2 * n_out, 0);
                vec![(inputs[0].clone(), g)]
            }
            Op::Reshape(orig) => {
                let _ = orig;
                self.charge(2 * n_out, 0);
                vec![(inputs[0].clone(), gout.to_vec())]
            }
            Op::IndexSelect => {
                let src_shape = inputs[0].shape().to_vec();
                let row: usize = src_shape[1..].iter().product::<usize>().max(1);
                let idx = vals(&inputs[1]);
                let mut g = vec![0.0; inputs[0].val().numel()];
                for (r, ix) in idx.iter().enumerate() {
                    let dst = *ix as usize;
                    for p in 0..row {
                        g[dst * row + p] += gout[r * row + p];
                    }
                }
                self.charge(n_out + g.len(), n_out);
                vec![(inputs[0].clone(), g)]
            }
            Op::Slice { dim, start, .. } => {
                let shape = inputs[0].shape().to_vec();
                let (outer, d, inner) = split3(&shape, *dim);
                let nd = output.shape()[*dim];
                let mut g = vec![0.0; inputs[0].val().numel()];
                for o in 0..outer {
                    for j in 0..nd {
                        for i in 0..inner {
                            g[(o * d + j + start) * inner + i] = gout[(o * nd + j) * inner + i];
                        }
                    }
                }
                self.charge(n_out + g.len(), 0);
                vec![(inputs[0].clone(), g)]
            }
            Op::Cat { dim, sizes } => {
                let total: usize = sizes.iter().sum();
                let base = output.shape().to_vec();
                let (outer, _, inner) = split3(&base, *dim);
                let mut contribs = Vec::new();
                let mut off = 0usize;
                for (part, d) in inputs.iter().zip(sizes) {
                    let mut g = vec![0.0; part.val().numel()];
                    for o in 0..outer {
                        for j in 0..*d {
                            for i in 0..inner {
                                g[(o * d + j) * inner + i] =
                                    gout[(o * total + off + j) * inner + i];
                            }
                        }
                    }
                    off += d;
                    contribs.push((part.clone(), g));
                }
                self.charge(2 * n_out, 0);
                contribs
            }
            Op::UnfoldWindow { w } => {
                let [n, f] = *inputs[0].shape() else { unreachable!() };
                let l = 2 * w + 1;
                let mut g = vec![0.0; n * f];
                for j in 0..n {
                    for (kk, dk) in (-(*w as i64)..=(*w as i64)).enumerate() {
                        let src = j as i64 + dk;
                        if src < 0 || src >= n as i64 {
                            continue;
                        }
                        for p in 0..f {
                            g[src as usize * f + p] += gout[(j * l + kk) * f + p];
                        }
                    }
                }
                self.charge(n_out + g.len(), n_out);
                vec![(inputs[0].clone(), g)]
            }
            Op::BmmQk => {
                let (q, kwin) = (vals(&inputs[0]), vals(&inputs[1]));
                let [n, f] = *inputs[0].shape() else { unreachable!() };
                let [_, l, _] = *inputs[1].shape() else { unreachable!() };
                let mut gq = vec![0.0; n * f];
                let mut gk = vec![0.0; n * l * f];
                for j in 0..n {
                    for kk in 0..l {
                        let g = gout[j * l + kk];
                        for p in 0..f {
                            gq[j * f + p] += g * kwin[(j * l + kk) * f + p];
                            gk[(j * l + kk) * f + p] += g * q[j * f + p];
                        }
                    }
                }
                self.charge(n * f + n * l * f + n * l, 4 * n * l * f);
                vec![(inputs[0].clone(), gq), (inputs[1].clone(), gk)]
            }
            Op::BmmAv => {
                let (attn, vwin) = (vals(&inputs[0]), vals(&inputs[1]));
                let [n, l] = *inputs[0].shape() else { unreachable!() };
                let [_, _, f] = *inputs[1].shape() else { unreachable!() };
                let mut ga = vec![0.0; n * l];
                let mut gv = vec![0.0; n * l * f];
                for j in 0..n {
                    for kk in 0..l {
                        let mut acc = 0.0;
                        for p in 0..f {
                            acc += gout[j * f + p] * vwin[(j * l + kk) * f + p];
                            gv[(j * l + kk) * f + p] += attn[j * l + kk] * gout[j * f + p];
                        }
                        ga[j * l + kk] = acc;
                    }
                }
                self.charge(n * l + n * l * f + n * f, 4 * n * l * f);
                vec![(inputs[0].clone(), ga), (inputs[1].clone(), gv)]
            }
            Op::SumAll => {
                let n = inputs[0].val().numel();
                self.charge(n + 1, 0);
                vec![(inputs[0].clone(), vec![gout[0]; n])]
            }
            Op::NoGrad => vec![],
        };
        Ok(out)
    }
}
