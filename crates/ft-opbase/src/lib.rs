//! # ft-opbase — the operator-based baseline framework
//!
//! A miniature eager tensor framework standing in for PyTorch/JAX/DGL in the
//! paper's evaluation (per the substitution table in `DESIGN.md`). It has
//! exactly the properties the paper attributes to operator-based systems:
//!
//! * every operator materializes its full output tensor (and, for irregular
//!   programs, the *rearrangement* operators — `index_select`, `cat`,
//!   `unfold_window` — materialize heavily redundant intermediates,
//!   paper Figs. 1–2);
//! * every operator invocation is one kernel launch with its inputs and
//!   outputs streamed through DRAM (no fusion across operator boundaries);
//! * graph-based AD retains **all** intermediates until the backward pass
//!   completes (the memory behaviour behind the paper's OOM entries).
//!
//! Instrumentation matches `ft-runtime`'s counters, so FreeTensor programs
//! and baseline operator chains are compared on identical metrics (kernel
//! launches, DRAM bytes, FLOPs, peak footprint, modeled cycles).

pub mod backward;
pub mod ops;

use ft_ir::Device;
use ft_runtime::{DeviceConfig, PerfCounters, TensorVal};
use std::cell::RefCell;
use std::fmt;
use std::rc::{Rc, Weak};

/// Baseline-framework errors.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// Device memory exhausted (retained intermediates included).
    OutOfMemory {
        /// The device.
        device: Device,
        /// Bytes requested.
        requested: u64,
        /// Live bytes before the request.
        live: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Operand shapes do not match the operator's contract.
    Shape(String),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::OutOfMemory {
                device,
                requested,
                live,
                capacity,
            } => write!(
                f,
                "out of memory on {device}: requested {requested} with {live} live of {capacity}"
            ),
            OpError::Shape(m) => write!(f, "shape error: {m}"),
        }
    }
}

impl std::error::Error for OpError {}

pub(crate) struct State {
    pub device: Device,
    pub config: DeviceConfig,
    pub counters: PerfCounters,
    pub grad_mode: bool,
    pub tape: Vec<ops::Entry>,
    pub next_id: usize,
}

/// An eager-framework session: owns the device model, the counters, and
/// (when gradients are enabled) the autograd tape.
pub struct Session {
    pub(crate) state: Rc<RefCell<State>>,
}

/// A framework tensor handle (cheap to clone; value is immutable).
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<TensorInner>,
}

pub(crate) struct TensorInner {
    pub id: usize,
    pub val: TensorVal,
    state: Weak<RefCell<State>>,
}

impl Drop for TensorInner {
    fn drop(&mut self) {
        if let Some(state) = self.state.upgrade() {
            let mut st = state.borrow_mut();
            let dev = st.device.to_string();
            st.counters.free(&dev, self.val.size_bytes() as u64);
        }
    }
}

impl Tensor {
    /// The tensor's value.
    pub fn val(&self) -> &TensorVal {
        &self.inner.val
    }

    /// Stable id within the session (used to look up gradients).
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Shape accessor.
    pub fn shape(&self) -> &[usize] {
        self.inner.val.shape()
    }
}

impl Session {
    /// A CPU session with the default device model.
    pub fn cpu() -> Session {
        Session::new(Device::Cpu, DeviceConfig::default())
    }

    /// A (simulated) GPU session with the default device model.
    pub fn gpu() -> Session {
        Session::new(Device::Gpu, DeviceConfig::default())
    }

    /// A session with an explicit device model.
    pub fn new(device: Device, config: DeviceConfig) -> Session {
        Session {
            state: Rc::new(RefCell::new(State {
                device,
                config,
                counters: PerfCounters::default(),
                grad_mode: false,
                tape: Vec::new(),
                next_id: 0,
            })),
        }
    }

    /// Enable gradient recording: every subsequent operator saves what its
    /// backward needs, and all intermediates stay live until
    /// [`Session::backward`] (the baseline's memory behaviour).
    pub fn set_grad_mode(&self, on: bool) {
        self.state.borrow_mut().grad_mode = on;
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> PerfCounters {
        self.state.borrow().counters.clone()
    }

    /// The session's device.
    pub fn device(&self) -> Device {
        self.state.borrow().device
    }

    /// Wrap an input value as a framework tensor (counted toward footprint).
    ///
    /// # Errors
    ///
    /// [`OpError::OutOfMemory`] if the allocation exceeds device capacity.
    pub fn tensor(&self, val: TensorVal) -> Result<Tensor, OpError> {
        self.alloc(val)
    }

    pub(crate) fn alloc(&self, val: TensorVal) -> Result<Tensor, OpError> {
        let mut st = self.state.borrow_mut();
        let device = st.device;
        let bytes = val.size_bytes() as u64;
        let dev = device.to_string();
        let live = *st.counters.live_bytes.get(&dev).unwrap_or(&0);
        let capacity = st.config.capacity(device) as u64;
        if live + bytes > capacity {
            return Err(OpError::OutOfMemory {
                device,
                requested: bytes,
                live,
                capacity,
            });
        }
        st.counters.alloc(&dev, bytes);
        let id = st.next_id;
        st.next_id += 1;
        drop(st);
        Ok(Tensor {
            inner: Rc::new(TensorInner {
                id,
                val,
                state: Rc::downgrade(&self.state),
            }),
        })
    }

    /// Charge one operator invocation: `io_elems` f32 elements streamed
    /// through DRAM, `flops` floating-point operations, one kernel launch on
    /// GPU sessions.
    pub(crate) fn charge(&self, io_elems: usize, flops: usize) {
        let mut st = self.state.borrow_mut();
        let bytes = (io_elems * 4) as u64;
        st.counters.heap_bytes += bytes;
        // Operator kernels stream whole tensors: every byte traverses the L2
        // and misses to DRAM (no producer-consumer reuse across operators).
        st.counters.l2_bytes += bytes;
        st.counters.dram_bytes += bytes;
        st.counters.flops += flops as u64;
        let width = match st.device {
            Device::Cpu => st.config.cpu_threads as f64,
            Device::Gpu => (st.config.gpu_sms * st.config.gpu_threads_per_block) as f64,
        };
        let mut cycles = flops as f64 * st.config.cost_op / width
            + bytes as f64 / 64.0 * st.config.cost_dram / 4.0;
        if st.device == Device::Gpu {
            st.counters.kernel_launches += 1;
            cycles += st.config.cost_kernel_launch;
        }
        st.counters.modeled_cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_tracks_live_tensors() {
        let s = Session::cpu();
        let a = s.tensor(TensorVal::zeros(ft_ir::DataType::F32, &[256])).unwrap();
        assert_eq!(s.counters().live_bytes["cpu"], 1024);
        drop(a);
        assert_eq!(s.counters().live_bytes["cpu"], 0);
        assert_eq!(s.counters().peak_bytes["cpu"], 1024);
    }

    #[test]
    fn oom_on_tiny_capacity() {
        let cfg = DeviceConfig {
            gpu_mem_capacity: 512,
            ..Default::default()
        };
        let s = Session::new(Device::Gpu, cfg);
        let r = s.tensor(TensorVal::zeros(ft_ir::DataType::F32, &[1024]));
        assert!(matches!(r, Err(OpError::OutOfMemory { .. })));
    }

    #[test]
    fn gpu_ops_count_kernels() {
        let s = Session::gpu();
        s.charge(100, 100);
        s.charge(100, 100);
        assert_eq!(s.counters().kernel_launches, 2);
        let c = Session::cpu();
        c.charge(100, 100);
        assert_eq!(c.counters().kernel_launches, 0);
    }
}
