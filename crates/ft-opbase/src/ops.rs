//! The operator set (forward) with autograd-tape recording.
//!
//! Shapes follow the workloads' needs: generic elementwise/reduction/matmul
//! operators plus the "rearrangement" operators irregular programs force on
//! operator-based frameworks (`index_select`, `cat`, `unfold_window`, …) and
//! DGL-style segment operators for graphs.

use crate::{OpError, Session, Tensor};
use ft_ir::DataType;
use ft_runtime::TensorVal;

/// A recorded operator application (for the backward pass).
pub struct Entry {
    /// Which operator.
    pub op: Op,
    /// Input tensors (held live by the tape — the baseline's footprint).
    pub inputs: Vec<Tensor>,
    /// The produced output (also held live).
    pub output: Tensor,
}

/// Operator kinds with the attributes backward needs.
#[derive(Debug, Clone)]
pub enum Op {
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise exponential.
    Exp,
    /// Elementwise ReLU.
    Relu,
    /// Elementwise logistic sigmoid.
    Sigmoid,
    /// Multiply by a constant.
    Scale(f64),
    /// `mat[p, f] + vec[f]` (broadcast over rows).
    AddRow,
    /// `mat[p, f] + vec[p]` (broadcast over columns).
    AddCol,
    /// Sum over one dimension.
    SumDim(usize),
    /// Softmax along one dimension (output saved).
    SoftmaxDim(usize),
    /// Matrix multiplication with the given dimensions.
    Matmul {
        /// Rows of A.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of B.
        n: usize,
    },
    /// 2-D transpose.
    Transpose2d,
    /// Shape change (element order preserved).
    Reshape(Vec<usize>),
    /// Row gather by an index tensor.
    IndexSelect,
    /// Slice along a dimension.
    Slice {
        /// Dimension.
        dim: usize,
        /// Start (inclusive).
        start: usize,
        /// End (exclusive).
        end: usize,
    },
    /// Concatenation along a dimension (input sizes recorded for backward).
    Cat {
        /// Dimension.
        dim: usize,
        /// Extent of each input along `dim`.
        sizes: Vec<usize>,
    },
    /// Longformer window materialization: `K[n, f] -> [n, 2w+1, f]`.
    UnfoldWindow {
        /// Window half-width.
        w: usize,
    },
    /// `dot[n, l] = Σ_f Q[n, f] · Kwin[n, l, f]`.
    BmmQk,
    /// `y[n, f] = Σ_l attn[n, l] · Vwin[n, l, f]`.
    BmmAv,
    /// Sum of all elements to a scalar.
    SumAll,
    /// Gradient-free operators (graph gathers/segments; GAT forward only).
    NoGrad,
}

fn f32s(t: &Tensor) -> Vec<f64> {
    t.val().to_f64_vec()
}

fn out_tensor(shape: &[usize], data: Vec<f64>) -> TensorVal {
    let mut t = TensorVal::zeros(DataType::F32, shape);
    for (i, v) in data.into_iter().enumerate() {
        t.set_flat(i, ft_runtime::Scalar::Float(v));
    }
    t
}

impl Session {
    fn record(&self, op: Op, inputs: &[&Tensor], output: &Tensor) {
        let mut st = self.state.borrow_mut();
        if st.grad_mode {
            st.tape.push(Entry {
                op,
                inputs: inputs.iter().map(|t| (*t).clone()).collect(),
                output: output.clone(),
            });
        }
    }

    fn binary_ew(
        &self,
        op: Op,
        a: &Tensor,
        b: &Tensor,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Tensor, OpError> {
        if a.shape() != b.shape() {
            return Err(OpError::Shape(format!(
                "elementwise operands differ: {:?} vs {:?}",
                a.shape(),
                b.shape()
            )));
        }
        let (va, vb) = (f32s(a), f32s(b));
        let data: Vec<f64> = va.iter().zip(&vb).map(|(x, y)| f(*x, *y)).collect();
        let n = data.len();
        self.charge(3 * n, n);
        let out = self.alloc(out_tensor(a.shape(), data))?;
        self.record(op, &[a, b], &out);
        Ok(out)
    }

    fn unary_ew(&self, op: Op, a: &Tensor, f: impl Fn(f64) -> f64) -> Result<Tensor, OpError> {
        let data: Vec<f64> = f32s(a).into_iter().map(f).collect();
        let n = data.len();
        self.charge(2 * n, n);
        let out = self.alloc(out_tensor(a.shape(), data))?;
        self.record(op, &[a], &out);
        Ok(out)
    }

    /// Elementwise `a + b`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn add(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
        self.binary_ew(Op::Add, a, b, |x, y| x + y)
    }

    /// Elementwise `a - b`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn sub(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
        self.binary_ew(Op::Sub, a, b, |x, y| x - y)
    }

    /// Elementwise `a * b`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn mul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
        self.binary_ew(Op::Mul, a, b, |x, y| x * y)
    }

    /// Elementwise `a / b`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn div(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
        self.binary_ew(Op::Div, a, b, |x, y| x / y)
    }

    /// Elementwise `|a|`.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn abs(&self, a: &Tensor) -> Result<Tensor, OpError> {
        self.unary_ew(Op::Abs, a, f64::abs)
    }

    /// Elementwise `exp(a)`.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn exp(&self, a: &Tensor) -> Result<Tensor, OpError> {
        self.unary_ew(Op::Exp, a, f64::exp)
    }

    /// Elementwise `max(a, 0)`.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn relu(&self, a: &Tensor) -> Result<Tensor, OpError> {
        self.unary_ew(Op::Relu, a, |x| x.max(0.0))
    }

    /// Elementwise sigmoid.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn sigmoid(&self, a: &Tensor) -> Result<Tensor, OpError> {
        self.unary_ew(Op::Sigmoid, a, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// `a * c` for a constant.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn scale(&self, a: &Tensor, c: f64) -> Result<Tensor, OpError> {
        self.unary_ew(Op::Scale(c), a, |x| x * c)
    }

    /// `mat[p, f] + vec[f]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn add_row(&self, mat: &Tensor, vec: &Tensor) -> Result<Tensor, OpError> {
        let (p, f) = mat2(mat)?;
        if vec.shape() != [f] {
            return Err(OpError::Shape("add_row vector length".to_string()));
        }
        let (vm, vv) = (f32s(mat), f32s(vec));
        let data: Vec<f64> = (0..p * f).map(|i| vm[i] + vv[i % f]).collect();
        self.charge(2 * p * f + f, p * f);
        let out = self.alloc(out_tensor(&[p, f], data))?;
        self.record(Op::AddRow, &[mat, vec], &out);
        Ok(out)
    }

    /// `mat[p, f] + vec[p]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn add_col(&self, mat: &Tensor, vec: &Tensor) -> Result<Tensor, OpError> {
        let (p, f) = mat2(mat)?;
        if vec.shape() != [p] {
            return Err(OpError::Shape("add_col vector length".to_string()));
        }
        let (vm, vv) = (f32s(mat), f32s(vec));
        let data: Vec<f64> = (0..p * f).map(|i| vm[i] + vv[i / f]).collect();
        self.charge(2 * p * f + p, p * f);
        let out = self.alloc(out_tensor(&[p, f], data))?;
        self.record(Op::AddCol, &[mat, vec], &out);
        Ok(out)
    }

    /// Sum over dimension `dim`.
    ///
    /// # Errors
    ///
    /// Bad dimension or out-of-memory.
    pub fn sum_dim(&self, a: &Tensor, dim: usize) -> Result<Tensor, OpError> {
        let shape = a.shape().to_vec();
        if dim >= shape.len() {
            return Err(OpError::Shape(format!("sum_dim {dim} of rank {}", shape.len())));
        }
        let (outer, d, inner) = split3(&shape, dim);
        let v = f32s(a);
        let mut data = vec![0.0f64; outer * inner];
        for o in 0..outer {
            for j in 0..d {
                for i in 0..inner {
                    data[o * inner + i] += v[(o * d + j) * inner + i];
                }
            }
        }
        let mut out_shape = shape.clone();
        out_shape.remove(dim);
        let n = v.len();
        self.charge(n + data.len(), n);
        let out = self.alloc(out_tensor(&out_shape, data))?;
        self.record(Op::SumDim(dim), &[a], &out);
        Ok(out)
    }

    /// Softmax along dimension `dim` (numerically stabilized).
    ///
    /// # Errors
    ///
    /// Bad dimension or out-of-memory.
    pub fn softmax_dim(&self, a: &Tensor, dim: usize) -> Result<Tensor, OpError> {
        let shape = a.shape().to_vec();
        if dim >= shape.len() {
            return Err(OpError::Shape("softmax dim".to_string()));
        }
        let (outer, d, inner) = split3(&shape, dim);
        let v = f32s(a);
        let mut data = vec![0.0f64; v.len()];
        for o in 0..outer {
            for i in 0..inner {
                let at = |j: usize| (o * d + j) * inner + i;
                let m = (0..d).map(|j| v[at(j)]).fold(f64::NEG_INFINITY, f64::max);
                let den: f64 = (0..d).map(|j| (v[at(j)] - m).exp()).sum();
                for j in 0..d {
                    data[at(j)] = (v[at(j)] - m).exp() / den;
                }
            }
        }
        let n = v.len();
        self.charge(2 * n, 5 * n);
        let out = self.alloc(out_tensor(&shape, data))?;
        self.record(Op::SoftmaxDim(dim), &[a], &out);
        Ok(out)
    }

    /// `a[m, k] @ b[k, n]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
        let (m, k) = mat2(a)?;
        let (k2, n) = mat2(b)?;
        if k != k2 {
            return Err(OpError::Shape(format!("matmul inner dims: {k} vs {k2}")));
        }
        let (va, vb) = (f32s(a), f32s(b));
        let mut data = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                let x = va[i * k + p];
                for j in 0..n {
                    data[i * n + j] += x * vb[p * n + j];
                }
            }
        }
        self.charge(m * k + k * n + m * n, 2 * m * k * n);
        let out = self.alloc(out_tensor(&[m, n], data))?;
        self.record(Op::Matmul { m, k, n }, &[a, b], &out);
        Ok(out)
    }

    /// 2-D transpose.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn transpose2d(&self, a: &Tensor) -> Result<Tensor, OpError> {
        let (m, n) = mat2(a)?;
        let v = f32s(a);
        let mut data = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = v[i * n + j];
            }
        }
        self.charge(2 * m * n, 0);
        let out = self.alloc(out_tensor(&[n, m], data))?;
        self.record(Op::Transpose2d, &[a], &out);
        Ok(out)
    }

    /// Reshape (same element count).
    ///
    /// # Errors
    ///
    /// Element-count mismatch or out-of-memory.
    pub fn reshape(&self, a: &Tensor, shape: &[usize]) -> Result<Tensor, OpError> {
        if shape.iter().product::<usize>() != a.val().numel() {
            return Err(OpError::Shape("reshape element count".to_string()));
        }
        let data = f32s(a);
        let n = data.len();
        // Reshape is a data-movement operator in an eager framework.
        self.charge(2 * n, 0);
        let out = self.alloc(out_tensor(shape, data))?;
        self.record(Op::Reshape(a.shape().to_vec()), &[a], &out);
        Ok(out)
    }

    /// Gather rows of `a` (dim 0) by integer indices.
    ///
    /// # Errors
    ///
    /// Index out of range or out-of-memory.
    pub fn index_select(&self, a: &Tensor, idx: &Tensor) -> Result<Tensor, OpError> {
        let shape = a.shape().to_vec();
        let rows = shape[0];
        let row_elems: usize = shape[1..].iter().product::<usize>().max(1);
        let v = f32s(a);
        let indices = f32s(idx);
        let m = indices.len();
        let mut data = vec![0.0f64; m * row_elems];
        for (r, ix) in indices.iter().enumerate() {
            let src = *ix as usize;
            if src >= rows {
                return Err(OpError::Shape(format!(
                    "index_select: row {src} out of {rows}"
                )));
            }
            data[r * row_elems..(r + 1) * row_elems]
                .copy_from_slice(&v[src * row_elems..(src + 1) * row_elems]);
        }
        let mut out_shape = shape.clone();
        out_shape[0] = m;
        self.charge(m + 2 * m * row_elems, 0);
        let out = self.alloc(out_tensor(&out_shape, data))?;
        self.record(Op::IndexSelect, &[a, idx], &out);
        Ok(out)
    }

    /// Slice `[start, end)` along `dim`.
    ///
    /// # Errors
    ///
    /// Bad range or out-of-memory.
    pub fn slice(&self, a: &Tensor, dim: usize, start: usize, end: usize) -> Result<Tensor, OpError> {
        let shape = a.shape().to_vec();
        if dim >= shape.len() || end > shape[dim] || start >= end {
            return Err(OpError::Shape("slice range".to_string()));
        }
        let (outer, d, inner) = split3(&shape, dim);
        let v = f32s(a);
        let nd = end - start;
        let mut data = vec![0.0f64; outer * nd * inner];
        for o in 0..outer {
            for j in 0..nd {
                for i in 0..inner {
                    data[(o * nd + j) * inner + i] = v[(o * d + j + start) * inner + i];
                }
            }
        }
        let mut out_shape = shape.clone();
        out_shape[dim] = nd;
        self.charge(2 * data.len(), 0);
        let out = self.alloc(out_tensor(&out_shape, data))?;
        self.record(Op::Slice { dim, start, end }, &[a], &out);
        Ok(out)
    }

    /// Concatenate along `dim`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn cat(&self, parts: &[&Tensor], dim: usize) -> Result<Tensor, OpError> {
        if parts.is_empty() {
            return Err(OpError::Shape("cat of nothing".to_string()));
        }
        let base = parts[0].shape().to_vec();
        let mut sizes = Vec::new();
        let mut total = 0usize;
        for p in parts {
            let s = p.shape();
            if s.len() != base.len()
                || s.iter()
                    .zip(&base)
                    .enumerate()
                    .any(|(d, (x, y))| d != dim && x != y)
            {
                return Err(OpError::Shape("cat shapes".to_string()));
            }
            sizes.push(s[dim]);
            total += s[dim];
        }
        let (outer, _, inner) = split3(&base, dim);
        let mut out_shape = base.clone();
        out_shape[dim] = total;
        let mut data = vec![0.0f64; outer * total * inner];
        let mut off = 0usize;
        for p in parts {
            let d = p.shape()[dim];
            let v = f32s(p);
            for o in 0..outer {
                for j in 0..d {
                    for i in 0..inner {
                        data[(o * total + off + j) * inner + i] = v[(o * d + j) * inner + i];
                    }
                }
            }
            off += d;
        }
        self.charge(2 * data.len(), 0);
        let out = self.alloc(out_tensor(&out_shape, data))?;
        let refs: Vec<&Tensor> = parts.to_vec();
        self.record(Op::Cat { dim, sizes }, &refs, &out);
        Ok(out)
    }

    /// Longformer window materialization: `K[n, f] -> Kwin[n, 2w+1, f]`,
    /// zero-padded at the boundaries. This is the paper's Fig. 1(b): the
    /// feature matrix is copied window-size-fold.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn unfold_window(&self, k: &Tensor, w: usize) -> Result<Tensor, OpError> {
        let (n, f) = mat2(k)?;
        let l = 2 * w + 1;
        let v = f32s(k);
        let mut data = vec![0.0f64; n * l * f];
        for j in 0..n {
            for (kk, dk) in (-(w as i64)..=(w as i64)).enumerate() {
                let src = j as i64 + dk;
                if src < 0 || src >= n as i64 {
                    continue;
                }
                for p in 0..f {
                    data[(j * l + kk) * f + p] = v[src as usize * f + p];
                }
            }
        }
        self.charge(n * f + n * l * f, 0);
        let out = self.alloc(out_tensor(&[n, l, f], data))?;
        self.record(Op::UnfoldWindow { w }, &[k], &out);
        Ok(out)
    }

    /// `dot[n, l] = Σ_f Q[n, f] · Kwin[n, l, f]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn bmm_qk(&self, q: &Tensor, kwin: &Tensor) -> Result<Tensor, OpError> {
        let (n, f) = mat2(q)?;
        let [n2, l, f2] = *kwin.shape() else {
            return Err(OpError::Shape("bmm_qk expects [n, l, f]".to_string()));
        };
        if n != n2 || f != f2 {
            return Err(OpError::Shape("bmm_qk shapes".to_string()));
        }
        let (vq, vk) = (f32s(q), f32s(kwin));
        let mut data = vec![0.0f64; n * l];
        for j in 0..n {
            for kk in 0..l {
                let mut acc = 0.0;
                for p in 0..f {
                    acc += vq[j * f + p] * vk[(j * l + kk) * f + p];
                }
                data[j * l + kk] = acc;
            }
        }
        self.charge(n * f + n * l * f + n * l, 2 * n * l * f);
        let out = self.alloc(out_tensor(&[n, l], data))?;
        self.record(Op::BmmQk, &[q, kwin], &out);
        Ok(out)
    }

    /// `y[n, f] = Σ_l attn[n, l] · Vwin[n, l, f]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn bmm_av(&self, attn: &Tensor, vwin: &Tensor) -> Result<Tensor, OpError> {
        let (n, l) = mat2(attn)?;
        let [n2, l2, f] = *vwin.shape() else {
            return Err(OpError::Shape("bmm_av expects [n, l, f]".to_string()));
        };
        if n != n2 || l != l2 {
            return Err(OpError::Shape("bmm_av shapes".to_string()));
        }
        let (va, vv) = (f32s(attn), f32s(vwin));
        let mut data = vec![0.0f64; n * f];
        for j in 0..n {
            for kk in 0..l {
                let a = va[j * l + kk];
                for p in 0..f {
                    data[j * f + p] += a * vv[(j * l + kk) * f + p];
                }
            }
        }
        self.charge(n * l + n * l * f + n * f, 2 * n * l * f);
        let out = self.alloc(out_tensor(&[n, f], data))?;
        self.record(Op::BmmAv, &[attn, vwin], &out);
        Ok(out)
    }

    /// Sum all elements to a 0-D tensor.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn sum_all(&self, a: &Tensor) -> Result<Tensor, OpError> {
        let v = f32s(a);
        let s: f64 = v.iter().sum();
        self.charge(v.len() + 1, v.len());
        let out = self.alloc(out_tensor(&[], vec![s]))?;
        self.record(Op::SumAll, &[a], &out);
        Ok(out)
    }

    // ---- DGL-style graph operators (forward only, as in the paper) ----

    /// Gather rows of `h[n, f]` by edge targets `idx[e]`.
    ///
    /// # Errors
    ///
    /// Bad index or out-of-memory.
    pub fn gather_rows(&self, h: &Tensor, idx: &Tensor) -> Result<Tensor, OpError> {
        self.index_select(h, idx)
    }

    /// Per-segment maximum over CSR segments: `vals[e], rowptr[n+1] -> [n]`.
    ///
    /// # Errors
    ///
    /// Bad row pointers or out-of-memory.
    pub fn segment_max(&self, vals: &Tensor, rowptr: &Tensor) -> Result<Tensor, OpError> {
        self.segment_reduce(vals, rowptr, f64::NEG_INFINITY, f64::max)
    }

    /// Per-segment sum over CSR segments.
    ///
    /// # Errors
    ///
    /// Bad row pointers or out-of-memory.
    pub fn segment_sum(&self, vals: &Tensor, rowptr: &Tensor) -> Result<Tensor, OpError> {
        self.segment_reduce(vals, rowptr, 0.0, |a, b| a + b)
    }

    #[allow(clippy::needless_range_loop)] // CSR walks index by edge id
    fn segment_reduce(
        &self,
        vals: &Tensor,
        rowptr: &Tensor,
        init: f64,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Tensor, OpError> {
        let v = f32s(vals);
        let rp = f32s(rowptr);
        let n = rp.len() - 1;
        let mut data = vec![init; n];
        for i in 0..n {
            for e in rp[i] as usize..rp[i + 1] as usize {
                data[i] = f(data[i], v[e]);
            }
        }
        self.charge(v.len() + n, v.len());
        let out = self.alloc(out_tensor(&[n], data))?;
        self.record(Op::NoGrad, &[vals, rowptr], &out);
        Ok(out)
    }

    /// Expand a per-node value to edges: `x[n], rowptr -> [e]`.
    ///
    /// # Errors
    ///
    /// Bad row pointers or out-of-memory.
    #[allow(clippy::needless_range_loop)] // CSR walks index by edge id
    pub fn expand_by_segment(&self, x: &Tensor, rowptr: &Tensor, e: usize) -> Result<Tensor, OpError> {
        let v = f32s(x);
        let rp = f32s(rowptr);
        let n = rp.len() - 1;
        let mut data = vec![0.0f64; e];
        for i in 0..n {
            for j in rp[i] as usize..rp[i + 1] as usize {
                data[j] = v[i];
            }
        }
        self.charge(v.len() + e, 0);
        let out = self.alloc(out_tensor(&[e], data))?;
        self.record(Op::NoGrad, &[x, rowptr], &out);
        Ok(out)
    }

    /// Weighted per-segment feature sum:
    /// `y[i, f] = Σ_{e in seg i} w[e] · feats[e, f]`.
    ///
    /// # Errors
    ///
    /// Shape mismatch or out-of-memory.
    pub fn segment_weighted_sum(
        &self,
        w: &Tensor,
        feats: &Tensor,
        rowptr: &Tensor,
    ) -> Result<Tensor, OpError> {
        let vw = f32s(w);
        let vf = f32s(feats);
        let rp = f32s(rowptr);
        let n = rp.len() - 1;
        let f = feats.shape()[1];
        let mut data = vec![0.0f64; n * f];
        for i in 0..n {
            for e in rp[i] as usize..rp[i + 1] as usize {
                for p in 0..f {
                    data[i * f + p] += vw[e] * vf[e * f + p];
                }
            }
        }
        self.charge(vw.len() + vf.len() + n * f, 2 * vf.len());
        let out = self.alloc(out_tensor(&[n, f], data))?;
        self.record(Op::NoGrad, &[w, feats, rowptr], &out);
        Ok(out)
    }
}

fn mat2(t: &Tensor) -> Result<(usize, usize), OpError> {
    match *t.shape() {
        [a, b] => Ok((a, b)),
        ref s => Err(OpError::Shape(format!("expected a matrix, got {s:?}"))),
    }
}

/// Split a shape at `dim` into (outer, dim extent, inner) products.
pub(crate) fn split3(shape: &[usize], dim: usize) -> (usize, usize, usize) {
    let outer: usize = shape[..dim].iter().product::<usize>().max(1);
    let inner: usize = shape[dim + 1..].iter().product::<usize>().max(1);
    (outer, shape[dim], inner)
}
