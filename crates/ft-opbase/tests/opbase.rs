//! Forward-correctness and gradient checks for the operator baseline.

use ft_opbase::{OpError, Session, Tensor};
use ft_runtime::TensorVal;

fn t(s: &Session, shape: &[usize], seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as f64 / u64::MAX as f64) * 2.0 - 1.0) as f32
        })
        .collect();
    s.tensor(TensorVal::from_f32(shape, data)).unwrap()
}

#[test]
fn elementwise_chain() {
    let s = Session::cpu();
    let a = t(&s, &[8], 1);
    let b = t(&s, &[8], 2);
    let c = s.add(&a, &b).unwrap();
    let d = s.mul(&c, &a).unwrap();
    let e = s.relu(&d).unwrap();
    for i in 0..8 {
        let expect = ((a.val().get_flat(i).as_f64() + b.val().get_flat(i).as_f64())
            * a.val().get_flat(i).as_f64())
        .max(0.0);
        assert!((e.val().get_flat(i).as_f64() - expect).abs() < 1e-5);
    }
}

#[test]
fn softmax_rows_sum_to_one() {
    let s = Session::cpu();
    let a = t(&s, &[3, 5], 3);
    let y = s.softmax_dim(&a, 1).unwrap();
    for r in 0..3 {
        let sum: f64 = (0..5).map(|c| y.val().get_flat(r * 5 + c).as_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}

#[test]
fn matmul_and_transpose() {
    let s = Session::cpu();
    let a = t(&s, &[3, 4], 4);
    let b = t(&s, &[4, 2], 5);
    let c = s.matmul(&a, &b).unwrap();
    let reference =
        ft_runtime::libkernel::matmul_reference(a.val(), b.val(), 3, 4, 2);
    assert!(c.val().allclose(&reference, 1e-4));
    let at = s.transpose2d(&a).unwrap();
    assert_eq!(at.shape(), &[4, 3]);
    assert_eq!(
        at.val().get_flat(2 * 3 + 1).as_f64(),
        a.val().get_flat(4 + 2).as_f64()
    );
}

#[test]
fn subdivnet_rearrangement_ops() {
    // Fig. 2's step structure: index_select -> reshape -> cat(slice) -> sub
    // -> abs -> sum_dim.
    let s = Session::cpu();
    let e = t(&s, &[6, 4], 7); // features
    let adj = s
        .tensor(TensorVal::from_i32(
            &[6, 3],
            vec![1, 2, 3, 0, 2, 4, 0, 1, 5, 0, 4, 5, 1, 3, 5, 2, 3, 4],
        ))
        .unwrap();
    let flat = s.reshape(&adj, &[18]).unwrap();
    let adj_feat3 = s.index_select(&e, &flat).unwrap();
    let adj_feat = s.reshape(&adj_feat3, &[6, 3, 4]).unwrap();
    let tail = s.slice(&adj_feat, 1, 1, 3).unwrap();
    let head = s.slice(&adj_feat, 1, 0, 1).unwrap();
    let reordered = s.cat(&[&tail, &head], 1).unwrap();
    let diff = s.sub(&adj_feat, &reordered).unwrap();
    let absd = s.abs(&diff).unwrap();
    let y = s.sum_dim(&absd, 1).unwrap();
    assert_eq!(y.shape(), &[6, 4]);
    // Spot-check one element against the direct fine-grained formula.
    let ev = e.val();
    let face = 2usize;
    let neigh = [0usize, 1, 5];
    let mut expect = 0.0;
    for j in 0..3 {
        let a = ev.get_flat(neigh[j] * 4).as_f64();
        let b = ev.get_flat(neigh[(j + 1) % 3] * 4).as_f64();
        expect += (a - b).abs();
    }
    assert!((y.val().get_flat(face * 4).as_f64() - expect).abs() < 1e-5);
}

#[test]
fn unfold_window_zero_pads() {
    let s = Session::cpu();
    let k = s
        .tensor(TensorVal::from_f32(&[3, 2], vec![1., 2., 3., 4., 5., 6.]))
        .unwrap();
    let win = s.unfold_window(&k, 1).unwrap();
    assert_eq!(win.shape(), &[3, 3, 2]);
    // Row 0, offset -1 is out of range: zeros.
    assert_eq!(win.val().get_flat(0).as_f64(), 0.0);
    // Row 0, offset 0 is K[0].
    assert_eq!(win.val().get_flat(2).as_f64(), 1.0);
    // Row 0, offset +1 is K[1].
    assert_eq!(win.val().get_flat(4).as_f64(), 3.0);
}

/// Central-difference gradcheck through an op chain built by `f`.
fn opcheck(
    shapes: &[&[usize]],
    f: impl Fn(&Session, &[Tensor]) -> Tensor,
    tol: f64,
) {
    // Baseline inputs.
    let mk = |vals: &[Vec<f32>]| -> (Session, Vec<Tensor>) {
        let s = Session::cpu();
        let ts: Vec<Tensor> = vals
            .iter()
            .zip(shapes)
            .map(|(v, sh)| s.tensor(TensorVal::from_f32(sh, v.clone())).unwrap())
            .collect();
        (s, ts)
    };
    let base: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(k, sh)| {
            let n: usize = sh.iter().product();
            (0..n).map(|i| ((i + k * 7) as f32 * 0.37).sin() * 0.8).collect()
        })
        .collect();
    // Analytic gradients.
    let (s, ts) = mk(&base);
    s.set_grad_mode(true);
    let out = f(&s, &ts);
    let loss = s.sum_all(&out).unwrap();
    let grads = s
        .backward(&loss, TensorVal::from_f32(&[], vec![1.0]))
        .unwrap();
    // Finite differences.
    let eps = 1e-3f32;
    for (k, sh) in shapes.iter().enumerate() {
        let n: usize = sh.iter().product();
        let analytic = grads
            .get(&ts[k].id())
            .unwrap_or_else(|| panic!("no grad for input {k}"));
        for i in 0..n {
            let mut plus = base.clone();
            plus[k][i] += eps;
            let (sp, tp) = mk(&plus);
            let op = f(&sp, &tp);
            let lp: f64 = op.val().to_f64_vec().iter().sum();
            let mut minus = base.clone();
            minus[k][i] -= eps;
            let (sm, tm) = mk(&minus);
            let om = f(&sm, &tm);
            let lm: f64 = om.val().to_f64_vec().iter().sum();
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = analytic.get_flat(i).as_f64();
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs()),
                "input {k} elem {i}: analytic {an}, fd {fd}"
            );
        }
    }
}

#[test]
fn gradcheck_elementwise_and_reduce() {
    opcheck(&[&[6], &[6]], |s, ts| {
        let c = s.mul(&ts[0], &ts[1]).unwrap();
        let d = s.sigmoid(&c).unwrap();
        let e = s.exp(&d).unwrap();
        s.scale(&e, 0.5).unwrap()
    }, 1e-2);
}

#[test]
fn gradcheck_matmul_softmax() {
    opcheck(&[&[3, 4], &[4, 2]], |s, ts| {
        let c = s.matmul(&ts[0], &ts[1]).unwrap();
        s.softmax_dim(&c, 1).unwrap()
    }, 1e-2);
}

#[test]
fn gradcheck_subdivnet_chain() {
    opcheck(&[&[4, 3]], |s, ts| {
        let adj = s
            .tensor(TensorVal::from_i32(
                &[4, 3],
                vec![1, 2, 3, 0, 2, 3, 0, 1, 3, 0, 1, 2],
            ))
            .unwrap();
        let flat = s.reshape(&adj, &[12]).unwrap();
        let gathered = s.index_select(&ts[0], &flat).unwrap();
        let af = s.reshape(&gathered, &[4, 3, 3]).unwrap();
        let tail = s.slice(&af, 1, 1, 3).unwrap();
        let head = s.slice(&af, 1, 0, 1).unwrap();
        let re = s.cat(&[&tail, &head], 1).unwrap();
        let d = s.sub(&af, &re).unwrap();
        // |x| is non-smooth; square instead for a clean FD check.
        let sq = s.mul(&d, &d).unwrap();
        s.sum_dim(&sq, 1).unwrap()
    }, 1e-2);
}

#[test]
fn gradcheck_longformer_chain() {
    opcheck(&[&[5, 3], &[5, 3], &[5, 3]], |s, ts| {
        let kwin = s.unfold_window(&ts[1], 1).unwrap();
        let vwin = s.unfold_window(&ts[2], 1).unwrap();
        let dot = s.bmm_qk(&ts[0], &kwin).unwrap();
        let attn = s.softmax_dim(&dot, 1).unwrap();
        s.bmm_av(&attn, &vwin).unwrap()
    }, 1e-2);
}

#[test]
fn grad_mode_retains_intermediates() {
    // With gradients on, intermediates stay live (larger peak) — the
    // baseline behaviour behind the paper's OOM columns.
    let peak = |grad: bool| -> u64 {
        let s = Session::cpu();
        s.set_grad_mode(grad);
        let a = t(&s, &[1024], 1);
        let mut x = a.clone();
        for _ in 0..8 {
            x = s.exp(&x).unwrap();
        }
        s.counters().peak_bytes["cpu"]
    };
    let without = peak(false);
    let with = peak(true);
    assert!(
        with > 2 * without,
        "grad-mode peak {with} should far exceed no-grad peak {without}"
    );
}

#[test]
fn shape_errors_are_reported() {
    let s = Session::cpu();
    let a = t(&s, &[4], 1);
    let b = t(&s, &[5], 2);
    assert!(matches!(s.add(&a, &b), Err(OpError::Shape(_))));
    let m = t(&s, &[2, 3], 3);
    assert!(matches!(s.matmul(&m, &m), Err(OpError::Shape(_))));
}

#[test]
fn segment_ops_match_direct_computation() {
    // CSR: rowptr [0,2,5], colidx [1,2, 0,1,2]; vals per edge.
    let s = Session::cpu();
    let rowptr = s.tensor(TensorVal::from_i32(&[3], vec![0, 2, 5])).unwrap();
    let vals = s
        .tensor(TensorVal::from_f32(&[5], vec![1.0, 3.0, -2.0, 5.0, 4.0]))
        .unwrap();
    let mx = s.segment_max(&vals, &rowptr).unwrap();
    assert_eq!(mx.val().to_f64_vec(), vec![3.0, 5.0]);
    let sm = s.segment_sum(&vals, &rowptr).unwrap();
    assert_eq!(sm.val().to_f64_vec(), vec![4.0, 7.0]);
    let per_node = s.tensor(TensorVal::from_f32(&[2], vec![10.0, 20.0])).unwrap();
    let exp = s.expand_by_segment(&per_node, &rowptr, 5).unwrap();
    assert_eq!(exp.val().to_f64_vec(), vec![10.0, 10.0, 20.0, 20.0, 20.0]);
    let feats = s
        .tensor(TensorVal::from_f32(&[5, 2], (0..10).map(|x| x as f32).collect()))
        .unwrap();
    let w = s
        .tensor(TensorVal::from_f32(&[5], vec![1.0, 0.5, 2.0, 0.0, 1.0]))
        .unwrap();
    let y = s.segment_weighted_sum(&w, &feats, &rowptr).unwrap();
    // node 0: 1*[0,1] + 0.5*[2,3] = [1, 2.5]; node 1: 2*[4,5] + 0 + 1*[8,9].
    assert_eq!(y.val().to_f64_vec(), vec![1.0, 2.5, 16.0, 19.0]);
}

#[test]
fn add_row_and_add_col_broadcast() {
    let s = Session::cpu();
    let m = s
        .tensor(TensorVal::from_f32(&[2, 3], vec![0.0; 6]))
        .unwrap();
    let row = s.tensor(TensorVal::from_f32(&[3], vec![1.0, 2.0, 3.0])).unwrap();
    let col = s.tensor(TensorVal::from_f32(&[2], vec![10.0, 20.0])).unwrap();
    let a = s.add_row(&m, &row).unwrap();
    assert_eq!(a.val().to_f64_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    let b = s.add_col(&a, &col).unwrap();
    assert_eq!(b.val().to_f64_vec(), vec![11.0, 12.0, 13.0, 21.0, 22.0, 23.0]);
}
