//! Dead-code elimination for locally defined tensors.

use ft_ir::mutate::mutate_stmt_walk;
use ft_ir::visit::walk_stmt;
use ft_ir::{AccessType, Func, Mutator, Stmt, StmtKind, Visitor};
use std::collections::HashSet;

/// Collect tensors that are *read* anywhere (loads, or used by a LibCall).
struct ReadSet(HashSet<String>);

impl Visitor for ReadSet {
    fn visit_expr(&mut self, e: &ft_ir::Expr) {
        if let ft_ir::Expr::Load { var, .. } = e {
            self.0.insert(var.clone());
        }
        ft_ir::visit::walk_expr(self, e);
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        if let StmtKind::LibCall { inputs, .. } = &s.kind {
            for i in inputs {
                self.0.insert(i.clone());
            }
        }
        walk_stmt(self, s);
    }
}

struct KillWrites<'a> {
    dead: &'a HashSet<String>,
}

impl Mutator for KillWrites<'_> {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = mutate_stmt_walk(self, s);
        match &s.kind {
            StmtKind::Store { var, .. } | StmtKind::ReduceTo { var, .. }
                if self.dead.contains(var) =>
            {
                s.same_id(StmtKind::Empty)
            }
            StmtKind::VarDef { name, body, .. } if self.dead.contains(name) => {
                // Keep the body (already stripped of writes to `name`).
                s.same_id(body.kind.clone())
            }
            _ => s,
        }
    }
}

/// Remove local (`Cache`) definitions whose tensors are never read and are
/// not outputs, together with all stores/reductions into them.
///
/// One round only; [`crate::simplify()`] iterates this with control-flow
/// cleanup to a fixpoint (removing one dead tensor can make another dead).
pub fn remove_dead_defs(func: &Func) -> Func {
    let mut reads = ReadSet(HashSet::new());
    reads.visit_stmt(&func.body);
    // Output and in-out parameters are always live.
    for p in &func.params {
        if matches!(p.atype, AccessType::Output | AccessType::InOut) {
            reads.0.insert(p.name.clone());
        }
    }
    // Find local defs not in the read set.
    let mut dead: HashSet<String> = HashSet::new();
    func.body.walk(&mut |s| {
        if let StmtKind::VarDef { name, atype, .. } = &s.kind {
            if *atype == AccessType::Cache && !reads.0.contains(name) {
                dead.insert(name.clone());
            }
        }
    });
    if dead.is_empty() {
        return func.clone();
    }
    let body = KillWrites { dead: &dead }.mutate_stmt(func.body.clone());
    func.with_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::DataType;

    #[test]
    fn removes_unread_local() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [1],
                DataType::F32,
                MemType::CpuHeap,
                block([store("t", [0], 1.0f32), store("y", [0], 2.0f32)]),
            ));
        let out = remove_dead_defs(&f);
        let mut defs = 0;
        let mut stores = 0;
        out.body.walk(&mut |s| match &s.kind {
            StmtKind::VarDef { .. } => defs += 1,
            StmtKind::Store { .. } => stores += 1,
            _ => {}
        });
        assert_eq!(defs, 0);
        assert_eq!(stores, 1); // only the store to y survives (t's is Empty'd)
    }

    #[test]
    fn keeps_read_locals_and_outputs() {
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [1],
                DataType::F32,
                MemType::CpuHeap,
                block([
                    store("t", [0], 1.0f32),
                    store("y", [0], load("t", [0])),
                ]),
            ));
        let out = remove_dead_defs(&f);
        assert!(out.body.same_structure(&f.body));
    }

    #[test]
    fn chain_of_dead_defs_needs_iteration() {
        // u reads t; y never reads u: one round kills u, the next kills t.
        let f = Func::new("f")
            .param("y", [1], DataType::F32, AccessType::Output)
            .body(var_def(
                "t",
                [1],
                DataType::F32,
                MemType::CpuHeap,
                var_def(
                    "u",
                    [1],
                    DataType::F32,
                    MemType::CpuHeap,
                    block([
                        store("t", [0], 1.0f32),
                        store("u", [0], load("t", [0])),
                        store("y", [0], 3.0f32),
                    ]),
                ),
            ));
        let once = remove_dead_defs(&f);
        let twice = remove_dead_defs(&once);
        let mut defs = 0;
        twice.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::VarDef { .. }) {
                defs += 1;
            }
        });
        assert_eq!(defs, 0);
    }
}
