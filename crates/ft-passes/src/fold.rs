//! Constant folding and algebraic simplification of expressions.

use ft_ir::mutate::{mutate_expr_walk, mutate_stmt_walk};
use ft_ir::{BinaryOp, DataType, Expr, Func, Mutator, Stmt, UnaryOp};

struct Folder;

fn int2(op: BinaryOp, a: i64, b: i64) -> Option<Expr> {
    use BinaryOp::*;
    Some(match op {
        Add => Expr::IntConst(a.checked_add(b)?),
        Sub => Expr::IntConst(a.checked_sub(b)?),
        Mul => Expr::IntConst(a.checked_mul(b)?),
        // Integer division/remainder use floor semantics, keeping loop-bound
        // arithmetic monotone (documented on `BinaryOp::Div`).
        Div => Expr::IntConst(if b == 0 { return None } else { a.div_euclid(b) }),
        Mod => Expr::IntConst(if b == 0 { return None } else { a.rem_euclid(b) }),
        Min => Expr::IntConst(a.min(b)),
        Max => Expr::IntConst(a.max(b)),
        Pow => Expr::IntConst(a.checked_pow(u32::try_from(b).ok()?)?),
        Eq => Expr::BoolConst(a == b),
        Ne => Expr::BoolConst(a != b),
        Lt => Expr::BoolConst(a < b),
        Le => Expr::BoolConst(a <= b),
        Gt => Expr::BoolConst(a > b),
        Ge => Expr::BoolConst(a >= b),
        And | Or => return None,
    })
}

fn float2(op: BinaryOp, a: f64, b: f64) -> Option<Expr> {
    use BinaryOp::*;
    Some(match op {
        Add => Expr::FloatConst(a + b),
        Sub => Expr::FloatConst(a - b),
        Mul => Expr::FloatConst(a * b),
        Div => Expr::FloatConst(a / b),
        Mod => Expr::FloatConst(a.rem_euclid(b)),
        Min => Expr::FloatConst(a.min(b)),
        Max => Expr::FloatConst(a.max(b)),
        Pow => Expr::FloatConst(a.powf(b)),
        Eq => Expr::BoolConst(a == b),
        Ne => Expr::BoolConst(a != b),
        Lt => Expr::BoolConst(a < b),
        Le => Expr::BoolConst(a <= b),
        Gt => Expr::BoolConst(a > b),
        Ge => Expr::BoolConst(a >= b),
        And | Or => return None,
    })
}

fn as_float(e: &Expr) -> Option<f64> {
    match e {
        Expr::FloatConst(v) => Some(*v),
        Expr::IntConst(v) => Some(*v as f64),
        _ => None,
    }
}

fn is_int_zero(e: &Expr) -> bool {
    matches!(e, Expr::IntConst(0))
}

fn is_zero(e: &Expr) -> bool {
    is_int_zero(e) || matches!(e, Expr::FloatConst(v) if *v == 0.0)
}

fn is_one(e: &Expr) -> bool {
    matches!(e, Expr::IntConst(1)) || matches!(e, Expr::FloatConst(v) if *v == 1.0)
}

impl Mutator for Folder {
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        let e = mutate_expr_walk(self, e);
        match e {
            Expr::Binary { op, a, b } => fold_binary(op, *a, *b),
            Expr::Unary { op, a } => fold_unary(op, *a),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => match cond.as_bool() {
                Some(true) => *then,
                Some(false) => *otherwise,
                None => Expr::Select {
                    cond,
                    then,
                    otherwise,
                },
            },
            Expr::Cast { dtype, a } => fold_cast(dtype, *a),
            other => other,
        }
    }
}

fn fold_binary(op: BinaryOp, a: Expr, b: Expr) -> Expr {
    use BinaryOp::*;
    // Pure constant folding first.
    if let (Expr::IntConst(x), Expr::IntConst(y)) = (&a, &b) {
        if let Some(r) = int2(op, *x, *y) {
            return r;
        }
    }
    if let (Some(x), Some(y)) = (as_float(&a), as_float(&b)) {
        if matches!(&a, Expr::FloatConst(_)) || matches!(&b, Expr::FloatConst(_)) {
            if let Some(r) = float2(op, x, y) {
                return r;
            }
        }
    }
    // Boolean identities.
    match (op, a.as_bool(), b.as_bool()) {
        (And, Some(false), _) | (And, _, Some(false)) => return Expr::BoolConst(false),
        (And, Some(true), _) => return b,
        (And, _, Some(true)) => return a,
        (Or, Some(true), _) | (Or, _, Some(true)) => return Expr::BoolConst(true),
        (Or, Some(false), _) => return b,
        (Or, _, Some(false)) => return a,
        _ => {}
    }
    // Algebraic identities. (`x * 0 -> 0` is applied for integers only, to
    // respect NaN/Inf semantics for floats.)
    match op {
        Add if is_zero(&a) => return b,
        Add | Sub if is_zero(&b) => return a,
        Mul if is_one(&a) => return b,
        Mul | Div if is_one(&b) => return a,
        Mul if is_int_zero(&a) || is_int_zero(&b) => return Expr::IntConst(0),
        Sub if a == b && matches!(a, Expr::Var(_)) => return Expr::IntConst(0),
        _ => {}
    }
    Expr::binary(op, a, b)
}

fn fold_unary(op: UnaryOp, a: Expr) -> Expr {
    use UnaryOp::*;
    match (&op, &a) {
        (Neg, Expr::IntConst(v)) => return Expr::IntConst(-v),
        (Neg, Expr::FloatConst(v)) => return Expr::FloatConst(-v),
        (Not, Expr::BoolConst(v)) => return Expr::BoolConst(!v),
        (Abs, Expr::IntConst(v)) => return Expr::IntConst(v.abs()),
        (Abs, Expr::FloatConst(v)) => return Expr::FloatConst(v.abs()),
        (Sign, Expr::IntConst(v)) => return Expr::IntConst(v.signum()),
        (Sign, Expr::FloatConst(v)) => {
            return Expr::FloatConst(if *v > 0.0 {
                1.0
            } else if *v < 0.0 {
                -1.0
            } else {
                0.0
            })
        }
        (Sqrt, Expr::FloatConst(v)) => return Expr::FloatConst(v.sqrt()),
        (Exp, Expr::FloatConst(v)) => return Expr::FloatConst(v.exp()),
        (Ln, Expr::FloatConst(v)) => return Expr::FloatConst(v.ln()),
        (Sigmoid, Expr::FloatConst(v)) => return Expr::FloatConst(1.0 / (1.0 + (-v).exp())),
        (Tanh, Expr::FloatConst(v)) => return Expr::FloatConst(v.tanh()),
        _ => {}
    }
    // --x -> x
    if op == Neg {
        if let Expr::Unary {
            op: UnaryOp::Neg,
            a: inner,
        } = &a
        {
            return (**inner).clone();
        }
    }
    Expr::unary(op, a)
}

fn fold_cast(dtype: DataType, a: Expr) -> Expr {
    match (&a, dtype) {
        (Expr::IntConst(v), DataType::F32 | DataType::F64) => Expr::FloatConst(*v as f64),
        (Expr::IntConst(v), DataType::I32) => Expr::IntConst(*v as i32 as i64),
        (Expr::IntConst(v), DataType::I64) => Expr::IntConst(*v),
        (Expr::FloatConst(v), DataType::I32 | DataType::I64) => Expr::IntConst(*v as i64),
        (Expr::FloatConst(v), DataType::F32) => Expr::FloatConst(*v as f32 as f64),
        (Expr::FloatConst(v), DataType::F64) => Expr::FloatConst(*v),
        _ => Expr::cast(dtype, a),
    }
}

/// Constant-fold an expression to a fixpoint.
pub fn const_fold_expr(e: Expr) -> Expr {
    Folder.mutate_expr(e)
}

/// Constant-fold every expression in a statement tree.
pub fn const_fold_stmt(s: Stmt) -> Stmt {
    mutate_stmt_walk(&mut Folder, s)
}

/// Constant-fold a whole function body.
pub fn const_fold_func(f: Func) -> Func {
    let body = const_fold_stmt(f.body.clone());
    f.with_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn folds_arithmetic() {
        assert_eq!(
            const_fold_expr(Expr::IntConst(2) + Expr::IntConst(3) * Expr::IntConst(4)),
            Expr::IntConst(14)
        );
        assert_eq!(
            const_fold_expr(Expr::FloatConst(1.5) * Expr::IntConst(2)),
            Expr::FloatConst(3.0)
        );
        // Floor semantics for negative operands.
        assert_eq!(
            const_fold_expr(Expr::IntConst(-7) / Expr::IntConst(2)),
            Expr::IntConst(-4)
        );
        assert_eq!(
            const_fold_expr(Expr::IntConst(-7).rem(2)),
            Expr::IntConst(1)
        );
    }

    #[test]
    #[allow(clippy::erasing_op)] // `x * 0 -> 0` is exactly the rule under test
    fn algebraic_identities() {
        assert_eq!(const_fold_expr(var("x") + 0), var("x"));
        assert_eq!(const_fold_expr(var("x") * 1), var("x"));
        assert_eq!(const_fold_expr(var("x") * 0), Expr::IntConst(0));
        assert_eq!(const_fold_expr(var("x") - 0), var("x"));
        assert_eq!(const_fold_expr(var("x") - var("x")), Expr::IntConst(0));
        // Division by zero is never folded (runtime error surface).
        let div = var("x") / 0;
        assert_eq!(const_fold_expr(div.clone()), div);
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(
            const_fold_expr(Expr::IntConst(3).lt(5)),
            Expr::BoolConst(true)
        );
        assert_eq!(
            const_fold_expr(var("c").lt(5).and(false)),
            Expr::BoolConst(false)
        );
        assert_eq!(const_fold_expr(var("c").gt(0).or(true)), Expr::BoolConst(true));
        assert_eq!(
            const_fold_expr(Expr::BoolConst(true).not()),
            Expr::BoolConst(false)
        );
    }

    #[test]
    fn select_and_cast() {
        assert_eq!(
            const_fold_expr(Expr::select(Expr::IntConst(1).lt(2), var("a"), var("b"))),
            var("a")
        );
        assert_eq!(
            const_fold_expr(Expr::cast(DataType::F32, Expr::IntConst(3))),
            Expr::FloatConst(3.0)
        );
        assert_eq!(
            const_fold_expr(Expr::cast(DataType::I64, Expr::FloatConst(3.7))),
            Expr::IntConst(3)
        );
    }

    #[test]
    fn unary_functions() {
        assert_eq!(
            const_fold_expr(intrin::abs(Expr::IntConst(-4))),
            Expr::IntConst(4)
        );
        assert_eq!(
            const_fold_expr(intrin::sqrt(Expr::FloatConst(9.0))),
            Expr::FloatConst(3.0)
        );
        assert_eq!(const_fold_expr(-(-var("x"))), var("x"));
    }

    #[test]
    fn folds_inside_statements() {
        let s = for_(
            "i",
            0,
            Expr::IntConst(2) * 4,
            store("y", [var("i") + 0], load("x", [var("i")]) * 1.0f32),
        );
        let out = const_fold_stmt(s);
        match &out.kind {
            StmtKind::For { end, body, .. } => {
                assert_eq!(*end, Expr::IntConst(8));
                match &body.kind {
                    StmtKind::Store { indices, value, .. } => {
                        assert_eq!(indices[0], var("i"));
                        // x[i] * 1.0 stays (float one is not removed unless
                        // exactly 1.0 — it is, so it folds).
                        assert_eq!(*value, load("x", [var("i")]));
                    }
                    _ => unreachable!(),
                }
            }
            _ => unreachable!(),
        }
    }
}
