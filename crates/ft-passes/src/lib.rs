//! # ft-passes — simplification and cleanup passes
//!
//! The "further optimizations on the AST" of paper §4.3: mathematical
//! simplification, removal of redundant branches and dead code, and the
//! normalization steps (unique definition names, flattened blocks) that the
//! schedule, AD and codegen stages rely on.
//!
//! All passes are pure rewrites built on [`ft_ir::Mutator`]; [`simplify()`]
//! runs the standard pipeline to a fixpoint.

pub mod dce;
pub mod normalize;
pub mod fold;
pub mod simplify;
pub mod uniquify;

pub use dce::remove_dead_defs;
pub use normalize::{normalize_affine, remove_redundant_guards};
pub use fold::{const_fold_expr, const_fold_func, const_fold_stmt};
pub use simplify::{simplify, simplify_once, simplify_stmt, simplify_traced};
pub use uniquify::uniquify_defs;
