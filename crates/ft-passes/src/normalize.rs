//! Affine normalization and redundant-branch removal — the "simplification
//! on mathematical expressions" and "removing redundant branches" steps of
//! paper §4.3.

use ft_analysis::{cond_to_constraints, linexpr_to_expr, to_linexpr};
use ft_ir::mutate::{mutate_expr_walk, mutate_stmt_walk};
use ft_ir::{Expr, Func, Mutator, Stmt, StmtKind};
use ft_poly::{Constraint, LinExpr, Sat, System};

struct AffineNorm;

impl Mutator for AffineNorm {
    fn mutate_expr(&mut self, e: Expr) -> Expr {
        // Normalize bottom-up so nested affine fragments inside non-affine
        // expressions (e.g. subscripts of a product) also cancel.
        let e = mutate_expr_walk(self, e);
        match to_linexpr(&e) {
            // Rebuild only when normalization actually shrinks the tree, so
            // already-canonical expressions keep their shape.
            Some(l) => {
                let n = linexpr_to_expr(&l);
                if n.node_count() < e.node_count() {
                    n
                } else {
                    e
                }
            }
            None => e,
        }
    }
}

/// Normalize every affine integer expression to a canonical sum-of-terms
/// form, cancelling symbolic terms that constant folding cannot see
/// (e.g. `i.0 * 256 + i.1 - i.0 * 256` → `i.1`).
pub fn normalize_affine(s: Stmt) -> Stmt {
    AffineNorm.mutate_stmt(s)
}

struct GuardRemover {
    /// Affine domain of the enclosing loops and guards.
    domain: Vec<System>,
}

impl GuardRemover {
    fn domain_system(&self) -> System {
        let mut sys = System::new();
        for d in &self.domain {
            sys.extend(d);
        }
        sys
    }

    /// Does the current domain imply `cond`? (i.e. `domain ∧ ¬cond` empty —
    /// only decided for single affine comparisons.)
    fn implied(&self, cond: &Expr) -> bool {
        use ft_ir::BinaryOp::*;
        match cond {
            Expr::Binary { op, a, b } if matches!(op, Lt | Le | Gt | Ge) => {
                let map = ft_analysis::affine::VarMap::new();
                let (Some(la), Some(lb)) = (
                    ft_analysis::affine::to_linexpr_mapped(a, &map),
                    ft_analysis::affine::to_linexpr_mapped(b, &map),
                ) else {
                    return false;
                };
                let mut sys = self.domain_system();
                // Negation of the comparison.
                match op {
                    Lt => sys.push(Constraint::ge(la, lb)),
                    Le => sys.push(Constraint::gt(la, lb)),
                    Gt => sys.push(Constraint::le(la, lb)),
                    Ge => sys.push(Constraint::lt(la, lb)),
                    _ => unreachable!(),
                }
                sys.satisfiable() == Sat::Empty
            }
            Expr::Binary { op: And, a, b } => self.implied(a) && self.implied(b),
            _ => false,
        }
    }
}

impl Mutator for GuardRemover {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        match s.kind {
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                let mut dom = System::new();
                if let (Some(lo), Some(hi)) = (to_linexpr(&begin), to_linexpr(&end)) {
                    dom.push(Constraint::ge(LinExpr::var(iter.clone()), lo));
                    dom.push(Constraint::lt(LinExpr::var(iter.clone()), hi));
                }
                self.domain.push(dom);
                let body = self.mutate_stmt(*body);
                self.domain.pop();
                Stmt {
                    id: s.id,
                    label: s.label,
                    kind: StmtKind::For {
                        iter,
                        begin,
                        end,
                        property,
                        body: Box::new(body),
                    },
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                if otherwise.is_none() && self.implied(&cond) {
                    // The guard always holds here: drop it.
                    return self.mutate_stmt(Stmt {
                        id: s.id,
                        label: s.label,
                        kind: then.kind,
                    });
                }
                // Branch arms see the condition's constraints too.
                let mut dom = System::new();
                cond_to_constraints(&cond, &ft_analysis::affine::VarMap::new(), &mut dom);
                self.domain.push(dom);
                let then = self.mutate_stmt(*then);
                self.domain.pop();
                self.domain.push(System::new());
                let otherwise = otherwise.map(|o| Box::new(self.mutate_stmt(*o)));
                self.domain.pop();
                Stmt {
                    id: s.id,
                    label: s.label,
                    kind: StmtKind::If {
                        cond,
                        then: Box::new(then),
                        otherwise,
                    },
                }
            }
            _ => mutate_stmt_walk(self, s),
        }
    }
}

/// Remove guards provably implied by their surrounding loop bounds and outer
/// guards (e.g. the boundary checks `split` leaves in the main region).
pub fn remove_redundant_guards(func: &Func) -> Func {
    let body = GuardRemover { domain: Vec::new() }.mutate_stmt(func.body.clone());
    func.with_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;

    #[test]
    fn affine_terms_cancel() {
        // i0*256 + i1 - i0*256 -> i1 (the cache-remap residue).
        let e = var("i0") * 256 + var("i1") - var("i0") * 256;
        let n = normalize_affine(store("a", [e], 0.0f32));
        match &n.kind {
            StmtKind::Store { indices, .. } => assert_eq!(indices[0], var("i1")),
            _ => unreachable!(),
        }
    }

    #[test]
    fn normalization_is_conservative_for_non_affine() {
        let e = load("x", [var("i")]) * load("y", [var("j") + 1 - 1]);
        let n = normalize_affine(store("a", [var("i")], e));
        // The float product is untouched; the subscript inside folds.
        match &n.kind {
            StmtKind::Store { value, .. } => {
                let text = format!("{value:?}");
                assert!(!text.contains("IntConst(1)"), "{text}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn implied_guard_is_removed() {
        // for i in 0..8: if i < 10: S   — guard always true.
        let f = Func::new("f")
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                if_(var("i").lt(10), store("y", [var("i")], 1.0f32)),
            ));
        let out = remove_redundant_guards(&f);
        assert!(
            ft_ir::find::find_stmts(&out.body, &|s| matches!(s.kind, StmtKind::If { .. }))
                .is_empty(),
            "{out}"
        );
    }

    #[test]
    fn live_guard_is_kept() {
        // for i in 0..8: if i < 5: S — guard matters.
        let f = Func::new("f")
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                if_(var("i").lt(5), store("y", [var("i")], 1.0f32)),
            ));
        let out = remove_redundant_guards(&f);
        assert_eq!(
            ft_ir::find::find_stmts(&out.body, &|s| matches!(s.kind, StmtKind::If { .. }))
                .len(),
            1
        );
    }

    #[test]
    fn nested_guards_compose() {
        // Outer guard i < 6 makes the inner i < 10 redundant; conjunctions
        // also discharge per conjunct.
        let f = Func::new("f")
            .param("y", [8], DataType::F32, AccessType::Output)
            .body(for_(
                "i",
                0,
                8,
                if_(
                    var("i").lt(6),
                    if_(
                        var("i").lt(10).and(var("i").ge(0)),
                        store("y", [var("i")], 1.0f32),
                    ),
                ),
            ));
        let out = remove_redundant_guards(&f);
        assert_eq!(
            ft_ir::find::find_stmts(&out.body, &|s| matches!(s.kind, StmtKind::If { .. }))
                .len(),
            1,
            "{out}"
        );
    }

    #[test]
    fn split_style_guard_respects_divisibility() {
        // A split-produced guard `i0*8 + i1 < n`: redundant when n is a
        // multiple of the factor, live otherwise.
        let guarded = |n: i64| {
            Func::new("f")
                .param("y", [n], DataType::F32, AccessType::Output)
                .body(for_(
                    "i0",
                    0,
                    (n + 7) / 8,
                    for_(
                        "i1",
                        0,
                        8,
                        if_(
                            (var("i0") * 8 + var("i1")).lt(n),
                            store("y", [var("i0") * 8 + var("i1")], 1.0f32),
                        ),
                    ),
                ))
        };
        let clean = remove_redundant_guards(&guarded(64));
        assert!(
            ft_ir::find::find_stmts(&clean.body, &|s| matches!(s.kind, StmtKind::If { .. }))
                .is_empty(),
            "{clean}"
        );
        let kept = remove_redundant_guards(&guarded(60));
        assert_eq!(
            ft_ir::find::find_stmts(&kept.body, &|s| matches!(s.kind, StmtKind::If { .. }))
                .len(),
            1
        );
    }
}
