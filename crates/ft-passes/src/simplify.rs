//! Control-flow simplification: constant branches, degenerate loops,
//! flattened blocks.

use crate::dce::remove_dead_defs;
use crate::fold::const_fold_stmt;
use ft_ir::mutate::{mutate_stmt_walk, subst_var_stmt};
use ft_ir::{Expr, Func, Mutator, Stmt, StmtKind};

struct Simplifier;

impl Mutator for Simplifier {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        let s = mutate_stmt_walk(self, s);
        let Stmt { id, label, kind } = s;
        let kind = match kind {
            StmtKind::Block(stmts) => {
                // Flatten nested blocks and drop no-ops.
                let mut out: Vec<Stmt> = Vec::new();
                for st in stmts {
                    match st.kind {
                        StmtKind::Empty => {}
                        StmtKind::Block(inner) => out.extend(inner),
                        _ => out.push(st),
                    }
                }
                match out.len() {
                    0 => StmtKind::Empty,
                    1 => return out.into_iter().next().expect("len checked"),
                    _ => StmtKind::Block(out),
                }
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => match cond.as_bool() {
                Some(true) => return *then,
                Some(false) => {
                    return otherwise.map_or_else(
                        || Stmt { id, label, kind: StmtKind::Empty },
                        |o| *o,
                    )
                }
                None => {
                    let otherwise = otherwise.filter(|o| !o.is_empty());
                    if then.is_empty() && otherwise.is_none() {
                        StmtKind::Empty
                    } else {
                        StmtKind::If {
                            cond,
                            then,
                            otherwise,
                        }
                    }
                }
            },
            StmtKind::For {
                iter,
                begin,
                end,
                property,
                body,
            } => {
                if body.is_empty() {
                    StmtKind::Empty
                } else if let (Some(b), Some(e)) = (begin.as_int(), end.as_int()) {
                    if e <= b {
                        StmtKind::Empty
                    } else if e == b + 1 {
                        // Single-trip loop: substitute the iterator.
                        return subst_var_stmt(*body, &iter, &Expr::IntConst(b));
                    } else {
                        StmtKind::For {
                            iter,
                            begin,
                            end,
                            property,
                            body,
                        }
                    }
                } else {
                    StmtKind::For {
                        iter,
                        begin,
                        end,
                        property,
                        body,
                    }
                }
            }
            StmtKind::VarDef {
                name,
                shape,
                dtype,
                mtype,
                atype,
                body,
            } => {
                if body.is_empty() {
                    StmtKind::Empty
                } else {
                    StmtKind::VarDef {
                        name,
                        shape,
                        dtype,
                        mtype,
                        atype,
                        body,
                    }
                }
            }
            k => k,
        };
        Stmt { id, label, kind }
    }
}

/// One round of constant folding + affine normalization + control
/// simplification.
pub fn simplify_once(s: Stmt) -> Stmt {
    let s = crate::normalize::normalize_affine(const_fold_stmt(s));
    Simplifier.mutate_stmt(s)
}

/// Simplify a statement tree to a fixpoint (bounded).
pub fn simplify_stmt(mut s: Stmt) -> Stmt {
    for _ in 0..8 {
        let next = simplify_once(s.clone());
        if next.same_structure(&s) {
            return next;
        }
        s = next;
    }
    s
}

/// Simplify a whole function: fold, simplify control flow, and remove local
/// definitions that are never read (dead-code elimination), to a fixpoint.
pub fn simplify(f: &Func) -> Func {
    simplify_traced(f, None)
}

/// [`simplify`] with provenance reporting: each sub-pass of each fixpoint
/// round becomes a span on the compile track of `sink`, so a trace shows
/// where simplification time went and how many rounds ran.
pub fn simplify_traced(f: &Func, sink: Option<&ft_trace::TraceSink>) -> Func {
    let run = |name: &str, input: &Func, pass: &dyn Fn(&Func) -> Func| -> Func {
        let _span = sink.map(|s| s.span("pass", name));
        pass(input)
    };
    let mut outer = sink.map(|s| s.span("pass", "simplify"));
    let mut rounds = 1;
    let mut cur = run("simplify:control", f, &|f| {
        f.with_body(simplify_stmt(f.body.clone()))
    });
    for _ in 0..8 {
        let next = run("simplify:dce", &cur, &|f| remove_dead_defs(f));
        let next = run("simplify:guards", &next, &|f| {
            crate::normalize::remove_redundant_guards(f)
        });
        let next = run("simplify:control", &next, &|f| {
            f.with_body(simplify_stmt(f.body.clone()))
        });
        let fixed = next.body.same_structure(&cur.body);
        cur = next;
        if fixed {
            break;
        }
        rounds += 1;
    }
    if let Some(sp) = outer.as_mut() {
        sp.arg("rounds", rounds);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::DataType;

    #[test]
    fn constant_branches_fold_away() {
        let s = if_else(
            Expr::IntConst(3).lt(5),
            store("a", [0], 1.0f32),
            store("a", [0], 2.0f32),
        );
        let out = simplify_stmt(s);
        match out.kind {
            StmtKind::Store { value, .. } => assert_eq!(value, Expr::FloatConst(1.0)),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_single_trip_loops() {
        let s = for_("i", 0, 0, store("a", [var("i")], 1.0f32));
        assert!(simplify_stmt(s).is_empty());
        let s = for_("i", 3, 4, store("a", [var("i")], 1.0f32));
        let out = simplify_stmt(s);
        match out.kind {
            StmtKind::Store { indices, .. } => assert_eq!(indices[0], Expr::IntConst(3)),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn blocks_flatten() {
        let s = block([
            block([store("a", [0], 1.0f32), empty()]),
            empty(),
            block([store("a", [1], 2.0f32)]),
        ]);
        let out = simplify_stmt(s);
        match &out.kind {
            StmtKind::Block(v) => {
                assert_eq!(v.len(), 2);
                assert!(v
                    .iter()
                    .all(|st| matches!(st.kind, StmtKind::Store { .. })));
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn if_without_effect_vanishes() {
        let s = if_(var("c").gt(0), block([empty()]));
        assert!(simplify_stmt(s).is_empty());
    }

    #[test]
    fn simplify_func_removes_dead_locals() {
        // t is written but never read: the whole def disappears.
        let f = Func::new("f")
            .param("y", [4], DataType::F32, AccessType::Output)
            .body(block([
                var_def(
                    "t",
                    [4],
                    DataType::F32,
                    MemType::CpuHeap,
                    for_("i", 0, 4, store("t", [var("i")], 1.0f32)),
                ),
                for_("i2", 0, 4, store("y", [var("i2")], 2.0f32)),
            ]));
        let out = simplify(&f);
        let mut has_t = false;
        out.body.walk(&mut |s| {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                if name == "t" {
                    has_t = true;
                }
            }
        });
        assert!(!has_t, "dead definition should be removed:\n{}", out);
    }
}
