//! Renaming of local definitions so every `VarDef` name is unique.
//!
//! Function inlining (and libop expansion) can introduce clashing tensor
//! names; the dependence engine and the runtime key tensors by name, so the
//! pipeline uniquifies names right after inlining.

use ft_ir::mutate::{mutate_stmt_walk, rename_var_stmt};
use ft_ir::{Func, Mutator, Stmt, StmtKind};
use std::collections::HashSet;

struct Uniquify {
    taken: HashSet<String>,
}

impl Uniquify {
    fn fresh(&mut self, base: &str) -> String {
        if self.taken.insert(base.to_string()) {
            return base.to_string();
        }
        for k in 1.. {
            let cand = format!("{base}.{k}");
            if self.taken.insert(cand.clone()) {
                return cand;
            }
        }
        unreachable!()
    }
}

impl Mutator for Uniquify {
    fn mutate_stmt(&mut self, s: Stmt) -> Stmt {
        if let StmtKind::VarDef {
            name,
            shape,
            dtype,
            mtype,
            atype,
            body,
        } = s.kind
        {
            let new_name = self.fresh(&name);
            let body = if new_name == name {
                *body
            } else {
                rename_var_stmt(*body, &name, &new_name)
            };
            let body = self.mutate_stmt(body);
            Stmt {
                id: s.id,
                label: s.label,
                kind: StmtKind::VarDef {
                    name: new_name,
                    shape,
                    dtype,
                    mtype,
                    atype,
                    body: Box::new(body),
                },
            }
        } else {
            mutate_stmt_walk(self, s)
        }
    }
}

/// Rename local definitions so that every tensor name in the function
/// (parameters + `VarDef`s) is unique. Inner shadowing definitions are
/// renamed to `name.1`, `name.2`, ….
pub fn uniquify_defs(func: &Func) -> Func {
    let mut u = Uniquify {
        taken: func
            .params
            .iter()
            .map(|p| p.name.clone())
            .chain(func.size_params.iter().cloned())
            .collect(),
    };
    let body = u.mutate_stmt(func.body.clone());
    func.with_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_ir::prelude::*;
    use ft_ir::DataType;

    #[test]
    fn shadowing_defs_are_renamed() {
        let f = Func::new("f")
            .param("y", [2], DataType::F32, AccessType::Output)
            .body(block([
                var_def(
                    "t",
                    [1],
                    DataType::F32,
                    MemType::CpuHeap,
                    store("y", [0], load("t", [0])),
                ),
                var_def(
                    "t",
                    [1],
                    DataType::F32,
                    MemType::CpuHeap,
                    store("y", [1], load("t", [0])),
                ),
            ]));
        let out = uniquify_defs(&f);
        let mut names = Vec::new();
        out.body.walk(&mut |s| {
            if let StmtKind::VarDef { name, .. } = &s.kind {
                names.push(name.clone());
            }
        });
        names.sort();
        assert_eq!(names, vec!["t".to_string(), "t.1".to_string()]);
        // The load inside the renamed def follows the rename.
        let text = out.to_string();
        assert!(text.contains("y[1] = t.1[0]"), "{text}");
        assert!(text.contains("y[0] = t[0]"), "{text}");
    }

    #[test]
    fn param_names_are_reserved() {
        let f = Func::new("f")
            .param("x", [1], DataType::F32, AccessType::Input)
            .body(var_def(
                "x",
                [1],
                DataType::F32,
                MemType::CpuHeap,
                store("x", [0], 1.0f32),
            ));
        let out = uniquify_defs(&f);
        match &out.body.kind {
            StmtKind::VarDef { name, .. } => assert_eq!(name, "x.1"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
