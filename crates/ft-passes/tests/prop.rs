//! Property tests: simplification passes preserve evaluation.

use ft_ir::{BinaryOp, Expr, UnaryOp};
use ft_passes::{const_fold_expr, normalize_affine};
use proptest::prelude::*;

/// Evaluate an integer expression under an environment (mirrors the
/// runtime's floor-division semantics). `None` on division by zero.
fn eval(e: &Expr, env: &dyn Fn(&str) -> i64) -> Option<i64> {
    Some(match e {
        Expr::IntConst(v) => *v,
        Expr::Var(n) => env(n),
        Expr::Unary {
            op: UnaryOp::Neg,
            a,
        } => -eval(a, env)?,
        Expr::Unary {
            op: UnaryOp::Abs,
            a,
        } => eval(a, env)?.abs(),
        Expr::Binary { op, a, b } => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            match op {
                BinaryOp::Add => x.checked_add(y)?,
                BinaryOp::Sub => x.checked_sub(y)?,
                BinaryOp::Mul => x.checked_mul(y)?,
                BinaryOp::Div => {
                    if y == 0 {
                        return None;
                    }
                    x.div_euclid(y)
                }
                BinaryOp::Mod => {
                    if y == 0 {
                        return None;
                    }
                    x.rem_euclid(y)
                }
                BinaryOp::Min => x.min(y),
                BinaryOp::Max => x.max(y),
                _ => return None,
            }
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            if eval_bool(cond, env)? {
                eval(then, env)?
            } else {
                eval(otherwise, env)?
            }
        }
        _ => return None,
    })
}

fn eval_bool(e: &Expr, env: &dyn Fn(&str) -> i64) -> Option<bool> {
    match e {
        Expr::BoolConst(b) => Some(*b),
        Expr::Binary { op, a, b } => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            Some(match op {
                BinaryOp::Eq => x == y,
                BinaryOp::Ne => x != y,
                BinaryOp::Lt => x < y,
                BinaryOp::Le => x <= y,
                BinaryOp::Gt => x > y,
                BinaryOp::Ge => x >= y,
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Random integer expressions over variables a, b, c with bounded constants.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::IntConst),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|n| Expr::Var(n.to_string())),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.rem(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            inner.clone().prop_map(|a| -a),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| {
                Expr::select(c.clone().lt(a.clone()), a, b)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Constant folding preserves the value of every expression, at every
    /// environment probed.
    #[test]
    fn const_fold_preserves_evaluation(e in arb_expr(), a in -9i64..=9, b in -9i64..=9, c in -9i64..=9) {
        let folded = const_fold_expr(e.clone());
        let env = move |n: &str| match n { "a" => a, "b" => b, _ => c };
        // Only compare when both sides evaluate (division by zero and
        // overflow stay unfolded by design).
        if let (Some(x), Some(y)) = (eval(&e, &env), eval(&folded, &env)) {
            prop_assert_eq!(x, y, "folding changed value: {:?} -> {:?}", e, folded);
        }
    }

    /// Affine normalization preserves the value of every expression.
    #[test]
    fn normalize_preserves_evaluation(e in arb_expr(), a in -9i64..=9, b in -9i64..=9, c in -9i64..=9) {
        let s = ft_ir::builder::store("out", [e.clone()], 0.0f32);
        let n = normalize_affine(s);
        let ft_ir::StmtKind::Store { indices, .. } = &n.kind else { unreachable!() };
        let env = move |n: &str| match n { "a" => a, "b" => b, _ => c };
        if let (Some(x), Some(y)) = (eval(&e, &env), eval(&indices[0], &env)) {
            prop_assert_eq!(x, y, "normalization changed value: {:?} -> {:?}", e, &indices[0]);
        }
    }

    /// Folding is idempotent.
    #[test]
    fn const_fold_idempotent(e in arb_expr()) {
        let once = const_fold_expr(e);
        let twice = const_fold_expr(once.clone());
        prop_assert_eq!(once, twice);
    }
}
