//! Constraints and conjunction systems.

use crate::linexpr::LinExpr;
use std::collections::BTreeSet;
use std::fmt;

/// The sense of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `expr >= 0`.
    Ge0,
    /// `expr == 0`.
    Eq0,
}

/// A single affine constraint: `expr >= 0` or `expr == 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The affine expression.
    pub expr: LinExpr,
    /// Whether this is an inequality or an equality.
    pub op: CmpOp,
}

impl Constraint {
    /// `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            op: CmpOp::Ge0,
        }
    }

    /// `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            op: CmpOp::Eq0,
        }
    }

    /// `a >= b`.
    pub fn ge(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::ge0(a - b)
    }

    /// `a <= b`.
    pub fn le(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::ge0(b - a)
    }

    /// `a > b` (integer: `a >= b + 1`).
    pub fn gt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::ge0(a - b - 1)
    }

    /// `a < b` (integer: `a <= b - 1`).
    pub fn lt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::ge0(b - a - 1)
    }

    /// `a == b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::eq0(a - b)
    }

    /// Substitute a variable in the constraint.
    pub fn subst(&self, name: &str, value: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.subst(name, value),
            op: self.op,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            CmpOp::Ge0 => write!(f, "{} >= 0", self.expr),
            CmpOp::Eq0 => write!(f, "{} = 0", self.expr),
        }
    }
}

/// A conjunction of affine constraints over integer variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct System {
    /// The conjuncts.
    pub constraints: Vec<Constraint>,
}

impl System {
    /// The empty conjunction (trivially satisfiable).
    pub fn new() -> System {
        System::default()
    }

    /// Build from an iterator of constraints.
    pub fn from_constraints(cs: impl IntoIterator<Item = Constraint>) -> System {
        System {
            constraints: cs.into_iter().collect(),
        }
    }

    /// Add a constraint (builder style).
    pub fn with(mut self, c: Constraint) -> System {
        self.constraints.push(c);
        self
    }

    /// Add a constraint in place.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Conjoin all constraints of `other`.
    pub fn extend(&mut self, other: &System) {
        self.constraints.extend(other.constraints.iter().cloned());
    }

    /// All variable names mentioned by the system.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            for v in c.expr.vars() {
                out.insert(v.to_string());
            }
        }
        out
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ ")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_constructors() {
        let a = LinExpr::var("a");
        let b = LinExpr::var("b");
        // a < b  <=>  b - a - 1 >= 0
        let c = Constraint::lt(a.clone(), b.clone());
        assert_eq!(c.expr.coeff("a"), -1);
        assert_eq!(c.expr.coeff("b"), 1);
        assert_eq!(c.expr.constant_term(), -1);
        assert_eq!(c.op, CmpOp::Ge0);
        let e = Constraint::eq(a, b);
        assert_eq!(e.op, CmpOp::Eq0);
    }

    #[test]
    fn system_vars_are_collected() {
        let sys = System::new()
            .with(Constraint::ge0(LinExpr::var("i")))
            .with(Constraint::eq(LinExpr::var("j"), LinExpr::var("k")));
        let vars = sys.vars();
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec!["i".to_string(), "j".to_string(), "k".to_string()]
        );
    }

    #[test]
    fn display() {
        let sys = System::new().with(Constraint::ge0(LinExpr::var("i") - 1));
        assert_eq!(sys.to_string(), "{ i - 1 >= 0 }");
    }
}
