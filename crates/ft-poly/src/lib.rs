//! # ft-poly — Presburger-lite integer linear constraint solving
//!
//! The FreeTensor paper uses isl to decide dependence questions: given memory
//! accesses described as affine ("Presburger") formulas, a dependence exists
//! iff an integer solution exists to the conjunction of
//!
//! 1. both statement instances' iteration domains,
//! 2. equality of the accessed array indices, and
//! 3. a lexicographic ordering constraint between the two instances.
//!
//! This crate implements exactly that decision procedure from scratch:
//!
//! * [`LinExpr`] — affine expressions over named integer variables;
//! * [`Constraint`] / [`System`] — conjunctions of `e ≥ 0` / `e = 0`;
//! * [`System::satisfiable`] — integer emptiness via equality substitution
//!   (with GCD feasibility tests) followed by Fourier–Motzkin elimination
//!   with *real shadow* (sound for "empty") and *dark shadow* (sound for
//!   "non-empty") tracking, in the style of the Omega test;
//! * [`lex_order_systems`] — the per-depth disjuncts of `p >lex q` used to
//!   classify loop-carried dependences.
//!
//! Answers are three-valued ([`Sat`]): `Unknown` arises when the dark and
//! real shadows disagree or arithmetic would overflow; dependence analysis
//! treats `Unknown` conservatively as "dependence may exist".
//!
//! ```
//! use ft_poly::{LinExpr, Constraint, System, Sat};
//!
//! // { i : 0 <= i < 10  and  i = 2k  and  i >= 7 and k >= 4 } is non-empty (i=8).
//! let i = LinExpr::var("i");
//! let k = LinExpr::var("k");
//! let sys = System::new()
//!     .with(Constraint::ge(i.clone(), LinExpr::constant(0)))
//!     .with(Constraint::lt(i.clone(), LinExpr::constant(10)))
//!     .with(Constraint::eq(i.clone(), k.clone().scaled(2)))
//!     .with(Constraint::ge(i, LinExpr::constant(7)))
//!     .with(Constraint::ge(k, LinExpr::constant(4)));
//! assert_eq!(sys.satisfiable(), Sat::NonEmpty);
//! ```

pub mod constraint;
pub mod linexpr;
pub mod solve;

pub use constraint::{CmpOp, Constraint, System};
pub use linexpr::LinExpr;
pub use solve::{lex_order_systems, Sat};
