//! Affine (linear + constant) integer expressions over named variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops;

/// An affine expression `Σ cᵢ·xᵢ + c` with `i64` coefficients.
///
/// Variables are identified by name; a zero coefficient is never stored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Non-zero coefficients, keyed by variable name (sorted for determinism).
    terms: BTreeMap<String, i64>,
    /// The constant term.
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(name: impl Into<String>) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        LinExpr { terms, constant: 0 }
    }

    /// A single variable with an explicit coefficient.
    pub fn term(name: impl Into<String>, coeff: i64) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_term(name.into(), coeff);
        e
    }

    /// The coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterate over (variable, coefficient) pairs.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Whether this expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Names of the variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    fn add_term(&mut self, name: String, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(name).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // Re-borrowing to remove requires the key; rebuild via retain.
            self.terms.retain(|_, v| *v != 0);
        }
    }

    /// `self * k`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(n, c)| (n.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Like [`LinExpr::scaled`] but detecting `i64` overflow.
    pub fn checked_scaled(&self, k: i64) -> Option<LinExpr> {
        if k == 0 {
            return Some(LinExpr::zero());
        }
        let mut terms = BTreeMap::new();
        for (n, c) in &self.terms {
            terms.insert(n.clone(), c.checked_mul(k)?);
        }
        Some(LinExpr {
            terms,
            constant: self.constant.checked_mul(k)?,
        })
    }

    /// `self + other`, detecting overflow.
    pub fn checked_add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        for (n, c) in &other.terms {
            let entry = out.terms.entry(n.clone()).or_insert(0);
            *entry = entry.checked_add(*c)?;
        }
        out.terms.retain(|_, v| *v != 0);
        out.constant = out.constant.checked_add(other.constant)?;
        Some(out)
    }

    /// Substitute variable `name` with expression `value`.
    pub fn subst(&self, name: &str, value: &LinExpr) -> LinExpr {
        match self.terms.get(name) {
            None => self.clone(),
            Some(&c) => {
                let mut out = self.clone();
                out.terms.remove(name);
                out + value.scaled(c)
            }
        }
    }

    /// GCD of the variable coefficients (0 when there are none).
    pub fn coeff_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Divide all coefficients and the constant by `d` (must divide exactly).
    ///
    /// # Panics
    ///
    /// Panics if `d` does not divide every coefficient and the constant.
    pub fn exact_div(&self, d: i64) -> LinExpr {
        assert!(d != 0, "division by zero");
        assert!(
            self.constant % d == 0 && self.terms.values().all(|c| c % d == 0),
            "exact_div: {d} does not divide {self}"
        );
        LinExpr {
            terms: self.terms.iter().map(|(n, c)| (n.clone(), c / d)).collect(),
            constant: self.constant / d,
        }
    }
}

/// Greatest common divisor (non-negative).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (n, c) in rhs.terms {
            self.add_term(n, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.scaled(-1)
    }
}

impl ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl ops::Add<i64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: i64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl ops::Sub<i64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: i64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    c => write!(f, "{c}{n}")?,
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {n}")?;
                } else {
                    write!(f, " + {c}{n}")?;
                }
            } else if *c == -1 {
                write!(f, " - {n}")?;
            } else {
                write!(f, " - {}{n}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_cancels_terms() {
        let e = LinExpr::var("i") + LinExpr::var("j") - LinExpr::var("i");
        assert_eq!(e.coeff("i"), 0);
        assert_eq!(e.coeff("j"), 1);
        assert_eq!(e.num_vars(), 1);
    }

    #[test]
    fn substitution_is_affine() {
        // 2i + j + 3, with i := k - 1  =>  2k + j + 1
        let e = LinExpr::term("i", 2) + LinExpr::var("j") + 3;
        let v = LinExpr::var("k") - 1;
        let s = e.subst("i", &v);
        assert_eq!(s.coeff("k"), 2);
        assert_eq!(s.coeff("j"), 1);
        assert_eq!(s.coeff("i"), 0);
        assert_eq!(s.constant_term(), 1);
    }

    #[test]
    fn gcd_and_exact_div() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-4, 6), 2);
        let e = LinExpr::term("i", 4) + LinExpr::term("j", -6) + 8;
        let d = e.exact_div(2);
        assert_eq!(d.coeff("i"), 2);
        assert_eq!(d.coeff("j"), -3);
        assert_eq!(d.constant_term(), 4);
        assert_eq!(e.coeff_gcd(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::term("i", 2) - LinExpr::var("j") + 5;
        assert_eq!(e.to_string(), "2i - j + 5");
        assert_eq!(LinExpr::constant(-3).to_string(), "-3");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let big = LinExpr::term("i", i64::MAX);
        assert!(big.checked_scaled(2).is_none());
        assert!(big.checked_add(&LinExpr::term("i", 1)).is_none());
        assert!(big.checked_add(&LinExpr::term("j", 1)).is_some());
    }
}
