//! Integer satisfiability of conjunction systems, Omega-test style.
//!
//! The solver proceeds in two phases:
//!
//! 1. **Equality elimination.** Every `e = 0` conjunct is normalized by the
//!    GCD test (if the GCD of the variable coefficients does not divide the
//!    constant, the system is empty) and, when some variable has a ±1
//!    coefficient, eliminated exactly by substitution. Equalities that cannot
//!    be eliminated this way are relaxed to two inequalities, which keeps
//!    "empty" answers sound but downgrades "non-empty" answers to
//!    [`Sat::Unknown`].
//! 2. **Fourier–Motzkin elimination** over the inequalities, run in two
//!    modes: the *real shadow* (the rational projection — its emptiness
//!    implies the original is empty) and the *dark shadow* (a stronger
//!    projection whose satisfiability implies the original is satisfiable).
//!    When a variable's coefficient in one side of every eliminated pair is
//!    ±1 the two shadows coincide and the elimination is exact.
//!
//! All arithmetic is checked; any overflow or size blow-up degrades the
//! answer to `Unknown`, never to a wrong verdict.

use crate::constraint::{CmpOp, Constraint, System};
use crate::linexpr::LinExpr;

/// Result of an integer satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sat {
    /// The system has no integer solution.
    Empty,
    /// The system has at least one integer solution.
    NonEmpty,
    /// The solver could not decide (treated conservatively by callers).
    Unknown,
}

/// Hard caps keeping Fourier–Motzkin from exploding.
const MAX_INEQS: usize = 4000;
const MAX_VARS: usize = 64;

impl System {
    /// Decide whether this conjunction has an integer solution.
    pub fn satisfiable(&self) -> Sat {
        // Phase 1: split into equalities / inequalities.
        let mut eqs: Vec<LinExpr> = Vec::new();
        let mut ineqs: Vec<LinExpr> = Vec::new();
        for c in &self.constraints {
            match c.op {
                CmpOp::Eq0 => eqs.push(c.expr.clone()),
                CmpOp::Ge0 => ineqs.push(c.expr.clone()),
            }
        }

        let mut exact_eqs = true;
        loop {
            // Normalize every equality: constants decide immediately, the GCD
            // feasibility test may refute, coprime coefficients are canonical.
            let mut normalized: Vec<LinExpr> = Vec::new();
            for eq in eqs.drain(..) {
                if eq.is_constant() {
                    if eq.constant_term() != 0 {
                        return Sat::Empty;
                    }
                    continue;
                }
                let g = eq.coeff_gcd();
                if eq.constant_term() % g != 0 {
                    // GCD feasibility test: no integer solution.
                    return Sat::Empty;
                }
                normalized.push(eq.exact_div_coeffs_and_const(g));
            }
            eqs = normalized;

            // Pick one equality with a unit-coefficient variable and
            // substitute it away everywhere (exact integer step).
            let pick = eqs.iter().enumerate().find_map(|(i, eq)| {
                eq.iter_terms()
                    .find(|(_, c)| c.abs() == 1)
                    .map(|(n, c)| (i, n.to_string(), c))
            });
            let Some((idx, name, c)) = pick else { break };
            let eq = eqs.swap_remove(idx);
            // c*x + rest = 0  =>  x = -rest * sign(c)   (|c| = 1)
            let rest = eq - LinExpr::term(name.clone(), c);
            let value = rest.scaled(-c.signum());
            for e in eqs.iter_mut() {
                *e = e.subst(&name, &value);
            }
            for e in ineqs.iter_mut() {
                *e = e.subst(&name, &value);
            }
        }

        // Relax undissolved equalities to two inequalities each. Emptiness
        // stays sound; non-emptiness becomes unknown.
        if !eqs.is_empty() {
            exact_eqs = false;
            for eq in eqs.drain(..) {
                ineqs.push(eq.clone());
                ineqs.push(-eq);
            }
        }

        let real = fm_eliminate(ineqs.clone(), Shadow::Real);
        if real == FmResult::Empty {
            return Sat::Empty;
        }
        if exact_eqs {
            let dark = fm_eliminate(ineqs, Shadow::Dark);
            if dark == FmResult::Satisfiable {
                return Sat::NonEmpty;
            }
        }
        Sat::Unknown
    }
}

impl LinExpr {
    /// Divide all coefficients by `g` and floor-divide the constant.
    ///
    /// Used after the GCD test: callers guarantee `g` divides the constant.
    fn exact_div_coeffs_and_const(&self, g: i64) -> LinExpr {
        if g <= 1 {
            return self.clone();
        }
        self.exact_div(g)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shadow {
    Real,
    Dark,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FmResult {
    Empty,
    Satisfiable,
    Overflow,
}

/// Eliminate all variables by Fourier–Motzkin, under the chosen shadow.
fn fm_eliminate(mut ineqs: Vec<LinExpr>, shadow: Shadow) -> FmResult {
    loop {
        // Constant constraints decide immediately or drop out.
        let mut vars: Vec<String> = Vec::new();
        {
            let mut seen = std::collections::BTreeSet::new();
            for e in &ineqs {
                if e.is_constant() {
                    if e.constant_term() < 0 {
                        return FmResult::Empty;
                    }
                } else {
                    for v in e.vars() {
                        seen.insert(v.to_string());
                    }
                }
            }
            vars.extend(seen);
        }
        ineqs.retain(|e| !e.is_constant());
        prune(&mut ineqs);
        if vars.is_empty() {
            return FmResult::Satisfiable;
        }
        if vars.len() > MAX_VARS || ineqs.len() > MAX_INEQS {
            return FmResult::Overflow;
        }

        // Pick the variable minimizing the product of lower and upper bounds.
        let (var, _) = vars
            .iter()
            .map(|v| {
                let lowers = ineqs.iter().filter(|e| e.coeff(v) > 0).count();
                let uppers = ineqs.iter().filter(|e| e.coeff(v) < 0).count();
                // Variables with no bound on one side are free: cost 0.
                (v.clone(), lowers.saturating_mul(uppers))
            })
            .min_by_key(|(_, cost)| *cost)
            .expect("vars is non-empty");

        let (with_var, rest): (Vec<LinExpr>, Vec<LinExpr>) =
            ineqs.into_iter().partition(|e| e.coeff(&var) != 0);
        let lowers: Vec<&LinExpr> = with_var.iter().filter(|e| e.coeff(&var) > 0).collect();
        let uppers: Vec<&LinExpr> = with_var.iter().filter(|e| e.coeff(&var) < 0).collect();
        let mut next = rest;
        // If the variable is unbounded on one side, all its constraints can be
        // satisfied by pushing it far enough: simply project them away.
        if !lowers.is_empty() && !uppers.is_empty() {
            for l in &lowers {
                for u in &uppers {
                    // l: a*x + p >= 0 (a > 0)  =>  x >= ceil(-p / a)
                    // u: -b*x + q >= 0 (b > 0) =>  x <= floor(q / b)
                    let a = l.coeff(&var);
                    let b = -u.coeff(&var);
                    debug_assert!(a > 0 && b > 0);
                    // Real shadow: b*p + a*q >= 0.
                    // Dark shadow: b*p + a*q >= (a-1)(b-1).
                    let Some(lp) = l.checked_scaled(b) else {
                        return FmResult::Overflow;
                    };
                    let Some(uq) = u.checked_scaled(a) else {
                        return FmResult::Overflow;
                    };
                    let Some(mut combined) = lp.checked_add(&uq) else {
                        return FmResult::Overflow;
                    };
                    if shadow == Shadow::Dark {
                        let Some(slack) = (a - 1).checked_mul(b - 1) else {
                            return FmResult::Overflow;
                        };
                        combined = combined - slack;
                    }
                    // Tighten by the GCD of the coefficients (integer rounding).
                    let g = combined.coeff_gcd();
                    if g > 1 {
                        combined = combined.floor_div_const(g);
                    }
                    next.push(combined);
                }
            }
            if next.len() > MAX_INEQS {
                return FmResult::Overflow;
            }
        }
        ineqs = next;
    }
}

impl LinExpr {
    /// `(Σ cᵢxᵢ + c) / g` where `g` divides every `cᵢ`: coefficients divide
    /// exactly, the constant floor-divides (sound tightening for `>= 0`).
    fn floor_div_const(&self, g: i64) -> LinExpr {
        debug_assert!(g > 1);
        let mut out = LinExpr::zero();
        for (n, c) in self.iter_terms() {
            out = out + LinExpr::term(n, c / g);
        }
        out + self.constant_term().div_euclid(g)
    }
}

fn prune(ineqs: &mut Vec<LinExpr>) {
    use std::collections::HashMap;
    // For identical coefficient vectors keep only the tightest constant.
    let mut best: HashMap<Vec<(String, i64)>, i64> = HashMap::new();
    for e in ineqs.drain(..) {
        let key: Vec<(String, i64)> = e.iter_terms().map(|(n, c)| (n.to_string(), c)).collect();
        let c = e.constant_term();
        best.entry(key)
            .and_modify(|existing| *existing = (*existing).min(c))
            .or_insert(c);
    }
    for (key, c) in best {
        let mut e = LinExpr::constant(c);
        for (n, coeff) in key {
            e = e + LinExpr::term(n, coeff);
        }
        ineqs.push(e);
    }
    ineqs.sort_by_key(|e| format!("{e}"));
}

/// The per-depth disjuncts of the lexicographic order `p >lex q`.
///
/// `pairs[d] = (p_d, q_d)` names the iterators of the two statement instances
/// at common loop depth `d` (outermost first). The returned vector contains,
/// for each depth `d`, the conjunction
/// `p_0 = q_0 ∧ … ∧ p_{d-1} = q_{d-1} ∧ p_d ≥ q_d + 1` — i.e. "the dependence
/// is carried by loop `d`".
pub fn lex_order_systems(pairs: &[(String, String)]) -> Vec<System> {
    let mut out = Vec::with_capacity(pairs.len());
    for d in 0..pairs.len() {
        let mut sys = System::new();
        for (p, q) in &pairs[..d] {
            sys.push(Constraint::eq(LinExpr::var(p.clone()), LinExpr::var(q.clone())));
        }
        let (p, q) = &pairs[d];
        sys.push(Constraint::gt(
            LinExpr::var(p.clone()),
            LinExpr::var(q.clone()),
        ));
        out.push(sys);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    fn c(x: i64) -> LinExpr {
        LinExpr::constant(x)
    }

    #[test]
    fn trivial_systems() {
        assert_eq!(System::new().satisfiable(), Sat::NonEmpty);
        let sys = System::new().with(Constraint::ge0(c(-1)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
        let sys = System::new().with(Constraint::eq0(c(3)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn simple_box() {
        // 0 <= i < 10
        let sys = System::new()
            .with(Constraint::ge(v("i"), c(0)))
            .with(Constraint::lt(v("i"), c(10)));
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
        // 0 <= i < 0 — empty
        let sys = System::new()
            .with(Constraint::ge(v("i"), c(0)))
            .with(Constraint::lt(v("i"), c(0)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn gcd_infeasibility() {
        // 2i = 1 — no integer solution.
        let sys = System::new().with(Constraint::eq(v("i").scaled(2), c(1)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
        // 2i = 4 — fine.
        let sys = System::new().with(Constraint::eq(v("i").scaled(2), c(4)));
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
    }

    #[test]
    fn equality_substitution_chains() {
        // i = j + 1, j = k + 1, k = 5, i = 7
        let sys = System::new()
            .with(Constraint::eq(v("i"), v("j") + 1))
            .with(Constraint::eq(v("j"), v("k") + 1))
            .with(Constraint::eq(v("k"), c(5)))
            .with(Constraint::eq(v("i"), c(7)));
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
        let sys = System::new()
            .with(Constraint::eq(v("i"), v("j") + 1))
            .with(Constraint::eq(v("j"), c(5)))
            .with(Constraint::eq(v("i"), c(7)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn classic_dependence_example() {
        // Paper Section 4.2.1: write a[i+1, j], read a[i-1, j+1] in
        // 1 <= i < N-1, 1 <= j < M-1 (N, M free). Dependence system:
        // i1 + 1 = i2 - 1, j1 = j2 + 1 with both in the domain — satisfiable.
        let dom = |i: &str, j: &str| {
            vec![
                Constraint::ge(v(i), c(1)),
                Constraint::lt(v(i), v("N") - 1),
                Constraint::ge(v(j), c(1)),
                Constraint::lt(v(j), v("M") - 1),
            ]
        };
        let mut sys = System::new()
            .with(Constraint::eq(v("i1") + 1, v("i2") - 1))
            .with(Constraint::eq(v("j1"), v("j2") + 1));
        for cst in dom("i1", "j1").into_iter().chain(dom("i2", "j2")) {
            sys.push(cst);
        }
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
    }

    #[test]
    fn strided_no_overlap() {
        // i and j both in [0, 100), 2i = 2j + 1 never holds.
        let sys = System::new()
            .with(Constraint::ge(v("i"), c(0)))
            .with(Constraint::lt(v("i"), c(100)))
            .with(Constraint::ge(v("j"), c(0)))
            .with(Constraint::lt(v("j"), c(100)))
            .with(Constraint::eq(v("i").scaled(2), v("j").scaled(2) + 1));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn dark_shadow_decides_divisibility_free_case() {
        // 3 <= 2x <= 5 has the integer solution x = 2 — requires integer
        // reasoning (rationally it is obviously non-empty, but FM must
        // produce a certified integer answer through the dark shadow).
        let sys = System::new()
            .with(Constraint::ge(v("x").scaled(2), c(3)))
            .with(Constraint::le(v("x").scaled(2), c(5)));
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
    }

    #[test]
    fn omega_classic_empty_interval() {
        // 2x in [2k+1, 2k+1] for integer x has no solution: 2x = 2k+1.
        let sys = System::new().with(Constraint::eq(
            v("x").scaled(2),
            v("k").scaled(2) + 1,
        ));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    #[test]
    fn lex_order_systems_shape() {
        let pairs = vec![
            ("i1".to_string(), "i2".to_string()),
            ("j1".to_string(), "j2".to_string()),
        ];
        let systems = lex_order_systems(&pairs);
        assert_eq!(systems.len(), 2);
        // Depth 0: i1 > i2.
        assert_eq!(systems[0].constraints.len(), 1);
        // Depth 1: i1 = i2 and j1 > j2.
        assert_eq!(systems[1].constraints.len(), 2);
    }

    #[test]
    fn unbounded_variable_is_projected() {
        // x >= 10 with no upper bound: satisfiable.
        let sys = System::new().with(Constraint::ge(v("x"), c(10)));
        assert_eq!(sys.satisfiable(), Sat::NonEmpty);
        // x >= 10 and x <= 5: empty.
        let sys = System::new()
            .with(Constraint::ge(v("x"), c(10)))
            .with(Constraint::le(v("x"), c(5)));
        assert_eq!(sys.satisfiable(), Sat::Empty);
    }

    /// Brute-force integer enumeration over a small box, as ground truth.
    fn brute_force(sys: &System, bound: i64) -> bool {
        let vars: Vec<String> = sys.vars().into_iter().collect();
        let n = vars.len();
        let mut assign = vec![-bound; n];
        loop {
            let ok = sys.constraints.iter().all(|cst| {
                let mut val = cst.expr.constant_term();
                for (name, coeff) in cst.expr.iter_terms() {
                    let idx = vars.iter().position(|v| v == name).unwrap();
                    val += coeff * assign[idx];
                }
                match cst.op {
                    CmpOp::Ge0 => val >= 0,
                    CmpOp::Eq0 => val == 0,
                }
            });
            if ok {
                return true;
            }
            // Next assignment.
            let mut i = 0;
            loop {
                if i == n {
                    return false;
                }
                assign[i] += 1;
                if assign[i] <= bound {
                    break;
                }
                assign[i] = -bound;
                i += 1;
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let names = ["x", "y", "z"];
        for case in 0..300 {
            let mut sys = System::new();
            // Bound the box so brute force is exact ground truth within it.
            for n in names {
                sys.push(Constraint::ge(v(n), c(-4)));
                sys.push(Constraint::le(v(n), c(4)));
            }
            let n_extra = rng.gen_range(1..5);
            for _ in 0..n_extra {
                let mut e = LinExpr::constant(rng.gen_range(-6..=6));
                for n in names {
                    e = e + LinExpr::term(n, rng.gen_range(-3..=3i64));
                }
                if rng.gen_bool(0.3) {
                    sys.push(Constraint::eq0(e));
                } else {
                    sys.push(Constraint::ge0(e));
                }
            }
            let truth = brute_force(&sys, 4);
            match sys.satisfiable() {
                Sat::Empty => assert!(!truth, "case {case}: solver Empty but brute found a solution: {sys}"),
                Sat::NonEmpty => assert!(truth, "case {case}: solver NonEmpty but brute found none: {sys}"),
                Sat::Unknown => {} // always sound
            }
        }
    }
}
