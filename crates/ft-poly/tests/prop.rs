//! Property tests: the Omega-style solver is sound against brute-force
//! integer enumeration on bounded boxes.

use ft_poly::{CmpOp, Constraint, LinExpr, Sat, System};
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "y", "z"];
const BOX: i64 = 4;

fn brute_force(sys: &System) -> bool {
    let n = VARS.len();
    let mut assign = vec![-BOX; n];
    loop {
        let ok = sys.constraints.iter().all(|cst| {
            let mut val = cst.expr.constant_term();
            for (name, coeff) in cst.expr.iter_terms() {
                let idx = VARS.iter().position(|v| *v == name).expect("known var");
                val += coeff * assign[idx];
            }
            match cst.op {
                CmpOp::Ge0 => val >= 0,
                CmpOp::Eq0 => val == 0,
            }
        });
        if ok {
            return true;
        }
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            assign[i] += 1;
            if assign[i] <= BOX {
                break;
            }
            assign[i] = -BOX;
            i += 1;
        }
    }
}

prop_compose! {
    fn arb_linexpr()(cx in -3i64..=3, cy in -3i64..=3, cz in -3i64..=3, c in -8i64..=8) -> LinExpr {
        LinExpr::term("x", cx) + LinExpr::term("y", cy) + LinExpr::term("z", cz) + c
    }
}

prop_compose! {
    fn arb_constraint()(e in arb_linexpr(), eq in proptest::bool::weighted(0.3)) -> Constraint {
        if eq { Constraint::eq0(e) } else { Constraint::ge0(e) }
    }
}

fn boxed_system(extra: Vec<Constraint>) -> System {
    let mut sys = System::new();
    for v in VARS {
        sys.push(Constraint::ge(LinExpr::var(v), LinExpr::constant(-BOX)));
        sys.push(Constraint::le(LinExpr::var(v), LinExpr::constant(BOX)));
    }
    for c in extra {
        sys.push(c);
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Within a bounded box the brute force is exact ground truth, so
    /// `Empty`/`NonEmpty` answers must agree with it (`Unknown` is always
    /// permitted).
    #[test]
    fn solver_sound_on_boxed_systems(cs in proptest::collection::vec(arb_constraint(), 1..6)) {
        let sys = boxed_system(cs);
        let truth = brute_force(&sys);
        match sys.satisfiable() {
            Sat::Empty => prop_assert!(!truth, "solver says Empty, brute force found a point: {sys}"),
            Sat::NonEmpty => prop_assert!(truth, "solver says NonEmpty, brute force found none: {sys}"),
            Sat::Unknown => {}
        }
    }

    /// Adding a constraint can never turn an empty system non-empty
    /// (monotonicity of conjunction, as the legality checks rely on it).
    #[test]
    fn conjunction_is_monotone(cs in proptest::collection::vec(arb_constraint(), 1..5),
                               extra in arb_constraint()) {
        let base = boxed_system(cs.clone());
        if base.satisfiable() == Sat::Empty {
            let mut bigger = base;
            bigger.push(extra);
            prop_assert_ne!(bigger.satisfiable(), Sat::NonEmpty);
        }
    }

    /// Substituting an equality's solution is invisible to satisfiability:
    /// {e = 0} ∧ rest  has a solution iff brute force finds one.
    #[test]
    fn equalities_respected(e in arb_linexpr(), cs in proptest::collection::vec(arb_constraint(), 0..4)) {
        let mut with_eq = vec![Constraint::eq0(e)];
        with_eq.extend(cs);
        let sys = boxed_system(with_eq);
        let truth = brute_force(&sys);
        match sys.satisfiable() {
            Sat::Empty => prop_assert!(!truth),
            Sat::NonEmpty => prop_assert!(truth),
            Sat::Unknown => {}
        }
    }
}
